"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "F1", "--scale", "0.5"])
        assert args.ids == ["F1"]
        assert args.scale == 0.5

    def test_solve_args(self):
        args = build_parser().parse_args(["solve", "--policy", "amf-e", "--jobs", "5"])
        assert args.policy == "amf-e"
        assert args.jobs == 5

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--policy", "bogus"])


class TestCommands:
    def test_validate(self, capsys):
        assert main(["validate", "--jobs", "5", "--sites", "3"]) == 0
        assert "5 jobs x 3 sites" in capsys.readouterr().out

    def test_solve(self, capsys):
        assert main(["solve", "--jobs", "4", "--sites", "3", "--policy", "amf"]) == 0
        out = capsys.readouterr().out
        assert "policy=amf" in out and "balance:" in out

    def test_solve_with_check(self, capsys):
        assert main(["solve", "--jobs", "4", "--sites", "2", "--check"]) == 0
        assert "properties:" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--jobs", "5", "--sites", "3", "--policy", "psmf"]) == 0
        assert "mean JCT" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "F99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_experiment_runs_tiny(self, capsys):
        assert main(["experiment", "T2", "--scale", "0.15"]) == 0
        assert "T2" in capsys.readouterr().out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "X2" in out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "rep.md"
        assert main(["report", "--out", str(out), "--scale", "0.15", "--only", "T2"]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_simulate_with_scenario_and_observers(self, capsys):
        assert main([
            "simulate", "--scenario", "uniform", "--policy", "psmf",
            "--trace", "3", "--observe", "balance", "churn",
        ]) == 0
        out = capsys.readouterr().out
        assert "time-averaged balance" in out
        assert "churn" in out
        assert "arrival" in out  # trace excerpt

    def test_solve_save_and_load(self, tmp_path, capsys):
        saved = tmp_path / "alloc.json"
        assert main(["solve", "--jobs", "4", "--sites", "2", "--save", str(saved)]) == 0
        assert saved.exists()
        # extract the embedded cluster and re-solve from file
        import json

        cluster_file = tmp_path / "cluster.json"
        cluster_file.write_text(json.dumps(json.loads(saved.read_text())["cluster"]))
        assert main(["solve", "--load", str(cluster_file), "--policy", "psmf"]) == 0
        assert "policy=psmf" in capsys.readouterr().out
