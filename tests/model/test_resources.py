"""Resource-vector v1 model layer: normalization, canonical scalar forms,
fingerprints and serialization round-trips.

The back-compat contract under test: a scalar cluster and its
``{"slots": x}`` spelling are *the same object* — equal dataclasses, equal
fingerprints, byte-identical wire forms — so every pre-vector cache key,
journal line and HTTP payload is untouched by the API redesign.
"""

import json
import math

import pytest

from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.resources import (
    ResourceError,
    ResourceMismatchError,
    UnknownResourceError,
    normalize_resources,
    scalar_equivalent,
)
from repro.model.serialize import cluster_from_dict, cluster_to_dict
from repro.model.site import Site


class TestNormalizeResources:
    def test_sorted_canonical_order(self):
        out = normalize_resources({"mem": 2, "cpu": 1}, "x")
        assert list(out) == ["cpu", "mem"]
        assert out == {"cpu": 1.0, "mem": 2.0}

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf"), 0.0, -1.0])
    def test_rejects_non_positive_and_non_finite(self, bad):
        with pytest.raises(ResourceError):
            normalize_resources({"cpu": bad}, "x")

    def test_nan_message_names_nan(self):
        with pytest.raises(ResourceError, match="NaN"):
            normalize_resources({"cpu": float("nan")}, "x")

    def test_rejects_bool_amounts(self):
        with pytest.raises(ResourceError):
            normalize_resources({"cpu": True}, "x")

    def test_empty_means_no_vector_declared(self):
        # Job's default ``resources={}`` flows through normalize unchanged:
        # "no vector" is a valid canonical state, not an error.
        assert normalize_resources({}, "x") == {}
        assert normalize_resources(None, "x") == {}

    def test_rejects_bad_keys_and_all_zero(self):
        with pytest.raises(ResourceError):
            normalize_resources({"": 1.0}, "x")
        with pytest.raises(ResourceError, match="positive entry"):
            normalize_resources({"cpu": 0.0}, "x", allow_zero=True)

    def test_allow_zero_drops_zero_entries(self):
        out = normalize_resources({"cpu": 1.0, "mem": 0.0}, "x", allow_zero=True)
        assert out == {"cpu": 1.0}

    def test_error_hierarchy(self):
        assert issubclass(UnknownResourceError, ResourceError)
        assert issubclass(ResourceMismatchError, ResourceError)
        assert issubclass(ResourceError, ValueError)

    def test_scalar_equivalent(self):
        assert scalar_equivalent({"slots": 4.0}) == 4.0
        assert scalar_equivalent({"cpu": 4.0}) is None
        assert scalar_equivalent({"slots": 4.0, "cpu": 1.0}) is None


class TestCanonicalScalarForms:
    def test_slots_site_is_the_scalar_site(self):
        assert Site("s", {"slots": 4.0}) == Site("s", 4.0)
        assert Site("s", {"slots": 4.0}).resources is None
        assert not Site("s", {"slots": 4.0}).is_multiresource

    def test_slots_job_is_the_scalar_job(self):
        assert Job("j", {"s": 1.0}, resources={"slots": 1.0}) == Job("j", {"s": 1.0})
        assert not Job("j", {"s": 1.0}, resources={"slots": 1.0}).is_multiresource

    def test_scalar_site_resource_vector_view(self):
        assert Site("s", 4.0).resource_vector == {"slots": 4.0}
        assert Job("j", {"s": 1.0}).resource_vector == {"slots": 1.0}

    def test_vector_site_views(self):
        s = Site("s", {"cpu": 4.0, "mem": 8.0})
        assert s.is_multiresource
        assert s.resource_vector == {"cpu": 4.0, "mem": 8.0}
        assert s.capacity_of("cpu") == 4.0
        assert s.capacity_of("gpu") == 0.0

    def test_vector_site_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Site("s", {"cpu": float("inf")})
        with pytest.raises(ValueError):
            Site("s", {"cpu": float("nan")})

    def test_fingerprints_identical_for_canonical_scalar(self):
        a = Cluster([Site("s", {"slots": 4.0})], [Job("j", {"s": 2.0}, resources={"slots": 1.0})])
        b = Cluster([Site("s", 4.0)], [Job("j", {"s": 2.0})])
        assert a.fingerprint() == b.fingerprint()

    def test_vector_fingerprint_covers_names_and_values(self):
        base = Cluster([Site("s", {"cpu": 4.0, "mem": 8.0})], [Job("j", {"s": 1.0}, resources={"cpu": 1.0})])
        renamed = Cluster([Site("s", {"cpu": 4.0, "gpu": 8.0})], [Job("j", {"s": 1.0}, resources={"cpu": 1.0})])
        rescaled = Cluster([Site("s", {"cpu": 4.0, "mem": 9.0})], [Job("j", {"s": 1.0}, resources={"cpu": 1.0})])
        assert base.fingerprint() != renamed.fingerprint()
        assert base.fingerprint() != rescaled.fingerprint()


class TestClusterResourceViews:
    def cluster(self) -> Cluster:
        return Cluster(
            [Site("a", {"cpu": 8.0, "mem": 16.0}), Site("b", {"cpu": 4.0, "mem": 32.0})],
            [
                Job("j0", {"a": 10.0, "b": 10.0}, resources={"cpu": 1.0, "mem": 4.0}),
                Job("j1", {"a": 10.0}, resources={"cpu": 4.0, "mem": 1.0}),
            ],
        )

    def test_resource_names_and_totals(self):
        c = self.cluster()
        assert c.resource_names == ("cpu", "mem")
        assert c.resource_totals == {"cpu": 12.0, "mem": 48.0}

    def test_matrices(self):
        c = self.cluster()
        assert c.site_resource_matrix.tolist() == [[8.0, 16.0], [4.0, 32.0]]
        assert c.job_resource_matrix.tolist() == [[1.0, 4.0], [4.0, 1.0]]

    def test_dominant_factor(self):
        c = self.cluster()
        dom = c.dominant_factor()
        assert dom[0] == pytest.approx(max(1 / 12, 4 / 48))
        assert dom[1] == pytest.approx(max(4 / 12, 1 / 48))

    def test_unknown_resource_rejected(self):
        with pytest.raises(UnknownResourceError, match="gpu"):
            Cluster([Site("a", {"cpu": 1.0})], [Job("j", {"a": 1.0}, resources={"gpu": 1.0})])

    def test_scalar_cluster_views_are_canonical_slots(self):
        c = Cluster([Site("a", 1.0)], [Job("j", {"a": 1.0})])
        assert not c.is_multiresource
        assert c.resource_names == ("slots",)
        assert c.resource_totals == {"slots": 1.0}


class TestSerializationRoundTrip:
    def test_scalar_wire_form_unchanged(self):
        c = Cluster([Site("a", 2.0)], [Job("j", {"a": 1.0})])
        data = cluster_to_dict(c)
        assert data["sites"][0]["capacity"] == 2.0
        assert "resources" not in data["jobs"][0]

    def test_vector_round_trip(self):
        c = Cluster(
            [Site("a", {"cpu": 8.0, "mem": 16.0}), Site("b", 3.0, tags=("edge",))],
            [Job("j", {"a": 1.0, "b": 1.0}, resources={"cpu": 2.0, "mem": 1.0}, weight=2.0)],
        )
        rt = cluster_from_dict(json.loads(json.dumps(cluster_to_dict(c))))
        assert rt.fingerprint() == c.fingerprint()
        assert rt.sites[0].resource_vector == {"cpu": 8.0, "mem": 16.0}
        assert rt.jobs[0].resources == {"cpu": 2.0, "mem": 1.0}

    def test_job_with_workload_helpers_carry_resources(self):
        j = Job("j", {"a": 1.0}, resources={"cpu": 2.0})
        assert j.with_workload({"a": 5.0}).resources == {"cpu": 2.0}
        assert j.scaled(2.0).resources == {"cpu": 2.0}

    def test_site_scaled_scales_vector(self):
        s = Site("s", {"cpu": 4.0, "mem": 8.0}).scaled(0.5)
        assert s.resource_vector == {"cpu": 2.0, "mem": 4.0}


class TestMRModelNonFiniteRegression:
    """Satellite bugfix: MRSite/MRJob accepted NaN/Inf amounts."""

    def test_mrsite_rejects_inf_capacity(self):
        from repro.multiresource import MRSite

        with pytest.raises(ValueError, match="finite"):
            MRSite("s", {"cpu": math.inf})

    def test_mrsite_rejects_nan_capacity(self):
        from repro.multiresource import MRSite

        with pytest.raises(ValueError, match="finite"):
            MRSite("s", {"cpu": math.nan})

    def test_mrjob_rejects_non_finite_demand(self):
        from repro.multiresource import MRJob

        with pytest.raises(ValueError, match="finite"):
            MRJob("j", {"cpu": math.inf}, {"s": 1.0})
        with pytest.raises(ValueError, match="finite"):
            MRJob("j", {"cpu": math.nan}, {"s": 1.0})

    def test_mrjob_rejects_non_finite_task_count_and_weight(self):
        from repro.multiresource import MRJob

        with pytest.raises(ValueError):
            MRJob("j", {"cpu": 1.0}, {"s": math.nan})
        with pytest.raises(ValueError):
            MRJob("j", {"cpu": 1.0}, {"s": 1.0}, weight=math.inf)
