"""Unit tests for repro.model.job."""

import pytest

from repro.model.job import Job


class TestConstruction:
    def test_basic(self):
        job = Job("j", {"A": 2.0, "B": 1.0})
        assert job.total_work == 3.0
        assert job.support == {"A", "B"}

    def test_zero_workload_entries_dropped(self):
        job = Job("j", {"A": 2.0, "B": 0.0})
        assert job.support == {"A"}

    def test_requires_some_work(self):
        with pytest.raises(ValueError, match="positive"):
            Job("j", {"A": 0.0})

    def test_requires_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Job("", {"A": 1.0})

    def test_rejects_negative_workload(self):
        with pytest.raises(ValueError, match="non-negative"):
            Job("j", {"A": -1.0})

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Job("j", {"A": 1.0}, weight=0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            Job("j", {"A": 1.0}, arrival=-1.0)

    def test_demand_outside_support_rejected(self):
        with pytest.raises(ValueError, match="without workload"):
            Job("j", {"A": 1.0}, demand={"B": 1.0})

    def test_rejects_non_finite_workload(self):
        # inf satisfies `>= 0` but poisons every solver downstream; both
        # inf and NaN must fail the finiteness check
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(ValueError, match="finite"):
                Job("j", {"A": bad})

    def test_rejects_non_finite_demand(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="finite"):
                Job("j", {"A": 1.0}, demand={"A": bad})

    def test_rejects_non_finite_weight(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="weight"):
                Job("j", {"A": 1.0}, weight=bad)

    def test_rejects_non_finite_arrival(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="arrival"):
                Job("j", {"A": 1.0}, arrival=bad)

    def test_workload_mapping_is_readonly(self):
        job = Job("j", {"A": 1.0})
        with pytest.raises(TypeError):
            job.workload["A"] = 5.0  # type: ignore[index]


class TestDemand:
    def test_demand_at_uncapped_default(self):
        job = Job("j", {"A": 1.0})
        assert job.demand_at("A") == float("inf")

    def test_demand_at_capped(self):
        job = Job("j", {"A": 1.0}, demand={"A": 0.5})
        assert job.demand_at("A") == 0.5

    def test_demand_at_outside_support_is_zero(self):
        job = Job("j", {"A": 1.0})
        assert job.demand_at("B") == 0.0

    def test_zero_demand_cap_allowed(self):
        job = Job("j", {"A": 1.0}, demand={"A": 0.0})
        assert job.demand_at("A") == 0.0

    def test_demand_default_override(self):
        job = Job("j", {"A": 1.0})
        assert job.demand_at("A", default=7.0) == 7.0


class TestDerivedCopies:
    def test_with_workload_changes_report(self):
        job = Job("j", {"A": 1.0}, demand={"A": 0.5}, weight=2.0, arrival=3.0)
        lie = job.with_workload({"A": 0.2, "B": 5.0})
        assert lie.support == {"A", "B"}
        assert lie.weight == 2.0 and lie.arrival == 3.0
        # demand kept from the original by default
        assert lie.demand_at("A") == 0.5

    def test_with_workload_new_demand(self):
        job = Job("j", {"A": 1.0}, demand={"A": 0.5})
        lie = job.with_workload({"A": 1.0}, demand={})
        assert lie.demand_at("A") == float("inf")

    def test_scaled(self):
        job = Job("j", {"A": 2.0}, demand={"A": 0.5})
        big = job.scaled(3.0)
        assert big.workload["A"] == 6.0
        assert big.demand_at("A") == 0.5  # caps not scaled

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Job("j", {"A": 1.0}).scaled(0.0)
