"""Tests for Cluster.fingerprint() — the allocation cache key."""

from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


def build(capacity_a=2.0, work_x=1.0, demand_b=0.5, weight_y=1.0, arrival_x=0.0, tags=()):
    sites = [Site("A", capacity_a, tags=tuple(tags)), Site("B", 3.0)]
    jobs = [
        Job("x", {"A": work_x}, weight=1.0, arrival=arrival_x),
        Job("y", {"A": 1.0, "B": 4.0}, demand={"B": demand_b}, weight=weight_y),
    ]
    return Cluster(sites, jobs)


class TestStability:
    def test_deterministic_across_instances(self):
        assert build().fingerprint() == build().fingerprint()

    def test_repeated_calls_cached(self):
        c = build()
        assert c.fingerprint() is c.fingerprint()

    def test_hex_digest_shape(self):
        fp = build().fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # valid hex

    def test_survives_matrix_round_trip(self):
        c = build()
        rebuilt = Cluster.from_matrices(
            c.capacities,
            c.workloads,
            demand_caps=None,
            weights=c.weights,
            site_names=[s.name for s in c.sites],
            job_names=[j.name for j in c.jobs],
        )
        # Same jobs/sites but demand caps dropped -> different instance.
        assert rebuilt.fingerprint() != c.fingerprint()
        uncapped = Cluster(c.sites, [Job("x", {"A": 1.0}), Job("y", {"A": 1.0, "B": 4.0})])
        assert rebuilt.fingerprint() == uncapped.fingerprint()


class TestPerturbationSensitivity:
    def test_capacity_change(self):
        assert build().fingerprint() != build(capacity_a=2.0000001).fingerprint()

    def test_workload_change(self):
        assert build().fingerprint() != build(work_x=1.0 + 1e-12).fingerprint()

    def test_demand_cap_change(self):
        assert build().fingerprint() != build(demand_b=0.6).fingerprint()

    def test_weight_change(self):
        assert build().fingerprint() != build(weight_y=2.0).fingerprint()

    def test_job_rename(self):
        base = build()
        renamed = Cluster(base.sites, [Job("x2", {"A": 1.0}), base.jobs[1]])
        assert base.fingerprint() != renamed.fingerprint()

    def test_job_order_matters(self):
        base = build()
        swapped = Cluster(base.sites, (base.jobs[1], base.jobs[0]))
        assert base.fingerprint() != swapped.fingerprint()

    def test_job_removal(self):
        base = build()
        assert base.without_job("x").fingerprint() != base.fingerprint()


class TestAllocationIrrelevantFields:
    def test_arrival_ignored(self):
        assert build().fingerprint() == build(arrival_x=7.5).fingerprint()

    def test_site_tags_ignored(self):
        assert build().fingerprint() == build(tags=("eu", "tier1")).fingerprint()
