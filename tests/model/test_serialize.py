"""Tests for JSON serialization of clusters and allocations."""

import json

import numpy as np
import pytest

from repro.core.amf import solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.serialize import (
    allocation_from_dict,
    allocation_to_dict,
    cluster_from_dict,
    cluster_to_dict,
    load_allocation,
    load_cluster,
    save_allocation,
    save_cluster,
)
from repro.model.site import Site


def rich_cluster() -> Cluster:
    return Cluster(
        sites=[Site("east", 2.0, tags=("eu",)), Site("west", 3.0)],
        jobs=[
            Job("a", {"east": 1.0, "west": 2.0}, demand={"west": 0.5}, weight=2.0, arrival=1.5),
            Job("b", {"west": 1.0}),
        ],
    )


class TestClusterRoundtrip:
    def test_roundtrip_preserves_everything(self):
        c = rich_cluster()
        c2 = cluster_from_dict(cluster_to_dict(c))
        assert [s.name for s in c2.sites] == ["east", "west"]
        assert c2.sites[0].tags == ("eu",)
        assert np.allclose(c2.capacities, c.capacities)
        assert np.allclose(c2.workloads, c.workloads)
        assert np.allclose(c2.demand_caps, c.demand_caps)
        assert np.allclose(c2.weights, c.weights)
        assert c2.job("a").arrival == 1.5

    def test_dict_is_json_safe(self):
        text = json.dumps(cluster_to_dict(rich_cluster()))
        assert "Infinity" not in text

    def test_defaults_omitted(self):
        d = cluster_to_dict(rich_cluster())
        job_b = d["jobs"][1]
        assert "weight" not in job_b and "arrival" not in job_b and "demand" not in job_b

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported cluster format"):
            cluster_from_dict({"format": "nope"})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "cluster.json"
        save_cluster(rich_cluster(), path)
        c2 = load_cluster(path)
        assert c2.n_jobs == 2


class TestAllocationRoundtrip:
    def test_roundtrip(self):
        c = rich_cluster()
        a = solve_amf(c)
        a2 = allocation_from_dict(allocation_to_dict(a))
        assert np.allclose(a2.matrix, a.matrix, atol=1e-12)
        assert a2.policy == "amf"

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported allocation format"):
            allocation_from_dict({"format": "nope"})

    def test_tampered_matrix_rejected_on_load(self, tmp_path):
        c = rich_cluster()
        a = solve_amf(c)
        d = allocation_to_dict(a)
        d["matrix"][0][0] = 99.0  # violates site capacity
        with pytest.raises(ValueError):
            allocation_from_dict(d)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "alloc.json"
        a = solve_amf(rich_cluster())
        save_allocation(a, path)
        a2 = load_allocation(path)
        assert np.allclose(a2.aggregates, a.aggregates)
