"""Unit tests for repro.model.site."""

import pytest

from repro.model.site import Site


class TestSite:
    def test_basic(self):
        s = Site("dc1", 100.0)
        assert s.name == "dc1"
        assert s.capacity == 100.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            Site("dc1", 0.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            Site("dc1", -1.0)

    def test_rejects_non_finite_capacity(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="finite"):
                Site("dc1", bad)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Site("", 1.0)

    def test_is_frozen(self):
        s = Site("dc1", 1.0)
        with pytest.raises(AttributeError):
            s.capacity = 2.0  # type: ignore[misc]

    def test_scaled(self):
        s = Site("dc1", 2.0, tags=("eu",))
        big = s.scaled(2.5)
        assert big.capacity == 5.0
        assert big.name == "dc1"
        assert big.tags == ("eu",)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Site("dc1", 1.0).scaled(-1.0)

    def test_tags_default_empty(self):
        assert Site("x", 1.0).tags == ()
