"""Unit tests for repro.model.validation."""

import numpy as np

from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.model.validation import gini, validate_instance


class TestGini:
    def test_equal_vector_is_zero(self):
        assert gini(np.array([1.0, 1.0, 1.0])) < 1e-12

    def test_concentrated_vector_near_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini(v) > 0.95

    def test_empty_is_zero(self):
        assert gini(np.array([])) == 0.0

    def test_zero_sum_is_zero(self):
        assert gini(np.zeros(5)) == 0.0

    def test_monotone_in_skew(self):
        mild = gini(np.array([1.0, 1.0, 2.0]))
        strong = gini(np.array([0.1, 0.1, 10.0]))
        assert strong > mild


class TestValidateInstance:
    def test_clean_instance(self):
        c = Cluster.from_matrices([1.0, 1.0], [[2.0, 2.0], [2.0, 2.0]], [[1.0, 1.0], [1.0, 1.0]])
        rep = validate_instance(c)
        assert rep.ok
        assert rep.n_jobs == 2 and rep.n_sites == 2
        assert rep.contention_ratio == 2.0
        assert not rep.warnings

    def test_dead_site_warning(self):
        c = Cluster([Site("A", 1.0), Site("B", 1.0)], [Job("x", {"A": 1.0})])
        rep = validate_instance(c)
        assert any("'B'" in w and "no workload" in w for w in rep.warnings)

    def test_zero_demand_job_warning(self):
        c = Cluster([Site("A", 1.0)], [Job("x", {"A": 1.0}, demand={"A": 0.0})])
        rep = validate_instance(c)
        assert any("zero aggregate demand" in w for w in rep.warnings)

    def test_uncontended_warning(self):
        c = Cluster.from_matrices([10.0], [[1.0]], [[0.5]])
        rep = validate_instance(c)
        assert any("uncontended" in w for w in rep.warnings)

    def test_report_renders(self):
        c = Cluster.from_matrices([1.0], [[1.0]])
        text = str(validate_instance(c))
        assert "1 jobs x 1 sites" in text

    def test_skew_gini_reflects_workload(self):
        balanced = Cluster.from_matrices([1.0, 1.0], [[1.0, 1.0]])
        skewed = Cluster.from_matrices([1.0, 1.0], [[10.0, 0.1]])
        assert validate_instance(skewed).skew_gini > validate_instance(balanced).skew_gini
