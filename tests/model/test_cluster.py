"""Unit tests for repro.model.cluster."""

import numpy as np
import pytest

from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


def small() -> Cluster:
    sites = [Site("A", 2.0), Site("B", 3.0)]
    jobs = [
        Job("x", {"A": 1.0}),
        Job("y", {"A": 1.0, "B": 4.0}, demand={"B": 0.5}),
    ]
    return Cluster(sites, jobs)


class TestConstruction:
    def test_requires_sites(self):
        with pytest.raises(ValueError, match="at least one site"):
            Cluster([], [])

    def test_duplicate_site_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Cluster([Site("A", 1.0), Site("A", 2.0)], [])

    def test_duplicate_job_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Cluster([Site("A", 1.0)], [Job("x", {"A": 1.0}), Job("x", {"A": 2.0})])

    def test_unknown_site_reference_rejected(self):
        with pytest.raises(ValueError, match="unknown sites"):
            Cluster([Site("A", 1.0)], [Job("x", {"B": 1.0})])

    def test_empty_jobs_allowed(self):
        c = Cluster([Site("A", 1.0)], [])
        assert c.n_jobs == 0


class TestViews:
    def test_capacities(self):
        assert small().capacities.tolist() == [2.0, 3.0]

    def test_workload_matrix(self):
        W = small().workloads
        assert W.tolist() == [[1.0, 0.0], [1.0, 4.0]]

    def test_support_mask(self):
        S = small().support
        assert S.tolist() == [[True, False], [True, True]]

    def test_demand_caps_clip_to_capacity(self):
        D = small().demand_caps
        # x uncapped at A -> site capacity 2; y capped 0.5 at B
        assert D[0, 0] == 2.0
        assert D[1, 1] == 0.5
        assert D[0, 1] == 0.0  # outside support

    def test_aggregate_demand(self):
        c = small()
        assert np.allclose(c.aggregate_demand, [2.0, 2.0 + 0.5])

    def test_views_are_readonly(self):
        c = small()
        with pytest.raises(ValueError):
            c.capacities[0] = 99.0
        with pytest.raises(ValueError):
            c.workloads[0, 0] = 99.0

    def test_total_capacity(self):
        assert small().total_capacity == 5.0

    def test_indexing(self):
        c = small()
        assert c.job_index("y") == 1
        assert c.site_index("B") == 1
        assert c.job("y").name == "y"
        assert c.site("B").capacity == 3.0


class TestDerivedInstances:
    def test_without_job(self):
        c = small().without_job("x")
        assert c.n_jobs == 1
        assert c.jobs[0].name == "y"

    def test_without_unknown_job(self):
        with pytest.raises(ValueError, match="unknown job"):
            small().without_job("nope")

    def test_with_job(self):
        c = small().with_job(Job("z", {"B": 1.0}))
        assert c.n_jobs == 3

    def test_replace_job(self):
        c = small().replace_job(Job("x", {"B": 9.0}))
        assert c.job("x").support == {"B"}
        assert c.n_jobs == 2

    def test_replace_preserves_order(self):
        c = small().replace_job(Job("x", {"B": 9.0}))
        assert [j.name for j in c.jobs] == ["x", "y"]

    def test_restricted_to_jobs(self):
        c = small().restricted_to_jobs(["y"])
        assert [j.name for j in c.jobs] == ["y"]

    def test_originals_untouched(self):
        c = small()
        c.without_job("x")
        assert c.n_jobs == 2


class TestFromMatrices:
    def test_roundtrip(self):
        c = Cluster.from_matrices([2.0, 3.0], [[1.0, 0.0], [1.0, 4.0]], [[np.inf, np.inf], [np.inf, 0.5]])
        assert c.n_jobs == 2
        assert c.demand_caps[1, 1] == 0.5

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Cluster.from_matrices([1.0], [[1.0, 2.0]])

    def test_rejects_nan_caps(self):
        with pytest.raises(ValueError, match="NaN"):
            Cluster.from_matrices([1.0], [[1.0]], [[np.nan]])

    def test_names(self):
        c = Cluster.from_matrices([1.0], [[1.0]], site_names=["east"], job_names=["spark"])
        assert c.sites[0].name == "east"
        assert c.jobs[0].name == "spark"

    def test_weights(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        assert c.weights.tolist() == [1.0, 2.0]

    def test_uniform_factory(self):
        c = Cluster.uniform(3, 2, capacity=5.0, work=1.5)
        assert c.n_jobs == 3 and c.n_sites == 2
        assert (c.workloads == 1.5).all()
        assert (c.capacities == 5.0).all()


class TestEntitlements:
    def test_uniform_case(self):
        c = Cluster.uniform(4, 2, capacity=8.0)
        # each of 4 jobs entitled to 8/4 = 2 per site over full support
        assert np.allclose(c.equal_partition_entitlements(), [4.0] * 4)

    def test_caps_bound_entitlement(self, two_site_cluster):
        e = two_site_cluster.equal_partition_entitlements()
        assert np.allclose(e, [1 / 3, 1 / 3, 1 / 3 + 0.2])

    def test_weighted_entitlements(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        e = c.equal_partition_entitlements()
        assert np.allclose(e, [1.0, 2.0])
