"""Tests for sparkline rendering."""

import numpy as np

from repro.analysis.sparkline import BLOCKS, sparkline, sparkline_summary


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s == BLOCKS

    def test_constant_series(self):
        assert sparkline([3.0, 3.0, 3.0]) == BLOCKS[0] * 3

    def test_nan_renders_space(self):
        s = sparkline([1.0, np.nan, 2.0])
        assert s[1] == " "
        assert len(s) == 3

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_pinned_scale(self):
        # with scale pinned to [0, 10], a value of 10 hits the top block
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in BLOCKS
        assert sparkline([10.0], lo=0.0, hi=10.0) == BLOCKS[-1]
        assert sparkline([0.0], lo=0.0, hi=10.0) == BLOCKS[0]


class TestSummary:
    def test_shared_scale_orders_series(self):
        text = sparkline_summary({"low": [1, 1], "high": [8, 8]})
        low_line, high_line = text.splitlines()[0], text.splitlines()[1]
        assert low_line.split()[-1] == BLOCKS[0] * 2
        assert high_line.split()[-1] == BLOCKS[-1] * 2

    def test_per_series_scale(self):
        text = sparkline_summary({"a": [1, 2], "b": [100, 200]}, shared_scale=False)
        a, b = (line.split()[-1] for line in text.splitlines())
        assert a == b  # identical shapes once scales are independent

    def test_empty_mapping(self):
        assert sparkline_summary({}) == ""
