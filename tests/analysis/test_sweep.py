"""Tests for the sweep runner."""

import numpy as np
import pytest

from repro.analysis.sweep import replicate, sweep1d


class TestReplicate:
    def test_mean_and_std(self):
        def fn(rng):
            return {"v": float(rng.integers(0, 10))}

        mean, std = replicate(fn, seeds=[0, 1, 2, 3])
        assert 0 <= mean["v"] <= 10
        assert std["v"] >= 0

    def test_deterministic_per_seed(self):
        def fn(rng):
            return {"v": float(rng.random())}

        m1, _ = replicate(fn, seeds=[5])
        m2, _ = replicate(fn, seeds=[5])
        assert m1 == m2


class TestSweep1d:
    def test_shapes(self):
        sw = sweep1d("x", [1, 2, 3], lambda x, rng: {"y": float(x) * 2}, seeds=[0, 1])
        assert sw.x_values == [1, 2, 3]
        assert sw.mean["y"] == [2.0, 4.0, 6.0]
        assert sw.std["y"] == [0.0, 0.0, 0.0]

    def test_metric_at(self):
        sw = sweep1d("x", [1, 2], lambda x, rng: {"y": float(x)}, seeds=[0])
        assert sw.metric_at("y", 2) == 2.0

    def test_series_selection(self):
        sw = sweep1d("x", [1], lambda x, rng: {"a": 1.0, "b": 2.0}, seeds=[0])
        assert set(sw.series(["a"])) == {"a"}
        assert set(sw.series()) == {"a", "b"}

    def test_nonfinite_samples_dropped(self):
        calls = {"k": 0}

        def fn(x, rng):
            calls["k"] += 1
            return {"y": np.inf if calls["k"] % 2 == 0 else 1.0}

        sw = sweep1d("x", [0], fn, seeds=[0, 1, 2, 3])
        assert sw.mean["y"][0] == pytest.approx(1.0)

    def test_all_nonfinite_gives_nan(self):
        sw = sweep1d("x", [0], lambda x, rng: {"y": np.inf}, seeds=[0, 1])
        assert np.isnan(sw.mean["y"][0])
