"""Smoke + shape tests for the experiment definitions (tiny scale).

Full-size experiment shape claims live in tests/integration/test_paper_claims.py;
here we verify every experiment runs end-to-end at minimal scale and emits
well-formed output.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    run_f1_balance_vs_skew,
    run_f4_jct_distribution,
    run_f8_scalability,
    run_t1_properties,
    run_t2_sharing_incentive,
)


TINY = dict(scale=0.12, seeds=(0,))


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
            "T1", "T2", "T3", "T4", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9",
        }


class TestSmoke:
    @pytest.mark.parametrize("eid", ["F1", "F2", "F5", "F6"])
    def test_balance_experiments_run(self, eid):
        out = EXPERIMENTS[eid](scale=0.12, seeds=(0,), thetas=(0.0, 1.5)) if eid in ("F1", "F2") else EXPERIMENTS[eid](scale=0.12, seeds=(0,))
        assert out.experiment == eid
        assert "theta" in out.text or "n_" in out.text

    def test_f3_runs(self):
        out = EXPERIMENTS["F3"](scale=0.1, seeds=(0,), thetas=(0.0, 1.5), policies=("psmf", "amf"))
        assert "F3" in out.text

    def test_f4_runs(self):
        out = run_f4_jct_distribution(scale=0.1, policies=("psmf", "amf"))
        assert len(out.data["deciles"]) == 10

    def test_f7_runs(self):
        out = EXPERIMENTS["F7"](scale=0.08, seeds=(0,), loads=(0.5,), policies=("psmf", "amf"))
        assert "load" in out.text

    def test_f8_runs(self):
        out = run_f8_scalability(scale=0.1, sizes=((20, 4), (40, 4)))
        assert len(out.data["rows"]) == 2
        assert all(r["cutting_ms"] > 0 for r in out.data["rows"])

    def test_t1_runs(self):
        out = run_t1_properties(scale=0.5, seeds=(0, 1), sp_attempts=1)
        # two seeds x two families per seed
        assert out.data["total"] == 4
        # AMF is max-min fair and Pareto-efficient on every instance
        assert out.data["counters"]["amf"]["max_min"] == 4
        assert out.data["counters"]["amf"]["pareto"] == 4
        # ... but fails sharing incentive on the hub-and-spoke half
        assert out.data["counters"]["amf"]["si"] < 4

    def test_t2_runs(self):
        out = run_t2_sharing_incentive(scale=0.3, seeds=(0, 1, 2))
        assert out.data["hub"]["amf"]["violated"] > 0
        assert out.data["hub"]["amf-e"]["violated"] == 0
        assert out.data["zipf"]["amf-e"]["violated"] == 0

    def test_t3_runs(self):
        out = EXPERIMENTS["T3"](scale=0.1, seeds=(0,))
        assert "split mode" in out.text and "T3b" in out.text

    def test_x8_runs(self):
        out = EXPERIMENTS["X8"](scale=0.15, seeds=(0,), mtbf_factors=(2.0,), policies=("psmf", "amf"))
        sw = out.data["sweep"]
        for name in ("psmf", "amf"):
            jain = sw.metric_at(f"{name}/time_avg_jain", 2.0)
            assert 0.0 <= jain <= 1.0 + 1e-9
            assert sw.metric_at(f"{name}/mean_jct", 2.0) > 0.0


class TestShapes:
    def test_f1_amf_dominates_at_high_skew(self):
        out = run_f1_balance_vs_skew(scale=0.3, seeds=(0, 1), thetas=(1.5,))
        sw = out.data["sweep"]
        assert sw.metric_at("amf/jain", 1.5) >= sw.metric_at("psmf/jain", 1.5)


class TestHelpers:
    def test_scaled_minimum(self):
        from repro.analysis.experiments import _scaled

        assert _scaled(100, 1.0) == 100
        assert _scaled(100, 0.5) == 50
        assert _scaled(100, 0.001) == 2
        assert _scaled(10, 0.1, minimum=5) == 5

    def test_experiment_output_str(self):
        from repro.analysis.experiments import ExperimentOutput

        out = ExperimentOutput("F1", "body", {"k": 1})
        assert str(out) == "body"
        assert out.data["k"] == 1

    def test_t4_smoke(self):
        from repro.analysis.experiments import run_t4_monotonicity

        out = run_t4_monotonicity(scale=0.5, seeds=(0,), policies=("psmf", "amf"))
        assert out.data["data"]["amf"]["population_breaches"] == 0

    def test_x4_smoke(self):
        from repro.analysis.experiments import run_x4_price_of_locality

        out = run_x4_price_of_locality(scale=0.15, seeds=(0,), thetas=(1.0,))
        assert "locality" in out.text

    def test_x6_smoke(self):
        from repro.analysis.experiments import run_x6_discrete_convergence

        out = run_x6_discrete_convergence(scale=0.2, seeds=(0,), granularities=(1.0,))
        assert "granularity" in out.text

    def test_x7_smoke(self):
        from repro.analysis.experiments import run_x7_multiresource

        out = run_x7_multiresource(scale=0.4, seeds=(0,), thetas=(1.0,))
        assert "amrf/jain" in out.text
