"""Tests for the process-pool sweep fan-out (repro.analysis.parallel).

The contract: parallelism is an implementation detail — results must be
byte-identical to the serial path, in the same order, with the same
deterministic per-task seeding.
"""

import os

import numpy as np
import pytest

from repro.analysis import parallel
from repro.analysis.parallel import default_workers, grid_map, parallel_map, set_default_workers
from repro.analysis.sweep import sweep1d


def _square(x):
    return x * x


def test_serial_matches_parallel():
    tasks = list(range(20))
    serial = parallel_map(_square, tasks, workers=1)
    assert serial == [x * x for x in tasks]
    if parallel._fork_available():
        fanned = parallel_map(_square, tasks, workers=3)
        assert fanned == serial


def test_parallel_map_preserves_order():
    tasks = list(range(37))
    out = parallel_map(lambda t: -t, tasks, workers=2)
    assert out == [-t for t in tasks]


def test_parallel_map_empty():
    assert parallel_map(_square, [], workers=4) == []


def test_grid_map_shape_and_determinism():
    points = [0.5, 1.0, 2.0]
    seeds = [7, 8]

    def fn(x, rng):
        return x + rng.uniform()

    serial = grid_map(fn, points, seeds, workers=1)
    assert len(serial) == len(points)
    assert all(len(row) == len(seeds) for row in serial)
    # per-task seeding: same (point, seed) -> same draw, any worker count
    again = grid_map(fn, points, seeds, workers=1)
    assert serial == again
    if parallel._fork_available():
        fanned = grid_map(fn, points, seeds, workers=2)
        assert fanned == serial


def test_grid_map_seeds_are_independent():
    draws = grid_map(lambda x, rng: rng.uniform(), [0.0], [1, 2, 3], workers=1)[0]
    assert len(set(draws)) == 3


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    set_default_workers(None)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert default_workers() == 5
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "3")
    set_default_workers(7)  # explicit override beats the environment
    try:
        assert default_workers() == 7
    finally:
        set_default_workers(None)


def test_worker_guard_prevents_nesting(monkeypatch):
    monkeypatch.setattr(parallel, "_IN_WORKER", True)
    # inside a worker the pool must not fork again; serial fallback instead
    assert parallel_map(_square, [1, 2, 3], workers=8) == [1, 4, 9]


def test_sweep1d_parallel_matches_serial():
    def fn(x, rng):
        return {"val": float(x) + rng.uniform()}

    serial = sweep1d("n", [5, 10], fn, seeds=[0, 1], workers=1)
    assert serial.x_values == [5, 10]
    if parallel._fork_available():
        fanned = sweep1d("n", [5, 10], fn, seeds=[0, 1], workers=2)
        assert fanned.series()["val"] == serial.series()["val"]


def test_closures_cross_the_fork_boundary():
    if not parallel._fork_available():
        pytest.skip("fork start method unavailable")
    captured = np.arange(4.0)  # inherited via fork memory, never pickled
    out = parallel_map(lambda i: float(captured[i]), [0, 1, 2, 3], workers=2)
    assert out == [0.0, 1.0, 2.0, 3.0]


def test_repro_workers_env_used_when_unset(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    set_default_workers(None)
    assert os.environ["REPRO_WORKERS"] == "1"
    assert parallel_map(_square, [2], workers=None) == [4]


class TestForkFallbackTelemetry:
    """parallel_map degrading to serial must be visible: one warning per
    process plus a repro_parallel_fallback_total bump per degradation."""

    def test_warns_once_and_counts_every_fallback(self, monkeypatch):
        import warnings

        from repro.analysis import parallel as pmod
        from repro.obs.instruments import PARALLEL_FALLBACK
        from repro.obs.registry import REGISTRY

        monkeypatch.setattr(pmod, "_fork_available", lambda: False)
        monkeypatch.setattr(pmod, "_WARNED_NO_FORK", False)
        # _resolve clamps to os.cpu_count(); pin it so a 1-CPU CI machine
        # still exercises the wanted-parallelism-got-serial path
        monkeypatch.setattr(pmod, "_resolve", lambda w: 4)
        REGISTRY.reset()
        REGISTRY.enable()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert parallel_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]
                assert parallel_map(_square, [4, 5], workers=4) == [16, 25]
            fallback_warnings = [w for w in caught if issubclass(w.category, RuntimeWarning)]
            assert len(fallback_warnings) == 1
            assert "fork" in str(fallback_warnings[0].message)
            assert PARALLEL_FALLBACK.value == 2.0
        finally:
            REGISTRY.reset()
            REGISTRY.disable()

    def test_serial_request_never_warns(self, monkeypatch):
        import warnings

        from repro.analysis import parallel as pmod

        monkeypatch.setattr(pmod, "_fork_available", lambda: False)
        monkeypatch.setattr(pmod, "_WARNED_NO_FORK", False)
        monkeypatch.setattr(pmod, "_resolve", lambda w: 1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert parallel_map(_square, [1, 2], workers=1) == [1, 4]
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] == []
