"""Tests for ASCII table rendering."""

import numpy as np

from repro.analysis.tables import fmt, render_series, render_table


class TestFmt:
    def test_int_like(self):
        assert fmt(3.0) == "3"

    def test_float(self):
        assert fmt(3.14159, precision=3) == "3.14"

    def test_nan_inf(self):
        assert fmt(np.nan) == "nan"
        assert fmt(np.inf) == "inf"

    def test_none(self):
        assert fmt(None) == "-"

    def test_string_passthrough(self):
        assert fmt("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_wide_cells_expand_columns(self):
        text = render_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series("theta", [0.0, 1.0], {"amf": [1.0, 0.9], "psmf": [0.8, 0.6]})
        lines = text.splitlines()
        assert len(lines) == 4
        assert "amf" in lines[0] and "psmf" in lines[0]

    def test_values_in_order(self):
        text = render_series("x", [5], {"y": [0.25]})
        assert "0.25" in text and "5" in text
