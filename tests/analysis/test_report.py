"""Tests for the reproduction-report generator."""

import pytest

from repro.analysis.report import Report, ReportSection, generate_report, write_report
from repro.analysis.experiments import ExperimentOutput


class TestGenerate:
    def test_selected_experiments_run(self):
        rep = generate_report(scale=0.15, experiments=["T2"])
        assert len(rep.sections) == 1
        sec = rep.sections[0]
        assert sec.experiment == "T2"
        assert sec.error is None
        assert "T2" in sec.output.text
        assert rep.total_seconds > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            generate_report(experiments=["Z9"])

    def test_keep_going_records_failures(self, monkeypatch):
        from repro.analysis import experiments as exps

        def boom(scale=1.0, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(exps.EXPERIMENTS, "T2", boom)
        rep = generate_report(scale=0.2, experiments=["T2"])
        assert rep.sections[0].error is not None
        assert "kaboom" in rep.sections[0].error

    def test_fail_fast(self, monkeypatch):
        from repro.analysis import experiments as exps

        def boom(scale=1.0, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(exps.EXPERIMENTS, "T2", boom)
        with pytest.raises(RuntimeError):
            generate_report(scale=0.2, experiments=["T2"], keep_going=False)


class TestMarkdown:
    def test_renders_sections_and_header(self):
        rep = Report(scale=0.5)
        rep.sections.append(ReportSection("F1", 1.0, ExperimentOutput("F1", "table-body")))
        rep.sections.append(ReportSection("F2", 0.5, None, error="RuntimeError('x')"))
        md = rep.to_markdown()
        assert "# AMF reproduction report" in md
        assert "table-body" in md
        assert "FAILED" in md
        assert "1 ok, 1 failed" in md

    def test_write_report(self, tmp_path):
        out = tmp_path / "rep.md"
        rep = write_report(out, scale=0.15, experiments=["T2"])
        assert out.exists()
        assert "T2" in out.read_text()
        assert rep.sections[0].error is None
