"""Cross-module integration tests: generator -> solver -> simulator -> metrics."""

import numpy as np
import pytest

from repro.core import properties
from repro.core.amf import amf_levels
from repro.core.policies import get_policy
from repro.metrics.fairness import balance_report
from repro.model.validation import validate_instance
from repro.sim.engine import simulate
from repro.sim.trace import Trace
from repro.workload.arrivals import ArrivalSpec, generate_arrival_jobs
from repro.workload.generator import WorkloadSpec, generate_cluster, generate_jobs, sites_for
from repro.workload.traces import TraceSpec, generate_trace_jobs


class TestStaticPipeline:
    def test_generated_instances_solve_under_every_static_policy(self):
        rng = np.random.default_rng(0)
        spec = WorkloadSpec(n_jobs=25, n_sites=6, theta=1.3)
        cluster = generate_cluster(spec, rng)
        assert validate_instance(cluster).contention_ratio > 1.0
        for name in ("psmf", "amf", "amf-e", "amf-prop", "amf-ct-quick"):
            alloc = get_policy(name)(cluster)
            rep = balance_report(alloc)
            assert 0.0 < rep.jain <= 1.0 + 1e-9

    def test_amf_levels_consistent_across_policies(self):
        rng = np.random.default_rng(1)
        cluster = generate_cluster(WorkloadSpec(n_jobs=15, n_sites=4), rng)
        lv = amf_levels(cluster)
        for name in ("amf", "amf-ct-quick"):
            assert np.allclose(get_policy(name)(cluster).aggregates, lv, atol=1e-5)

    def test_property_suite_on_generated_instance(self):
        rng = np.random.default_rng(2)
        cluster = generate_cluster(WorkloadSpec(n_jobs=10, n_sites=4, theta=1.5), rng)
        amf = get_policy("amf")(cluster)
        assert properties.is_pareto_efficient(amf)
        assert properties.is_max_min_fair(amf)
        assert properties.is_envy_free(amf)
        enhanced = get_policy("amf-e")(cluster)
        assert properties.satisfies_sharing_incentive(enhanced)


class TestDynamicPipeline:
    def test_batch_simulation_completes_all_jobs(self):
        rng = np.random.default_rng(3)
        spec = WorkloadSpec(n_jobs=20, n_sites=5, theta=1.0)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        for name in ("psmf", "amf"):
            res = simulate(sites, jobs, name)
            assert res.n_finished == 20
            assert not res.stalled
            assert res.utilization_integral == pytest.approx(sum(j.total_work for j in jobs), rel=1e-6)

    def test_open_system_simulation(self):
        rng = np.random.default_rng(4)
        spec = ArrivalSpec(workload=WorkloadSpec(n_jobs=30, n_sites=4), load=0.6)
        sites, jobs = generate_arrival_jobs(spec, rng)
        res = simulate(sites, jobs, "amf")
        assert res.n_finished == 30
        assert res.mean_slowdown >= 1.0 - 1e-6

    def test_synthetic_trace_simulation(self):
        rng = np.random.default_rng(5)
        spec = TraceSpec(n_jobs=30, n_sites=5, horizon=30.0, mean_work=20.0)
        sites, jobs = generate_trace_jobs(spec, rng)
        trace = Trace()
        res = simulate(sites, jobs, "psmf", trace=trace)
        assert res.n_finished == 30
        assert len(trace.of_kind("arrival")) == 30
        assert len(trace.of_kind("completion")) == 30

    def test_jct_monotone_under_extra_load(self):
        """Adding a competing job cannot finish the batch earlier (sanity)."""
        rng = np.random.default_rng(6)
        spec = WorkloadSpec(n_jobs=10, n_sites=3)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        base = simulate(sites, jobs, "amf").makespan
        extra = jobs + [jobs[0].with_workload({s: w * 2 for s, w in jobs[0].workload.items()})]
        extra[-1] = type(jobs[0])(
            name="extra",
            workload=dict(jobs[0].workload),
            demand=dict(jobs[0].demand),
        )
        loaded = simulate(sites, extra, "amf").makespan
        assert loaded >= base - 1e-6
