"""Final cross-validation battery: all solver features combined.

Weights, demand caps and entitlement floors together, checked against the
LP reference oracle and the exact property deciders — the strongest
single piece of evidence that the production solver is right.
"""

import numpy as np
import pytest

from repro.core import properties
from repro.core.amf import amf_levels, solve_amf
from repro.core.enhanced import sharing_incentive_floors
from repro.core.reference import reference_levels

from tests.conftest import random_cluster


class TestEverythingAtOnce:
    @pytest.mark.parametrize("seed", range(8))
    def test_weighted_capped_floored_matches_oracle(self, seed):
        rng = np.random.default_rng(9000 + seed)
        cluster = random_cluster(rng, cap_prob=0.6, weight_spread=2.0)
        floors = sharing_incentive_floors(cluster)
        ours = amf_levels(cluster, floors=floors)
        oracle = reference_levels(cluster, floors=floors)
        assert np.abs(ours - oracle).max() < 2e-5

    @pytest.mark.parametrize("seed", range(6))
    def test_floored_solution_properties(self, seed):
        rng = np.random.default_rng(9100 + seed)
        cluster = random_cluster(rng, cap_prob=0.6, weight_spread=2.0)
        floors = sharing_incentive_floors(cluster)
        alloc = solve_amf(cluster, floors=floors)
        # floors respected, Pareto-efficient, and SI holds by construction
        assert (alloc.aggregates >= floors - 1e-6).all()
        assert properties.is_pareto_efficient(alloc)
        assert properties.satisfies_sharing_incentive(alloc)

    def test_extreme_mixture_instance(self):
        """One adversarial instance mixing every feature at once."""
        from repro.model.cluster import Cluster

        cluster = Cluster.from_matrices(
            capacities=[0.01, 100.0, 3.0],
            workloads=[
                [1.0, 0.0, 0.0],  # pinned at the tiny site
                [1.0, 1.0, 0.0],  # tiny + huge
                [0.0, 1.0, 1.0],  # huge + medium, capped
                [0.0, 0.0, 1.0],  # pinned at medium
                [1.0, 1.0, 1.0],  # everywhere, heavy weight
            ],
            demand_caps=[
                [np.inf, np.inf, np.inf],
                [np.inf, 0.5, np.inf],
                [np.inf, np.inf, 0.2],
                [np.inf, np.inf, np.inf],
                [0.005, 10.0, 1.0],
            ],
            weights=[1.0, 1.0, 2.0, 1.0, 5.0],
        )
        ours = amf_levels(cluster)
        oracle = reference_levels(cluster)
        assert np.abs(ours - oracle).max() < 2e-5
        alloc = solve_amf(cluster)
        assert properties.is_max_min_fair(alloc)
        assert properties.is_pareto_efficient(alloc)
        assert properties.is_envy_free(alloc)
