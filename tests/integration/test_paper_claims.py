"""Shape tests for the paper's claims (abstract, reconstructed evaluation).

Each test pins one qualitative claim from the abstract:

1. AMF is Pareto-efficient, envy-free and (probed) strategy-proof.
2. AMF does *not* always satisfy sharing incentive; enhanced AMF does.
3. Compared with the per-site baseline, AMF balances allocations
   significantly better, *particularly under high skew*.
4. The completion-time add-on improves batch JCT over a naive split.

These run at moderate scale so the margins are meaningful, not noise.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    run_f1_balance_vs_skew,
    run_f3_jct_vs_skew,
    run_t2_sharing_incentive,
)
from repro.core import properties
from repro.core.policies import get_policy
from repro.workload.generator import WorkloadSpec, generate_cluster


class TestPropertyClaims:
    def test_amf_properties_hold_on_battery(self):
        failures = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            cluster = generate_cluster(WorkloadSpec(n_jobs=12, n_sites=4, theta=1.4), rng)
            alloc = get_policy("amf")(cluster)
            if not properties.is_pareto_efficient(alloc):
                failures.append((seed, "pareto"))
            if not properties.is_max_min_fair(alloc):
                failures.append((seed, "max_min"))
            if not properties.is_envy_free(alloc):
                failures.append((seed, "envy"))
        assert not failures

    def test_amf_sharing_incentive_fails_somewhere(self):
        """The abstract: AMF 'does not necessarily satisfy the sharing incentive'."""
        out = run_t2_sharing_incentive(scale=0.6, seeds=tuple(range(8)))
        assert out.data["stats"]["amf"]["violated"] > 0

    def test_enhanced_amf_always_satisfies_si(self):
        out = run_t2_sharing_incentive(scale=0.6, seeds=tuple(range(8)))
        assert out.data["stats"]["amf-e"]["violated"] == 0


class TestBalanceClaims:
    @pytest.fixture(scope="class")
    def f1(self):
        return run_f1_balance_vs_skew(scale=0.5, seeds=(0, 1, 2), thetas=(0.0, 1.0, 2.0)).data["sweep"]

    def test_amf_never_less_balanced(self, f1):
        for theta in (0.0, 1.0, 2.0):
            assert f1.metric_at("amf/jain", theta) >= f1.metric_at("psmf/jain", theta) - 1e-9

    def test_gap_grows_with_skew(self, f1):
        gap_low = f1.metric_at("amf/jain", 0.0) - f1.metric_at("psmf/jain", 0.0)
        gap_high = f1.metric_at("amf/jain", 2.0) - f1.metric_at("psmf/jain", 2.0)
        assert gap_high > gap_low

    def test_amf_significantly_better_at_high_skew(self, f1):
        assert f1.metric_at("amf/jain", 2.0) > f1.metric_at("psmf/jain", 2.0) * 1.05
        assert f1.metric_at("amf/cov", 2.0) < f1.metric_at("psmf/cov", 2.0) * 0.8


class TestJctClaims:
    @pytest.fixture(scope="class")
    def f3(self):
        return run_f3_jct_vs_skew(
            scale=0.35, seeds=(0, 1), thetas=(0.0, 1.5), policies=("psmf", "amf", "amf-ct-quick")
        ).data["sweep"]

    def test_amf_jct_competitive_at_high_skew(self, f3):
        """AMF (with dynamics) does not lose to PSMF on mean JCT under skew."""
        assert f3.metric_at("amf/mean_jct", 1.5) <= f3.metric_at("psmf/mean_jct", 1.5) * 1.10

    def test_ct_addon_helps_over_plain_amf(self, f3):
        assert (
            f3.metric_at("amf-ct-quick/mean_jct", 1.5)
            <= f3.metric_at("amf/mean_jct", 1.5) * 1.02
        )
