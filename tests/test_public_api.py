"""The public import surface stays stable (guards against refactor breakage)."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_core_types_present(self):
        assert callable(repro.solve_amf)
        assert callable(repro.solve_psmf)
        assert callable(repro.solve_amf_enhanced)
        assert callable(repro.simulate)
        assert callable(repro.water_fill)

    def test_end_to_end_through_public_surface_only(self):
        import numpy as np

        cluster = repro.generate_cluster(
            repro.WorkloadSpec(n_jobs=6, n_sites=3, theta=1.0), np.random.default_rng(0)
        )
        alloc = repro.get_policy("amf")(cluster)
        assert repro.properties.is_max_min_fair(alloc)
        res = repro.simulate(cluster.sites, cluster.jobs, "psmf")
        assert res.n_finished == 6

    def test_policy_registry_exposed(self):
        assert "amf" in repro.POLICIES
        assert "psmf" in repro.POLICIES
