"""HeartbeatMonitor: miss counting, death declaration, recovery resets.

The monitor is tested with plain fakes (probes are just callables), which
is exactly why it was factored protocol-free: consecutive-miss semantics
are timing-free assertions here, no sockets or sleeps involved."""

import pytest

from repro._util import require
from repro.dist.membership import HeartbeatMonitor, WorkerInfo


class FlakyProbe:
    """A probe scripted with a list of outcomes (True = answer)."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)

    def __call__(self):
        ok = self.outcomes.pop(0) if self.outcomes else True
        if not ok:
            raise ConnectionError("scripted miss")
        return "pong"


class Recorder:
    def __init__(self):
        self.dead: list[tuple[str, str]] = []
        self.alive: list[str] = []
        self.missed: list[str] = []

    def on_dead(self, worker_id, reason):
        self.dead.append((worker_id, reason))

    def on_alive(self, worker_id, result):
        self.alive.append(worker_id)

    def on_miss(self, worker_id):
        self.missed.append(worker_id)


def monitor_for(probes, rec, *, miss_threshold=3):
    return HeartbeatMonitor(
        lambda: [(wid, p) for wid, p in probes.items()],
        rec.on_dead,
        on_alive=rec.on_alive,
        on_miss=rec.on_miss,
        interval=0.01,
        miss_threshold=miss_threshold,
    )


class TestProbeRounds:
    def test_consecutive_misses_declare_dead(self):
        rec = Recorder()
        probes = {"w0": FlakyProbe([False, False, False])}
        mon = monitor_for(probes, rec)
        for _ in range(3):
            mon.probe_once()
        assert [w for w, _ in rec.dead] == ["w0"]
        assert "3 consecutive heartbeat misses" in rec.dead[0][1]
        assert rec.missed == ["w0", "w0", "w0"]

    def test_success_resets_the_streak(self):
        rec = Recorder()
        # miss, miss, answer, miss, miss: never 3 consecutive
        probes = {"w0": FlakyProbe([False, False, True, False, False])}
        mon = monitor_for(probes, rec)
        for _ in range(5):
            mon.probe_once()
        assert rec.dead == []
        assert mon.misses_for("w0") == 2
        assert rec.alive == ["w0"]

    def test_declared_once_never_reprobed(self):
        rec = Recorder()
        probe = FlakyProbe([False] * 10)
        mon = monitor_for({"w0": probe}, rec, miss_threshold=2)
        for _ in range(6):
            mon.probe_once()
        assert len(rec.dead) == 1
        # two probes consumed the streak; the other four rounds skipped it
        assert len(probe.outcomes) == 8

    def test_independent_streaks_per_worker(self):
        rec = Recorder()
        probes = {
            "good": FlakyProbe([True] * 5),
            "bad": FlakyProbe([False] * 5),
        }
        mon = monitor_for(probes, rec)
        for _ in range(5):
            mon.probe_once()
        assert [w for w, _ in rec.dead] == ["bad"]
        assert set(rec.alive) == {"good"}

    def test_threshold_one_is_immediate(self):
        rec = Recorder()
        mon = monitor_for({"w0": FlakyProbe([False])}, rec, miss_threshold=1)
        mon.probe_once()
        assert [w for w, _ in rec.dead] == ["w0"]


class TestLifecycle:
    def test_background_thread_declares_dead(self):
        import time

        rec = Recorder()
        mon = monitor_for({"w0": FlakyProbe([False] * 50)}, rec, miss_threshold=2)
        mon.start()
        try:
            deadline = time.monotonic() + 5.0
            while not rec.dead and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            mon.stop()
        assert [w for w, _ in rec.dead] == ["w0"]

    def test_start_is_idempotent_and_stop_joins(self):
        rec = Recorder()
        mon = monitor_for({}, rec)
        mon.start()
        mon.start()
        mon.stop()
        assert mon._thread is None

    def test_validation(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            HeartbeatMonitor(lambda: [], rec.on_dead, interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(lambda: [], rec.on_dead, miss_threshold=0)


def test_worker_info_to_dict_round():
    info = WorkerInfo(worker_id="w0", address=("127.0.0.1", 9001), solves=3)
    d = info.to_dict()
    assert d["worker_id"] == "w0"
    assert d["address"] == "127.0.0.1:9001"
    assert d["alive"] is True
    assert d["solves"] == 3


def test_require_helper_sanity():
    # the monitor leans on require() for knob validation
    with pytest.raises(ValueError):
        require(False, "boom")
