"""Wire protocol: hypothesis round-trips plus adversarial framing.

Two suites.  The round-trip suite generates every registered message type
with arbitrary field contents and asserts ``decode(encode(m)) == m`` both
in-memory and over a real socketpair — the JSON envelope must lose
nothing, including IEEE-754 floats bit-for-bit.  The adversarial suite
feeds the receiver the streams a broken or malicious peer can produce —
truncated frames, oversized length prefixes, garbage bytes, mid-frame
disconnects — and asserts each raises the *documented* error promptly
(no hangs, no partial messages)."""

import json
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ErrorReply,
    FrameTooLarge,
    Hello,
    HelloAck,
    Ping,
    Pong,
    ProtocolError,
    ShardSolved,
    Shutdown,
    ShutdownAck,
    SolveShard,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)
from repro.service.schema import MAX_BODY_BYTES

# ----------------------------------------------------------------------
# Strategies: one per message type, arbitrary field contents
# ----------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=2**53)
names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12
)
site_sets = st.lists(names, min_size=0, max_size=4, unique=True).map(tuple)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

clusters = st.fixed_dictionaries(
    {
        "sites": st.lists(
            st.fixed_dictionaries({"name": names, "capacity": floats}), max_size=3
        ),
        "jobs": st.lists(st.fixed_dictionaries({"name": names}), max_size=3),
    }
)

MESSAGE_STRATEGIES = {
    "hello": st.builds(Hello, id=ids, peer=names),
    "hello_ack": st.builds(
        HelloAck, id=ids, worker_id=names, shards=st.integers(0, 99), solves=st.integers(0, 99)
    ),
    "ping": st.builds(Ping, id=ids),
    "pong": st.builds(
        Pong, id=ids, worker_id=names, shards=st.integers(0, 99), solves=st.integers(0, 99)
    ),
    "solve_shard": st.builds(
        SolveShard,
        id=ids,
        key=site_sets,
        cluster=st.one_of(st.none(), clusters),
        oracle=st.sampled_from(["parametric", "legacy"]),
        seed_cuts=st.lists(site_sets, max_size=3).map(tuple),
        floors=st.one_of(st.none(), st.lists(floats, max_size=4).map(tuple)),
        resource_totals=st.one_of(
            st.none(),
            st.dictionaries(names, st.floats(min_value=0.0, max_value=1e9), max_size=3).map(
                lambda d: tuple(sorted(d.items()))
            ),
        ),
    ),
    "shard_solved": st.builds(
        ShardSolved,
        id=ids,
        key=site_sets,
        matrix=st.lists(st.lists(floats, min_size=2, max_size=2), max_size=3).map(
            lambda rows: tuple(tuple(r) for r in rows)
        ),
        diagnostics=st.one_of(
            st.none(), st.dictionaries(st.sampled_from(["rounds", "cuts_generated"]), st.integers(0, 9))
        ),
        seconds=st.floats(min_value=0.0, max_value=1e6),
        discovered_cuts=st.lists(site_sets, max_size=3).map(tuple),
    ),
    "error": st.builds(ErrorReply, id=ids, code=names, message=st.text(max_size=40)),
    "shutdown": st.builds(Shutdown, id=ids),
    "shutdown_ack": st.builds(ShutdownAck, id=ids),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


def test_every_registered_type_has_a_strategy():
    # A new message type must join the round-trip suite to ship.
    assert set(MESSAGE_STRATEGIES) == set(MESSAGE_TYPES)


class TestRoundTrip:
    @given(msg=any_message)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_identity(self, msg):
        frame = encode_message(msg)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        decoded = decode_message(frame[4:])
        assert type(decoded) is type(msg)
        assert decoded == msg

    @given(msg=any_message)
    @settings(max_examples=50, deadline=None)
    def test_socket_round_trip(self, msg):
        a, b = socket.socketpair()
        try:
            send_message(a, msg)
            received = recv_message(b)
        finally:
            a.close()
            b.close()
        assert received == msg

    def test_floats_survive_bit_for_bit(self):
        # The bit-identity cornerstone: repr-based JSON floats round-trip
        # IEEE-754 exactly, even "ugly" values.
        values = (0.1 + 0.2, 1.0 / 3.0, 2.0**-1074, 1e308, 0.0, -0.0)
        msg = ShardSolved(id=1, key=("s",), matrix=(values,))
        assert decode_message(encode_message(msg)[4:]).matrix[0] == values


# ----------------------------------------------------------------------
# Adversarial framing
# ----------------------------------------------------------------------


def _recv_from(raw: bytes):
    """Run recv_message against a scripted peer that sends ``raw`` then
    closes.  Returns the message or raises what recv_message raised —
    with a watchdog proving it did not hang."""
    a, b = socket.socketpair()
    b.settimeout(5.0)

    def feed():
        try:
            a.sendall(raw)
        finally:
            a.close()

    t = threading.Thread(target=feed, daemon=True)
    t.start()
    try:
        return recv_message(b)
    finally:
        b.close()
        t.join(timeout=5.0)


class TestAdversarialFraming:
    def test_clean_close_between_frames(self):
        with pytest.raises(ConnectionClosed):
            _recv_from(b"")

    def test_truncated_header(self):
        with pytest.raises(ProtocolError) as exc:
            _recv_from(b"\x00\x00")
        assert not isinstance(exc.value, ConnectionClosed)
        assert "mid-frame" in str(exc.value)

    def test_truncated_payload(self):
        frame = encode_message(Ping(id=1))
        with pytest.raises(ProtocolError) as exc:
            _recv_from(frame[:-3])
        assert "mid-frame" in str(exc.value)

    def test_oversized_length_prefix_refused_unread(self):
        # 512 MiB announced; only the 4 header bytes ever sent.  The
        # receiver must refuse from the prefix alone.
        with pytest.raises(FrameTooLarge):
            _recv_from(struct.pack(">I", 512 << 20))

    def test_frame_limit_is_the_http_limit(self):
        assert MAX_FRAME_BYTES == MAX_BODY_BYTES
        with pytest.raises(FrameTooLarge):
            _recv_from(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_empty_frame(self):
        with pytest.raises(ProtocolError, match="empty frame"):
            _recv_from(struct.pack(">I", 0))

    def test_garbage_bytes(self):
        garbage = b"\xff\xfenot json at all"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            _recv_from(struct.pack(">I", len(garbage)) + garbage)

    @given(noise=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_noise_never_hangs(self, noise):
        # Any byte salad must resolve to a message or a typed error —
        # never a hang (the scripted peer closes after sending).
        try:
            _recv_from(noise)
        except ProtocolError:
            pass

    def _frame(self, obj) -> bytes:
        payload = json.dumps(obj).encode()
        return struct.pack(">I", len(payload)) + payload

    def test_wrong_version(self):
        with pytest.raises(ProtocolError, match="version"):
            _recv_from(self._frame({"v": PROTOCOL_VERSION + 1, "type": "ping", "id": 1, "body": {}}))

    def test_missing_envelope_fields(self):
        with pytest.raises(ProtocolError, match="missing"):
            _recv_from(self._frame({"v": PROTOCOL_VERSION, "type": "ping"}))

    def test_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            _recv_from(self._frame({"v": PROTOCOL_VERSION, "type": "nope", "id": 1, "body": {}}))

    def test_non_integer_id(self):
        with pytest.raises(ProtocolError, match="id"):
            _recv_from(
                self._frame({"v": PROTOCOL_VERSION, "type": "ping", "id": "seven", "body": {}})
            )

    def test_unknown_body_fields(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            _recv_from(
                self._frame(
                    {"v": PROTOCOL_VERSION, "type": "ping", "id": 1, "body": {"bogus": 1}}
                )
            )

    def test_non_object_body(self):
        with pytest.raises(ProtocolError, match="body"):
            _recv_from(self._frame({"v": PROTOCOL_VERSION, "type": "ping", "id": 1, "body": []}))

    def test_non_object_envelope(self):
        with pytest.raises(ProtocolError, match="object"):
            _recv_from(self._frame([1, 2, 3]))

    def test_oversized_message_refused_at_send(self):
        big = ErrorReply(id=1, code="x", message="y" * (MAX_FRAME_BYTES + 10))
        with pytest.raises(FrameTooLarge):
            encode_message(big)
