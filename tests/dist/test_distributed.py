"""The tentpole contract: distributed solve == ``solve_amf(shards=True)``.

Hypothesis generates block-diagonal clusters (each block one connected
component), solves them monolithically in-process, then through a
coordinator + two-worker pool, and asserts the stitched matrices are
**bit-identical** — ``np.array_equal``, no tolerance.  A second property
kills a worker *between* solves of a run and asserts the post-failover
answers are still bit-identical, which pins down that shard reassignment
plus subset-seeded basis re-warm never changes results.

Workers are real TCP servers on background threads (same code as spawned
processes; no fork overhead in the property loop)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amf import solve_amf
from repro.core.sharding import decompose, stitch
from repro.dist import SolverWorker, WorkerPool
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site

blocks = st.lists(
    st.tuples(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3)),
    min_size=1,
    max_size=4,
)


def build_cluster(block_shapes, seed):
    rng = np.random.default_rng(seed)
    sites, jobs = [], []
    for b, (n, m) in enumerate(block_shapes):
        names = [f"b{b}s{j}" for j in range(m)]
        sites.extend(Site(nm, float(rng.uniform(0.5, 5.0))) for nm in names)
        for i in range(n):
            # sparse workloads so cuts actually bind sometimes
            touched = names[: max(1, rng.integers(1, m + 1))]
            jobs.append(Job(f"b{b}j{i}", {nm: float(rng.uniform(0.2, 2.0)) for nm in touched}))
    return Cluster(tuple(sites), tuple(jobs))


def pool_solve(pool, cluster) -> np.ndarray:
    shards = decompose(cluster)
    results = pool.solve_shards(shards)
    return stitch(cluster, [(r.shard, r.matrix) for r in results])


class TestBitIdentity:
    @given(shapes=blocks, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_distributed_equals_monolithic(self, shapes, seed):
        cluster = build_cluster(shapes, seed)
        reference = solve_amf(cluster, shards=True)
        workers = [SolverWorker().start() for _ in range(2)]
        try:
            with WorkerPool([w.address for w in workers], heartbeat_interval=0.2) as pool:
                distributed = pool_solve(pool, cluster)
        finally:
            for w in workers:
                w.close()
        assert np.array_equal(reference.matrix, distributed)

    @given(shapes=blocks, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_bit_identical_after_mid_run_failover(self, shapes, seed):
        cluster = build_cluster(shapes, seed)
        reference = solve_amf(cluster, shards=True).matrix
        workers = [SolverWorker().start() for _ in range(2)]
        try:
            with WorkerPool([w.address for w in workers], heartbeat_interval=0.2) as pool:
                # warm run: every worker owns shards and holds warm bases
                assert np.array_equal(reference, pool_solve(pool, cluster))
                # kill one worker abruptly; the next solve hits the dead
                # connection, fails over and replays on the survivor with
                # mirror-seeded bases
                victim_id = pool.live_workers[0]
                next(w for w in workers if w.worker_id == victim_id).close()
                after = pool_solve(pool, cluster)
                assert np.array_equal(reference, after)
                assert pool.stats.failovers == 1
                # and again, purely on the survivor, still identical
                assert np.array_equal(reference, pool_solve(pool, cluster))
        finally:
            for w in workers:
                w.close()


class TestServiceBackend:
    def test_service_dist_equals_local(self):
        from repro.model.job import Job as J
        from repro.service import AllocationService, ClusterState, JobArrived

        sites = [Site(f"s{i}", 10.0) for i in range(4)]
        jobs = [J(f"j{i}", {f"s{i % 4}": 1.0, f"s{(i + 1) % 4}": 0.5}) for i in range(6)]

        local = AllocationService(ClusterState(sites), observability=False)
        workers = [SolverWorker().start() for _ in range(2)]
        pool = WorkerPool([w.address for w in workers], heartbeat_interval=0.2).start()
        dist = AllocationService(
            ClusterState(sites), backend="dist", pool=pool, observability=False
        )
        try:
            for svc in (local, dist):
                for job in jobs:
                    svc.submit(JobArrived(job))
            a = local.allocation().allocation
            b = dist.allocation().allocation
            assert np.array_equal(a.matrix, b.matrix)
            assert b.policy == "amf-dist"
            assert dist.stats()["dist"]["backend"] == "dist"
            assert local.stats()["dist"] == {"backend": "local"}
        finally:
            dist.close()  # stops the pool
            for w in workers:
                w.close()

    def test_total_pool_death_degrades_to_local_fallback(self):
        from repro.model.job import Job as J
        from repro.service import AllocationService, ClusterState, JobArrived

        sites = [Site(f"s{i}", 10.0) for i in range(2)]
        worker = SolverWorker().start()
        pool = WorkerPool([worker.address], heartbeat_interval=0.2).start()
        svc = AllocationService(
            ClusterState(sites), backend="dist", pool=pool, observability=False
        )
        try:
            svc.submit(JobArrived(J("j0", {"s0": 1.0})))
            first = svc.allocation().allocation
            assert first.policy == "amf-dist"
            worker.close()
            pool.fail_worker(worker.worker_id, "test kill")
            svc.submit(JobArrived(J("j1", {"s1": 1.0})))
            served = svc.allocation().allocation
            # DistError propagated, the resilient chain served it locally
            assert served.policy != "amf-dist"
            assert svc.resilience.fallback_activations >= 1
            reference = solve_amf(svc.state.snapshot(), shards=True)
            assert np.allclose(served.matrix, reference.matrix)
        finally:
            svc.close()
            worker.close()
