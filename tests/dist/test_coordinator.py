"""Coordinator-side pool mechanics: assignment, RPC faults, failover.

Workers here are real :class:`SolverWorker` TCP servers running on
background threads of this process — same code as the spawned processes,
without fork overhead — so the failure injections (closing a worker's
listener, killing its sockets mid-run) exercise the genuine network
paths."""

import numpy as np
import pytest

from repro.core.sharding import ShardBasisPool, decompose, solve_shards
from repro.dist.coordinator import DistError, ShardAssignment, WorkerPool
from repro.dist.worker import SolverWorker
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


def block_cluster(blocks, seed=0):
    rng = np.random.default_rng(seed)
    sites, jobs = [], []
    for b, (n, m) in enumerate(blocks):
        names = [f"b{b}s{j}" for j in range(m)]
        sites.extend(Site(nm, float(rng.uniform(1.0, 5.0))) for nm in names)
        for i in range(n):
            jobs.append(Job(f"b{b}j{i}", {nm: float(rng.uniform(0.2, 2.0)) for nm in names}))
    return Cluster(tuple(sites), tuple(jobs))


@pytest.fixture
def workers():
    ws = [SolverWorker().start(), SolverWorker().start()]
    yield ws
    for w in ws:
        w.close()


@pytest.fixture
def pool(workers):
    p = WorkerPool(
        [w.address for w in workers], heartbeat_interval=0.05, miss_threshold=2
    ).start()
    yield p
    p.stop()


class TestShardAssignment:
    def test_least_loaded_deterministic(self):
        a = ShardAssignment()
        live = ["w1", "w0"]
        keys = [frozenset({f"s{i}"}) for i in range(4)]
        owners = [a.assign(k, live) for k in keys]
        # round-robins by load, ties broken by sorted id
        assert owners == ["w0", "w1", "w0", "w1"]

    def test_sticky_while_owner_lives(self):
        a = ShardAssignment()
        key = frozenset({"s"})
        first = a.assign(key, ["w0", "w1"])
        for _ in range(5):
            assert a.assign(key, ["w0", "w1"]) == first

    def test_drop_worker_orphans_and_reassigns(self):
        a = ShardAssignment()
        keys = [frozenset({f"s{i}"}) for i in range(4)]
        for k in keys:
            a.assign(k, ["w0", "w1"])
        orphaned = a.drop_worker("w0")
        assert len(orphaned) == 2
        for k in orphaned:
            assert a.assign(k, ["w1"]) == "w1"
        assert a.drop_worker("w0") == []

    def test_no_live_workers_raises(self):
        with pytest.raises(ValueError):
            ShardAssignment().assign(frozenset({"s"}), [])


class TestPoolSolve:
    def test_matches_local_solve_exactly(self, pool):
        cluster = block_cluster([(3, 2), (2, 3), (1, 1)])
        shards = decompose(cluster)
        local = solve_shards(shards, bases=ShardBasisPool(max_cuts=64))
        remote = pool.solve_shards(shards)
        assert [r.shard.key for r in remote] == [r.shard.key for r in local]
        for mine, theirs in zip(local, remote):
            assert np.array_equal(mine.matrix, theirs.matrix)
            assert mine.diagnostics.rounds == theirs.diagnostics.rounds

    def test_reply_probe_stats_merged_into_pool(self, pool):
        """Satellite of the oracle pipeline: each ShardSolved reply carries
        the worker's full diagnostics and the pool folds them, so the dist
        section of /v1/stats reports the same probes_* breakdown the local
        backend does."""
        cluster = block_cluster([(3, 2), (2, 3)])
        shards = decompose(cluster)
        local = solve_shards(shards)
        remote = pool.solve_shards(shards)
        probes = pool.stats_dict()["probes"]
        for field in ("rounds", "feasibility_solves", "probes_warm", "probes_cold"):
            assert probes[field] == sum(getattr(r.diagnostics, field) for r in local), field
        assert probes["probes_reused"] == sum(r.diagnostics.probes_reused for r in local)
        # and the per-result records round-tripped the wire intact
        for mine, theirs in zip(local, remote):
            assert mine.diagnostics == theirs.diagnostics

    def test_ggt_oracle_over_the_wire(self, workers):
        pool = WorkerPool(
            [w.address for w in workers], oracle="ggt", heartbeat_interval=0.05
        ).start()
        try:
            cluster = block_cluster([(3, 2), (2, 2)])
            shards = decompose(cluster)
            local = solve_shards(shards, oracle="ggt")
            remote = pool.solve_shards(shards)
            for mine, theirs in zip(local, remote):
                assert np.array_equal(mine.matrix, theirs.matrix)
                assert theirs.diagnostics.ggt_sweeps >= 1
            assert pool.stats_dict()["probes"]["ggt_sweeps"] == len(shards)
        finally:
            pool.stop()

    def test_results_in_input_order_and_jobless_skipped(self, pool):
        cluster = block_cluster([(2, 2), (1, 1)])
        shards = decompose(cluster)
        remote = pool.solve_shards(shards)
        assert [r.shard.key for r in remote] == [s.key for s in shards if s.n_jobs > 0]
        assert pool.solve_shards([]) == []

    def test_assignment_spreads_across_workers(self, pool):
        cluster = block_cluster([(1, 1), (1, 2), (1, 3), (2, 1)])
        pool.solve_shards(decompose(cluster))
        loads = [len(keys) for keys in pool.assignment.to_dict().values()]
        assert sorted(loads) == [2, 2]

    def test_repeat_solves_are_sticky_and_warm(self, pool, workers):
        cluster = block_cluster([(2, 2), (3, 2)])
        shards = decompose(cluster)
        first = pool.solve_shards(shards)
        owners_before = dict(pool.assignment._owner)
        second = pool.solve_shards(shards)
        assert dict(pool.assignment._owner) == owners_before
        for a, b in zip(first, second):
            assert np.array_equal(a.matrix, b.matrix)
        # workers kept their per-shard bases: the repeat solve seeded warm
        warm = sum(w.bases.total_cuts for w in workers)
        discovered = sum(len(r.discovered_cuts) for r in first)
        assert warm >= discovered


class TestFailover:
    def test_rpc_fault_fails_over_and_retries(self, pool, workers):
        cluster = block_cluster([(2, 2), (2, 3), (1, 2)])
        shards = decompose(cluster)
        local = solve_shards(shards, bases=ShardBasisPool(max_cuts=64))
        pool.solve_shards(shards)
        victim = pool.live_workers[0]
        dead_worker = next(w for w in workers if w.worker_id == victim)
        dead_worker.close()  # next RPC to it fails -> immediate failover
        remote = pool.solve_shards(shards)
        for mine, theirs in zip(local, remote):
            assert np.array_equal(mine.matrix, theirs.matrix)
        assert pool.live_workers == [w for w in pool.live_workers if w != victim]
        assert pool.stats.failovers == 1
        assert pool.stats.reassignments >= 1

    def test_failed_over_shards_reseed_from_mirror(self, pool, workers):
        cluster = block_cluster([(3, 3)])
        shards = decompose(cluster)
        first = pool.solve_shards(shards)
        key = first[0].shard.key
        assert pool.mirror.basis_for(key).sets() == first[0].discovered_cuts
        victim = pool.assignment.owner_of(key)
        pool.fail_worker(victim, "test kill")
        assert key in pool._reseed
        survivor_worker = next(w for w in workers if w.worker_id != victim)
        again = pool.solve_shards(shards)
        assert np.array_equal(first[0].matrix, again[0].matrix)
        assert key not in pool._reseed
        # the new owner's basis was warmed with the mirrored cuts
        if first[0].discovered_cuts:
            assert survivor_worker.bases.basis_for(key).sets() >= first[0].discovered_cuts

    def test_all_workers_dead_raises_dist_error(self, pool, workers):
        for w in workers:
            pool.fail_worker(w.worker_id, "test")
        with pytest.raises(DistError, match="no live workers"):
            pool.solve_shards(decompose(block_cluster([(1, 1)])))

    def test_fail_worker_is_idempotent(self, pool):
        victim = pool.live_workers[0]
        pool.fail_worker(victim, "once")
        pool.fail_worker(victim, "twice")
        assert pool.stats.failovers == 1

    def test_heartbeat_declares_silent_death(self, pool, workers):
        import time

        workers[0].close()
        deadline = time.monotonic() + 5.0
        while len(pool.live_workers) > 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert len(pool.live_workers) == 1
        assert pool.stats.failovers == 1


class TestPoolEdges:
    def test_worker_error_reply_is_dist_error_without_failover(self, pool):
        # a malformed solve (no cluster) is refused by the worker; the
        # worker stays alive and the pool surfaces the refusal
        from repro.dist.protocol import SolveShard

        client = pool._clients[pool.live_workers[0]]
        with pytest.raises(DistError, match="refused"):
            client.solve(SolveShard(id=0, key=("x",), cluster=None))
        assert len(pool.live_workers) == 2

    def test_stats_dict_shape(self, pool):
        pool.solve_shards(decompose(block_cluster([(2, 2)])))
        stats = pool.stats_dict()
        assert stats["workers_alive"] == 2
        assert stats["rpcs"] == 1
        assert set(stats["workers"]) == set(pool.live_workers)
        assert stats["mirror_shards"] == 1
        import json

        json.dumps(stats)  # must be JSON-ready for /v1/stats

    def test_pool_requires_addresses(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_shutdown_workers_flag_stops_remote(self, workers):
        pool = WorkerPool(
            [w.address for w in workers], heartbeat_interval=0.05, miss_threshold=2
        ).start()
        pool.stop(shutdown_workers=True)
        import time

        deadline = time.monotonic() + 5.0
        while any(w.running for w in workers) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not any(w.running for w in workers)
