"""Protocol v2: resource totals on the wire, fail-closed version gating.

A v1 peer has no notion of federation-wide dominant-share denominators —
cross-version "best effort" would silently solve multi-resource shards
with the wrong objective.  So version disagreement must *refuse*, typed,
at every layer: ``decode_message`` raises :class:`VersionMismatch`, the
worker answers one stream-level ``ErrorReply(id=0)`` and hangs up, and
the coordinator surfaces that refusal as :class:`DistError` (which the
resilient policy turns into a local fallback, never a degraded answer).
"""

import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.sharding import decompose, stitch
from repro.dist.coordinator import DistError, WorkerClient, WorkerPool
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ErrorReply,
    SolveShard,
    VersionMismatch,
    decode_message,
    encode_message,
    recv_message,
)
from repro.dist.worker import SolverWorker
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.multiresource import TableCache, solve_multiresource


def frame(obj: dict) -> bytes:
    payload = json.dumps(obj).encode()
    return struct.pack(">I", len(payload)) + payload


class TestVersionGate:
    def test_protocol_version_bumped_for_vectors(self):
        assert PROTOCOL_VERSION == 2

    @pytest.mark.parametrize("v", [1, 3, "2", None])
    def test_decode_rejects_foreign_versions(self, v):
        body = {"v": v, "type": "ping", "id": 7, "body": {}}
        with pytest.raises(VersionMismatch):
            decode_message(json.dumps(body).encode())

    def test_foreign_envelope_shape_still_answers_version(self):
        # a hypothetical v1/v3 frame with different fields must be judged
        # on its version, not on its shape
        with pytest.raises(VersionMismatch):
            decode_message(json.dumps({"v": 1, "t": "ping"}).encode())

    def test_version_mismatch_is_a_protocol_error(self):
        from repro.dist.protocol import ProtocolError

        assert issubclass(VersionMismatch, ProtocolError)

    def test_worker_refuses_v1_stream_then_hangs_up(self):
        worker = SolverWorker().start()
        try:
            with socket.create_connection(worker.address, timeout=10) as sock:
                sock.sendall(frame({"v": 1, "type": "ping", "id": 9, "body": {}}))
                reply = recv_message(sock)
                assert isinstance(reply, ErrorReply)
                assert reply.id == 0  # stream-level, not tied to the RPC id
                assert reply.code == "version_mismatch"
                with pytest.raises(ConnectionClosed):
                    recv_message(sock)
        finally:
            worker.close()

    def test_coordinator_surfaces_refusal_as_dist_error(self):
        """A peer that answers every frame with a stream-level refusal
        (what our side of a cross-version pairing sends) yields a typed
        DistError immediately — no RPC-timeout spin, no retry storm."""
        server = socket.create_server(("127.0.0.1", 0))
        stop = threading.Event()

        def refuse(conn):
            with conn:
                try:
                    header = conn.recv(4)
                    if len(header) < 4:
                        return
                    (length,) = struct.unpack(">I", header)
                    conn.recv(length)
                    conn.sendall(
                        encode_message(
                            ErrorReply(id=0, code="version_mismatch", message="speak v2")
                        )
                    )
                except OSError:
                    pass

        def accept_loop():
            # the client dials a solve and a control connection before its
            # first frame, so each connection needs its own servicing thread
            while not stop.is_set():
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                threading.Thread(target=refuse, args=(conn,), daemon=True).start()

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        client = WorkerClient(server.getsockname())
        try:
            with pytest.raises(DistError, match="refused the stream.*version_mismatch"):
                client.connect()
        finally:
            stop.set()
            server.close()
            thread.join(timeout=5)


class TestResourceTotalsOnTheWire:
    def test_totals_canonicalized_and_round_tripped(self):
        msg = SolveShard(
            id=3,
            key=("a",),
            resource_totals=(("mem", 2.0), ("cpu", 1.0)),
        )
        assert msg.resource_totals == (("cpu", 1.0), ("mem", 2.0))
        decoded = decode_message(encode_message(msg)[4:])
        assert decoded == msg
        assert decoded.resource_totals == (("cpu", 1.0), ("mem", 2.0))

    def test_none_totals_stay_none(self):
        msg = SolveShard(id=4, key=("a",))
        assert decode_message(encode_message(msg)[4:]).resource_totals is None

    def test_pool_solves_mr_shards_under_federation_totals(self):
        """End-to-end: two crossing-dominance components solved remotely
        under the merged federation's denominators match the monolithic
        local solve — the exactness claim the totals field exists for."""

        def component(prefix: str, cpu: float, mem: float) -> tuple[list, list]:
            sites = [
                Site(f"{prefix}a", {"cpu": cpu, "mem": 2 * mem}),
                Site(f"{prefix}b", {"cpu": cpu / 2, "mem": 4 * mem}),
            ]
            jobs = [
                Job(
                    f"{prefix}j0",
                    {f"{prefix}a": 100.0, f"{prefix}b": 100.0},
                    resources={"cpu": 1.0, "mem": 4.0},
                ),
                Job(
                    f"{prefix}j1",
                    {f"{prefix}a": 100.0, f"{prefix}b": 100.0},
                    resources={"cpu": 4.0, "mem": 1.0},
                ),
            ]
            return sites, jobs

        s1, j1 = component("x", 8.0, 8.0)
        s2, j2 = component("y", 2.0, 1.0)
        merged = Cluster(s1 + s2, j1 + j2)
        local = solve_multiresource(merged, table_cache=TableCache())

        workers = [SolverWorker().start()]
        pool = WorkerPool([w.address for w in workers]).start()
        try:
            shards = decompose(merged)
            assert len(shards) == 2
            results = pool.solve_shards(shards, resource_totals=merged.resource_totals)
            matrix = stitch(merged, [(r.shard, r.matrix) for r in results])
        finally:
            pool.stop()
            for w in workers:
                w.close()
        dom = merged.dominant_factor()
        assert np.allclose(
            dom * matrix.sum(axis=1), dom * local.matrix.sum(axis=1), atol=1e-5
        )
