"""Tests for the fluid simulator engine."""

import numpy as np
import pytest

from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import FluidSimulator, simulate
from repro.sim.trace import Trace


def one_site(cap=1.0):
    return [Site("A", cap)]


class TestSingleJob:
    def test_runs_at_full_capacity(self):
        jobs = [Job("x", {"A": 2.0})]
        res = simulate(one_site(), jobs, "amf")
        assert res.records[0].jct == pytest.approx(2.0)
        assert res.n_finished == 1

    def test_demand_cap_limits_rate(self):
        jobs = [Job("x", {"A": 2.0}, demand={"A": 0.5})]
        res = simulate(one_site(), jobs, "amf")
        assert res.records[0].jct == pytest.approx(4.0)

    def test_arrival_offset(self):
        jobs = [Job("x", {"A": 1.0}, arrival=5.0)]
        res = simulate(one_site(), jobs, "amf")
        assert res.records[0].completion == pytest.approx(6.0)
        assert res.records[0].jct == pytest.approx(1.0)


class TestTwoJobsOneSite:
    def test_fair_share_then_speedup(self):
        """Classic M/G/1-PS dynamics: share while both run, full speed after."""
        jobs = [Job("short", {"A": 1.0}), Job("long", {"A": 2.0})]
        res = simulate(one_site(), jobs, "amf")
        by = {r.name: r for r in res.records}
        # both at rate 1/2 until short finishes at t=2; long then needs 1 more unit
        assert by["short"].completion == pytest.approx(2.0)
        assert by["long"].completion == pytest.approx(3.0)

    def test_sequential_arrivals(self):
        jobs = [Job("a", {"A": 2.0}), Job("b", {"A": 1.0}, arrival=1.0)]
        res = simulate(one_site(), jobs, "amf")
        by = {r.name: r for r in res.records}
        # a alone [0,1] does 1 unit; shared rate 0.5 each from t=1;
        # both have 1 unit left -> both finish at t=3
        assert by["a"].completion == pytest.approx(3.0)
        assert by["b"].completion == pytest.approx(3.0)


class TestMultiSiteDynamics:
    def test_starved_edge_recovers_after_reallocation(self):
        """AMF may starve an edge initially; dynamics must still finish the job."""
        sites = [Site("A", 1.0), Site("B", 1.0)]
        jobs = [
            Job("pinned", {"A": 1.0}),
            Job("spread", {"A": 1.0, "B": 1.0}),
        ]
        res = simulate(sites, jobs, "amf")
        assert res.n_finished == 2
        by = {r.name: r for r in res.records}
        # spread does site B work [0,1] while pinned owns A; then they share A
        assert by["pinned"].completion <= 2.0 + 1e-6
        assert by["spread"].completion <= 3.0 + 1e-6

    def test_work_conservation(self):
        """Utilization integral equals total completed work."""
        sites = [Site("A", 2.0), Site("B", 1.0)]
        jobs = [Job("x", {"A": 3.0, "B": 1.0}), Job("y", {"A": 1.0, "B": 2.0})]
        res = simulate(sites, jobs, "amf")
        total_work = sum(j.total_work for j in jobs)
        assert res.utilization_integral == pytest.approx(total_work, rel=1e-6)

    def test_policies_accept_callable(self):
        from repro.core.persite import solve_psmf

        res = simulate(one_site(), [Job("x", {"A": 1.0})], solve_psmf)
        assert res.policy == "solve_psmf"
        assert res.n_finished == 1


class TestStall:
    def test_zero_demand_job_stalls(self):
        jobs = [Job("x", {"A": 1.0}, demand={"A": 0.0})]
        res = simulate(one_site(), jobs, "amf")
        assert res.stalled
        assert res.n_finished == 0
        assert np.isinf(res.records[0].completion)


class TestTraceAndBudget:
    def test_trace_records_lifecycle(self):
        trace = Trace()
        simulate(one_site(), [Job("x", {"A": 1.0})], "amf", trace=trace)
        kinds = [e.kind for e in trace.events]
        assert kinds[0] == "arrival"
        assert "site-done" in kinds
        assert kinds[-1] == "completion"

    def test_event_budget_enforced(self):
        jobs = [Job("x", {"A": 1.0}), Job("y", {"A": 1.0})]
        with pytest.raises(ValueError, match="event budget"):
            FluidSimulator(one_site(), jobs, "amf", max_events=1).run()

    def test_policy_solve_count(self):
        res = simulate(one_site(), [Job("x", {"A": 1.0}), Job("y", {"A": 2.0})], "amf")
        assert res.n_policy_solves >= 2


class TestDeterminism:
    def test_same_input_same_output(self):
        sites = [Site("A", 1.5), Site("B", 1.0)]
        jobs = [
            Job("a", {"A": 2.0, "B": 1.0}, arrival=0.0),
            Job("b", {"A": 1.0}, arrival=0.5),
            Job("c", {"B": 2.0}, arrival=1.0),
        ]
        r1 = simulate(sites, jobs, "amf")
        r2 = simulate(sites, jobs, "amf")
        assert [x.completion for x in r1.records] == [x.completion for x in r2.records]


class TestPolicyComparison:
    def test_amf_mean_jct_not_worse_on_skewed_batch(self):
        """On the canonical skewed instance, AMF's batch drains no slower than PSMF."""
        sites = [Site("A", 1.0), Site("B", 1.0)]
        jobs = [
            Job("p1", {"A": 1.0}),
            Job("p2", {"A": 1.0}),
            Job("s", {"A": 0.5, "B": 1.5}),
        ]
        amf = simulate(sites, jobs, "amf")
        psmf = simulate(sites, jobs, "psmf")
        assert amf.makespan <= psmf.makespan + 1e-6
