"""Tests for simulation observers."""

import numpy as np
import pytest

from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import simulate
from repro.sim.observers import BalanceObserver, CompositeObserver, UtilizationObserver


def sites():
    return [Site("A", 1.0), Site("B", 1.0)]


class TestBalanceObserver:
    def test_perfectly_fair_run(self):
        obs = BalanceObserver()
        jobs = [Job("x", {"A": 1.0}), Job("y", {"B": 1.0})]
        simulate(sites(), jobs, "amf", observer=obs)
        assert obs.time_avg_jain == pytest.approx(1.0)
        assert obs.time_avg_cov == pytest.approx(0.0, abs=1e-9)

    def test_single_job_intervals_skipped(self):
        obs = BalanceObserver()
        simulate(sites(), [Job("x", {"A": 2.0})], "amf", observer=obs)
        assert obs.time_observed == 0.0
        assert np.isnan(obs.time_avg_jain)

    def test_imbalanced_psmf_scores_lower(self):
        jobs = [Job("p1", {"A": 1.0}), Job("p2", {"A": 1.0}), Job("s", {"A": 1.0, "B": 2.0})]
        obs_psmf, obs_amf = BalanceObserver(), BalanceObserver()
        simulate(sites(), jobs, "psmf", observer=obs_psmf)
        simulate(sites(), jobs, "amf", observer=obs_amf)
        assert obs_amf.time_avg_jain >= obs_psmf.time_avg_jain - 1e-9

    def test_time_weighting(self):
        """A long fair phase dominates a brief unfair one."""
        obs = BalanceObserver()
        jobs = [Job("x", {"A": 10.0}), Job("y", {"A": 10.0}), Job("z", {"B": 0.1})]
        simulate(sites(), jobs, "psmf", observer=obs)
        # after z finishes (t=0.1), x and y are perfectly equal for ~10 units
        assert obs.time_avg_jain > 0.95


class TestUtilizationObserver:
    def test_fully_used_site(self):
        obs = UtilizationObserver()
        simulate(sites(), [Job("x", {"A": 2.0})], "amf", observer=obs)
        avg = obs.averages()
        assert avg["A"] == pytest.approx(1.0)
        assert avg["B"] == pytest.approx(0.0)

    def test_empty_run(self):
        assert UtilizationObserver().averages() == {}


class TestChurnObserver:
    def test_static_single_job_no_churn(self):
        from repro.sim.observers import ChurnObserver

        obs = ChurnObserver()
        simulate(sites(), [Job("x", {"A": 5.0})], "amf", observer=obs)
        # single job, single interval per phase, nothing reallocates
        assert obs.mean_churn == pytest.approx(0.0, abs=1e-9) or np.isnan(obs.mean_churn)

    def test_reallocation_counted(self):
        from repro.sim.observers import ChurnObserver

        obs = ChurnObserver()
        # when the short job at A finishes, the long A+B job reclaims A
        jobs = [Job("short", {"A": 1.0}), Job("long", {"A": 2.0, "B": 2.0})]
        simulate(sites(), jobs, "amf", observer=obs)
        assert obs.events >= 1
        assert obs.total_churn > 0.0

    def test_departed_jobs_ignored(self):
        from repro.sim.observers import ChurnObserver

        obs = ChurnObserver()
        jobs = [Job("a", {"A": 1.0}), Job("b", {"A": 1.0}), Job("c", {"B": 3.0})]
        simulate(sites(), jobs, "amf", observer=obs)
        assert np.isfinite(obs.mean_churn)
        assert obs.mean_churn >= 0.0


class TestCompositeObserver:
    def test_fans_out(self):
        bal, util = BalanceObserver(), UtilizationObserver()
        comp = CompositeObserver([bal, util])
        jobs = [Job("x", {"A": 1.0}), Job("y", {"A": 1.0})]
        simulate(sites(), jobs, "amf", observer=comp)
        assert bal.time_observed > 0
        assert util.time_observed > 0
