"""Edge-case tests for the fluid simulator."""

import numpy as np
import pytest

from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import simulate


class TestSimultaneousEvents:
    def test_identical_arrivals(self):
        jobs = [Job("a", {"A": 1.0}, arrival=2.0), Job("b", {"A": 1.0}, arrival=2.0)]
        res = simulate([Site("A", 1.0)], jobs, "amf")
        by = {r.name: r for r in res.records}
        assert by["a"].completion == pytest.approx(4.0)
        assert by["b"].completion == pytest.approx(4.0)

    def test_identical_completions(self):
        jobs = [Job("a", {"A": 1.0}), Job("b", {"B": 1.0})]
        res = simulate([Site("A", 1.0), Site("B", 1.0)], jobs, "amf")
        assert all(r.completion == pytest.approx(1.0) for r in res.records)

    def test_arrival_exactly_at_completion(self):
        jobs = [Job("a", {"A": 1.0}), Job("b", {"A": 1.0}, arrival=1.0)]
        res = simulate([Site("A", 1.0)], jobs, "amf")
        by = {r.name: r for r in res.records}
        assert by["a"].completion == pytest.approx(1.0)
        assert by["b"].completion == pytest.approx(2.0)


class TestWeightedSimulation:
    def test_weighted_rates_respected(self):
        """A weight-3 job drains 3x faster while sharing."""
        jobs = [
            Job("heavy", {"A": 3.0}, weight=3.0),
            Job("light", {"A": 1.0}, weight=1.0),
        ]
        res = simulate([Site("A", 1.0)], jobs, "amf")
        by = {r.name: r for r in res.records}
        # rates 0.75 vs 0.25: both finish at exactly t=4
        assert by["heavy"].completion == pytest.approx(4.0)
        assert by["light"].completion == pytest.approx(4.0)


class TestLateAndGappedArrivals:
    def test_idle_gap_between_jobs(self):
        jobs = [Job("a", {"A": 1.0}), Job("b", {"A": 1.0}, arrival=10.0)]
        res = simulate([Site("A", 1.0)], jobs, "amf")
        by = {r.name: r for r in res.records}
        assert by["a"].completion == pytest.approx(1.0)
        assert by["b"].completion == pytest.approx(11.0)
        # utilization integral counts only busy time
        assert res.utilization_integral == pytest.approx(2.0)

    def test_all_arrivals_late(self):
        jobs = [Job("a", {"A": 2.0}, arrival=5.0)]
        res = simulate([Site("A", 2.0)], jobs, "amf")
        assert res.records[0].completion == pytest.approx(6.0)
        assert res.horizon == pytest.approx(6.0)


class TestCustomPolicyContracts:
    def test_zero_allocation_policy_stalls_cleanly(self):
        from repro.core.allocation import Allocation

        def lazy(cluster):
            return Allocation(cluster, np.zeros((cluster.n_jobs, cluster.n_sites)), policy="lazy")

        res = simulate([Site("A", 1.0)], [Job("x", {"A": 1.0})], lazy)
        assert res.stalled
        assert res.n_finished == 0

    def test_partial_allocation_policy_still_finishes(self):
        """A policy using half the capacity is slow but correct."""
        from repro.core.allocation import Allocation
        from repro.core.persite import solve_psmf

        def half(cluster):
            full = solve_psmf(cluster)
            return Allocation(cluster, full.matrix * 0.5, policy="half")

        res = simulate([Site("A", 1.0)], [Job("x", {"A": 1.0})], half)
        assert res.records[0].completion == pytest.approx(2.0)
