"""Fault-tolerance tests: failures, recoveries, the work ledger.

Deterministic single-job timelines pin down the retry/migrate semantics
exactly; seeded and hypothesis-generated traces check the conservation
identity ``work_completed + work_lost + work_remaining == total_work``
and ``utilization_integral == work_completed + work_reexecuted`` on
arbitrary churn.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import simulate
from repro.sim.observers import AvailabilityObserver
from repro.sim.trace import CapacityChange, SiteFailure, SiteRecovery, Trace
from repro.workload.failures import FailureSpec, generate_failure_trace
from repro.workload.generator import WorkloadSpec, generate_jobs, sites_for


def assert_ledger(res, jobs):
    total = sum(j.total_work for j in jobs)
    tol = 1e-6 * max(1.0, total)
    assert res.work_completed + res.work_lost + res.work_remaining == pytest.approx(total, abs=tol)
    assert res.utilization_integral == pytest.approx(res.work_completed + res.work_reexecuted, abs=tol)


class TestRetrySemantics:
    def test_full_restart_timeline(self):
        """cap 1, 2 units of work; fail at t=1, recover at t=2, lose the attempt."""
        jobs = [Job("x", {"A": 2.0})]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=faults, failure_mode="retry", restart_penalty=1.0)
        assert res.records[0].completion == pytest.approx(4.0)
        assert res.work_reexecuted == pytest.approx(1.0)
        assert res.work_completed == pytest.approx(2.0)
        assert res.n_requeues == 1
        assert_ledger(res, jobs)

    def test_perfect_checkpointing(self):
        """restart_penalty=0: the outage only costs the downtime."""
        jobs = [Job("x", {"A": 2.0})]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=faults, failure_mode="retry", restart_penalty=0.0)
        assert res.records[0].completion == pytest.approx(3.0)
        assert res.work_reexecuted == pytest.approx(0.0)
        assert_ledger(res, jobs)

    def test_retries_exhausted_degrades_job(self):
        jobs = [Job("x", {"A": 2.0})]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=faults, failure_mode="retry", max_retries=0)
        rec = res.records[0]
        # The attempt is invalidated and the whole edge abandoned at t=1.
        assert rec.finished and rec.degraded
        assert rec.completion == pytest.approx(1.0)
        assert res.work_lost == pytest.approx(2.0)
        assert res.work_completed == pytest.approx(0.0)
        assert res.n_degraded == 1
        assert_ledger(res, jobs)

    def test_never_recovering_site_stalls(self):
        jobs = [Job("x", {"A": 2.0})]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=[SiteFailure(1.0, "A")], failure_mode="retry")
        assert res.stalled
        assert not res.records[0].finished
        assert res.work_remaining == pytest.approx(2.0)  # 1 left + 1 invalidated
        assert_ledger(res, jobs)

    def test_arrival_during_outage_parks_without_retry_charge(self):
        sites = [Site("A", 1.0), Site("B", 1.0)]
        jobs = [Job("x", {"B": 1.0}), Job("y", {"A": 1.0}, arrival=1.0)]
        faults = [SiteFailure(0.5, "A"), SiteRecovery(2.0, "A")]
        res = simulate(sites, jobs, "amf", faults=faults, failure_mode="retry", max_retries=0)
        by = {r.name: r for r in res.records}
        # y arrives mid-outage: parked (not charged a retry), runs [2,3].
        assert by["y"].completion == pytest.approx(3.0)
        assert not by["y"].degraded
        assert_ledger(res, jobs)


class TestMigrateSemantics:
    def test_work_moves_to_surviving_site(self):
        sites = [Site("A", 1.0), Site("B", 1.0)]
        jobs = [Job("x", {"A": 2.0, "B": 2.0})]
        res = simulate(sites, jobs, "amf", faults=[SiteFailure(1.0, "A")], failure_mode="migrate")
        # [0,1] does 1 unit on each site; A's remaining 1 moves to B: 2 left at B.
        assert res.records[0].completion == pytest.approx(3.0)
        assert res.n_migrations == 1
        assert res.work_lost == 0.0
        assert res.work_reexecuted == 0.0
        assert_ledger(res, jobs)

    def test_no_survivor_falls_back_to_retry(self):
        jobs = [Job("x", {"A": 2.0})]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=faults, failure_mode="migrate")
        assert res.n_migrations == 0
        assert res.n_requeues == 1
        assert res.records[0].completion == pytest.approx(4.0)
        assert_ledger(res, jobs)


class TestBrownoutAndCapacity:
    def test_brownout_scales_capacity_without_displacing(self):
        jobs = [Job("x", {"A": 2.0})]
        res = simulate(
            [Site("A", 1.0)], jobs, "amf", faults=[SiteFailure(1.0, "A", degraded_fraction=0.5)]
        )
        # 1 unit in [0,1], then rate 0.5: 1 more unit takes 2.
        assert res.records[0].completion == pytest.approx(3.0)
        assert res.n_requeues == 0 and res.n_migrations == 0
        assert_ledger(res, jobs)

    def test_capacity_change_speeds_up(self):
        jobs = [Job("x", {"A": 2.0})]
        res = simulate([Site("A", 1.0)], jobs, "amf", faults=[CapacityChange(1.0, "A", capacity=2.0)])
        assert res.records[0].completion == pytest.approx(1.5)
        assert res.n_capacity_changes == 1
        assert_ledger(res, jobs)


class TestTraceEvents:
    def test_fault_lifecycle_recorded(self):
        trace = Trace()
        jobs = [Job("x", {"A": 2.0})]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        simulate([Site("A", 1.0)], jobs, "amf", faults=faults, trace=trace)
        kinds = [e.kind for e in trace.events]
        for expected in ("arrival", "site-failure", "requeue", "site-recovery", "completion"):
            assert expected in kinds, expected


class TestSeededChurn:
    @pytest.mark.parametrize("mode", ["retry", "migrate"])
    def test_conservation_under_generated_trace(self, mode):
        """A seeded trace with several failures runs to completion in both modes."""
        rng = np.random.default_rng(7)
        spec = WorkloadSpec(n_jobs=12, n_sites=4, theta=1.2)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        t0 = sum(j.total_work for j in jobs) / sum(s.capacity for s in sites)
        faults = generate_failure_trace(
            [s.name for s in sites], FailureSpec(mtbf=1.5 * t0, mttr=0.3 * t0, horizon=6.0 * t0), rng
        )
        assert sum(isinstance(f, SiteFailure) for f in faults) >= 3
        res = simulate(sites, jobs, "amf", faults=faults, failure_mode=mode, max_retries=10)
        assert res.n_failures >= 3
        assert res.n_recoveries >= 3
        assert res.n_finished == len(jobs)
        assert_ledger(res, jobs)

    @given(
        data=st.data(),
        mode=st.sampled_from(["retry", "migrate"]),
        penalty=st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, data, mode, penalty):
        """The work ledger balances for arbitrary failure/recovery schedules."""
        n_sites = data.draw(st.integers(1, 3))
        site_names = [f"s{j}" for j in range(n_sites)]
        sites = [Site(n, data.draw(st.floats(0.5, 2.0))) for n in site_names]
        jobs = []
        for i in range(data.draw(st.integers(1, 3))):
            load = {
                n: data.draw(st.floats(0.5, 3.0))
                for n in site_names
                if data.draw(st.booleans())
            }
            if not load:
                load = {site_names[0]: 1.0}
            jobs.append(Job(f"j{i}", load, arrival=data.draw(st.floats(0.0, 2.0))))
        faults = []
        for n in site_names:
            t = data.draw(st.floats(0.1, 4.0))
            for _ in range(data.draw(st.integers(0, 2))):
                faults.append(SiteFailure(t, n))
                t += data.draw(st.floats(0.1, 2.0))
                faults.append(SiteRecovery(t, n))
                t += data.draw(st.floats(0.1, 2.0))
        res = simulate(
            sites,
            jobs,
            "amf",
            faults=faults,
            failure_mode=mode,
            restart_penalty=penalty,
            max_retries=data.draw(st.integers(0, 3)),
        )
        assert_ledger(res, jobs)


class TestAvailabilityObserver:
    def test_counts_and_availability(self):
        obs = AvailabilityObserver()
        jobs = [Job("x", {"A": 2.0, "B": 2.0})]
        sites = [Site("A", 1.0), Site("B", 1.0)]
        faults = [SiteFailure(1.0, "A"), SiteRecovery(2.0, "A")]
        res = simulate(sites, jobs, "amf", faults=faults, failure_mode="retry", observer=obs)
        assert obs.n_failures == 1 and obs.n_recoveries == 1
        assert 0.0 < obs.availability < 1.0
        assert obs.work_requeued > 0.0
        assert res.n_finished == 1
        summary = obs.summary()
        assert summary["n_failures"] == 1.0

    def test_fallback_activations_surface_through_policy(self):
        from repro.core.policies import ResilientPolicy

        def broken(cluster):
            raise RuntimeError("solver exploded")

        policy = ResilientPolicy(broken, ("psmf",))
        obs = AvailabilityObserver(policy=policy)
        res = simulate([Site("A", 1.0)], [Job("x", {"A": 1.0})], policy, observer=obs)
        assert res.n_finished == 1
        assert obs.fallback_activations >= 1
