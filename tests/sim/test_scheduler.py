"""Tests for the TimedPolicy instrumentation wrapper."""

import numpy as np
import pytest

from repro.core.persite import solve_psmf
from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import simulate
from repro.sim.scheduler import SolveStats, TimedPolicy


class TestSolveStats:
    def test_empty_stats(self):
        s = SolveStats()
        assert np.isnan(s.mean_ms)
        assert np.isnan(s.mean_active_jobs)
        assert np.isnan(s.percentile_ms(50))

    def test_aggregation(self):
        s = SolveStats()
        s.solves = 2
        s.total_seconds = 0.004
        s.max_seconds = 0.003
        s.total_jobs_seen = 10
        s.samples = [0.001, 0.003]
        assert s.mean_ms == pytest.approx(2.0)
        assert s.max_ms == pytest.approx(3.0)
        assert s.mean_active_jobs == pytest.approx(5.0)
        assert s.percentile_ms(100) == pytest.approx(3.0)


class TestTimedPolicy:
    def test_by_name(self):
        timed = TimedPolicy("psmf")
        assert timed.__name__ == "psmf"

    def test_by_callable(self):
        timed = TimedPolicy(solve_psmf)
        assert timed.__name__ == "solve_psmf"

    def test_counts_solves_in_simulation(self):
        timed = TimedPolicy("amf")
        jobs = [Job("x", {"A": 1.0}), Job("y", {"A": 2.0})]
        res = simulate([Site("A", 1.0)], jobs, timed)
        assert timed.stats.solves == res.n_policy_solves
        assert timed.stats.total_seconds > 0.0
        assert timed.stats.mean_active_jobs >= 1.0

    def test_allocation_passthrough(self):
        from repro.model.cluster import Cluster

        c = Cluster.from_matrices([2.0], [[1.0], [1.0]])
        timed = TimedPolicy("amf")
        alloc = timed(c)
        assert np.allclose(alloc.aggregates, [1.0, 1.0])
        assert timed.stats.solves == 1

    def test_samples_optional(self):
        from repro.model.cluster import Cluster

        c = Cluster.from_matrices([2.0], [[1.0]])
        timed = TimedPolicy("psmf", keep_samples=False)
        timed(c)
        assert timed.stats.samples == []
        assert timed.stats.solves == 1
