"""Tests for simulation metrics containers."""

import numpy as np
import pytest

from repro.sim.metrics import JobRecord, SimulationResult


def rec(name="x", arrival=0.0, completion=2.0, work=1.0, iso=1.0) -> JobRecord:
    return JobRecord(name=name, arrival=arrival, completion=completion, total_work=work, isolated_time=iso)


class TestJobRecord:
    def test_jct(self):
        assert rec(arrival=1.0, completion=3.0).jct == pytest.approx(2.0)

    def test_slowdown(self):
        assert rec(completion=2.0, iso=0.5).slowdown == pytest.approx(4.0)

    def test_slowdown_zero_isolated(self):
        assert np.isinf(rec(iso=0.0).slowdown)

    def test_finished(self):
        assert rec().finished
        assert not rec(completion=np.inf).finished


class TestSimulationResult:
    def make(self) -> SimulationResult:
        res = SimulationResult(policy="p", total_capacity=10.0, horizon=4.0, utilization_integral=20.0)
        res.records = [
            rec("a", 0.0, 1.0),
            rec("b", 0.0, 3.0),
            rec("c", 1.0, np.inf),
        ]
        return res

    def test_counts(self):
        res = self.make()
        assert res.n_finished == 2
        assert len(res.records) == 3

    def test_jcts_finished_only(self):
        res = self.make()
        assert sorted(res.jcts().tolist()) == [1.0, 3.0]

    def test_mean_median(self):
        res = self.make()
        assert res.mean_jct == pytest.approx(2.0)
        assert res.median_jct == pytest.approx(2.0)

    def test_percentile(self):
        res = self.make()
        assert res.jct_percentile(100) == pytest.approx(3.0)

    def test_makespan(self):
        assert self.make().makespan == pytest.approx(3.0)

    def test_avg_utilization(self):
        assert self.make().avg_utilization == pytest.approx(0.5)

    def test_empty_stats_are_nan(self):
        res = SimulationResult(policy="p")
        assert np.isnan(res.mean_jct)
        assert np.isnan(res.makespan)

    def test_summary_keys(self):
        s = self.make().summary()
        assert {"n_jobs", "mean_jct", "p95_jct", "makespan", "mean_slowdown", "avg_utilization"} <= set(s)

    def test_str_renders(self):
        assert "mean JCT" in str(self.make())
