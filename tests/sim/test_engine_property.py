"""Property-based tests of the fluid simulator (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.site import Site
from repro.sim.engine import simulate


@st.composite
def dynamic_instances(draw):
    m = draw(st.integers(1, 3))
    n = draw(st.integers(1, 5))
    sites = [Site(f"s{j}", draw(st.floats(0.5, 3.0))) for j in range(m)]
    jobs = []
    for i in range(n):
        support = sorted(draw(st.sets(st.integers(0, m - 1), min_size=1, max_size=m)))
        workload = {f"s{j}": draw(st.floats(0.1, 3.0)) for j in support}
        arrival = draw(st.floats(0.0, 2.0))
        jobs.append(Job(f"j{i}", workload, arrival=arrival))
    return sites, jobs


class TestSimulatorInvariants:
    @given(dynamic_instances())
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_completion(self, inst):
        """Every job finishes; delivered resource equals total work."""
        sites, jobs = inst
        res = simulate(sites, jobs, "amf")
        assert res.n_finished == len(jobs)
        assert not res.stalled
        total_work = sum(j.total_work for j in jobs)
        assert res.utilization_integral == pytest.approx(total_work, rel=1e-5, abs=1e-6)

    @given(dynamic_instances())
    @settings(max_examples=30, deadline=None)
    def test_jct_at_least_isolated_time(self, inst):
        """No job can beat its contention-free completion time."""
        sites, jobs = inst
        res = simulate(sites, jobs, "amf")
        for rec in res.records:
            assert rec.jct >= rec.isolated_time * (1.0 - 1e-6)

    @given(dynamic_instances())
    @settings(max_examples=20, deadline=None)
    def test_policies_agree_on_total_work(self, inst):
        sites, jobs = inst
        a = simulate(sites, jobs, "amf")
        p = simulate(sites, jobs, "psmf")
        assert a.utilization_integral == pytest.approx(p.utilization_integral, rel=1e-5, abs=1e-6)

    @given(dynamic_instances())
    @settings(max_examples=20, deadline=None)
    def test_doubling_capacity_never_hurts_makespan(self, inst):
        sites, jobs = inst
        slow = simulate(sites, jobs, "amf")
        fast = simulate([s.scaled(2.0) for s in sites], jobs, "amf")
        if slow.n_finished == len(jobs):
            assert fast.makespan <= slow.makespan + 1e-6
