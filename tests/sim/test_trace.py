"""Tests for the event trace container."""

from repro.sim.trace import SimEvent, Trace


class TestSimEvent:
    def test_str_with_site(self):
        e = SimEvent(1.5, "site-done", "j1", "A")
        assert "site-done" in str(e) and "@ A" in str(e)

    def test_str_without_site(self):
        assert "@" not in str(SimEvent(0.0, "arrival", "j1"))


class TestTrace:
    def test_record_and_filter(self):
        t = Trace()
        t.record(SimEvent(0.0, "arrival", "a"))
        t.record(SimEvent(1.0, "completion", "a"))
        assert len(t.events) == 2
        assert [e.job for e in t.of_kind("arrival")] == ["a"]

    def test_bounded_trace_drops(self):
        t = Trace(max_events=1)
        t.record(SimEvent(0.0, "arrival", "a"))
        t.record(SimEvent(1.0, "completion", "a"))
        assert len(t.events) == 1
        assert t.dropped == 1

    def test_render_limits(self):
        t = Trace()
        for k in range(10):
            t.record(SimEvent(float(k), "arrival", f"j{k}"))
        text = t.render(limit=3)
        assert "more events" in text
