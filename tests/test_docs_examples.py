"""Keep the worked examples in docs/model.md honest."""

import numpy as np

from repro import Cluster, Job, Site, solve_amf, solve_amf_enhanced, solve_psmf


class TestModelDocExamples:
    def test_per_site_vs_aggregate_example(self):
        cluster = Cluster(
            sites=[Site("A", 1.0), Site("B", 1.0)],
            jobs=[
                Job("a", {"A": 1.0}),
                Job("b", {"A": 1.0}),
                Job("s", {"A": 0.5, "B": 1.5}),
            ],
        )
        assert np.allclose(solve_psmf(cluster).aggregates, [1 / 3, 1 / 3, 4 / 3])
        assert np.allclose(solve_amf(cluster).aggregates, [0.5, 0.5, 1.0], atol=1e-8)

    def test_sharing_incentive_example(self):
        cluster = Cluster(
            sites=[Site("A", 1.0), Site("B", 1.0)],
            jobs=[
                Job("a", {"A": 1.0}),
                Job("b", {"A": 1.0}),
                Job("c", {"A": 1.0, "B": 0.2}, demand={"B": 0.2}),
            ],
        )
        assert np.allclose(cluster.equal_partition_entitlements(), [1 / 3, 1 / 3, 1 / 3 + 0.2])
        assert np.allclose(solve_amf(cluster).aggregates, [0.4, 0.4, 0.4], atol=1e-8)
        assert np.allclose(
            solve_amf_enhanced(cluster).aggregates, [1 / 3, 1 / 3, 1 / 3 + 0.2], atol=1e-8
        )

    def test_readme_quickstart_snippet(self):
        import repro

        cluster = repro.Cluster.from_matrices(
            capacities=[10.0, 10.0],
            workloads=[[8.0, 2.0], [2.0, 8.0], [5.0, 5.0]],
        )
        alloc = repro.solve_amf(cluster)
        assert "policy=amf" in alloc.pretty()
        rep = repro.properties.check_all(alloc)
        assert rep.pareto and rep.max_min
