"""Tests for task-level jobs and discretization."""

import pytest

from repro.discrete.tasks import DiscreteJob, discretize_jobs
from repro.model.job import Job


class TestDiscreteJob:
    def test_basic(self):
        j = DiscreteJob("x", {"A": (4, 0.5), "B": (2, 1.0)})
        assert j.total_tasks == 6
        assert j.total_work == pytest.approx(4.0)
        assert j.work_at("A") == pytest.approx(2.0)
        assert j.work_at("C") == 0.0

    def test_zero_count_sites_dropped(self):
        j = DiscreteJob("x", {"A": (3, 1.0), "B": (0, 1.0)})
        assert set(j.tasks) == {"A"}

    def test_needs_tasks(self):
        with pytest.raises(ValueError, match="at least one task"):
            DiscreteJob("x", {"A": (0, 1.0)})

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            DiscreteJob("x", {"A": (-1, 1.0)})

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            DiscreteJob("x", {"A": (2, 0.0)})

    def test_fluid_job_roundtrip(self):
        j = DiscreteJob("x", {"A": (4, 0.5)}, weight=2.0, arrival=1.0)
        f = j.fluid_job()
        assert f.workload["A"] == pytest.approx(2.0)
        assert f.demand_at("A") == 4.0  # parallelism = task count
        assert f.weight == 2.0 and f.arrival == 1.0


class TestDiscretize:
    def test_work_preserved_exactly(self):
        jobs = [Job("x", {"A": 3.7, "B": 0.3})]
        for g in (0.1, 1.0, 7.0):
            d = discretize_jobs(jobs, g)[0]
            assert d.total_work == pytest.approx(4.0)

    def test_granularity_scales_task_count(self):
        jobs = [Job("x", {"A": 10.0})]
        coarse = discretize_jobs(jobs, 0.5)[0]
        fine = discretize_jobs(jobs, 5.0)[0]
        assert fine.total_tasks > coarse.total_tasks

    def test_at_least_one_task_per_site(self):
        jobs = [Job("x", {"A": 0.01})]
        d = discretize_jobs(jobs, 0.1)[0]
        assert d.tasks["A"][0] == 1

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            discretize_jobs([Job("x", {"A": 1.0})], 0.0)

    def test_metadata_carried(self):
        jobs = [Job("x", {"A": 1.0}, weight=3.0, arrival=2.0)]
        d = discretize_jobs(jobs, 1.0)[0]
        assert d.weight == 3.0 and d.arrival == 2.0
