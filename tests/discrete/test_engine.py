"""Tests for the discrete slot scheduler."""

import numpy as np
import pytest

from repro.discrete.engine import DiscreteSimulator, _largest_remainder, simulate_discrete
from repro.discrete.tasks import DiscreteJob, discretize_jobs
from repro.model.site import Site
from repro.sim.engine import simulate
from repro.workload.generator import WorkloadSpec, generate_jobs, sites_for


class TestLargestRemainder:
    def test_exact_integers(self):
        assert _largest_remainder({"a": 2.0, "b": 1.0}, 3) == {"a": 2, "b": 1}

    def test_fractions_rounded_to_largest(self):
        out = _largest_remainder({"a": 1.6, "b": 1.4}, 3)
        assert out == {"a": 2, "b": 1}

    def test_never_exceeds_slots(self):
        out = _largest_remainder({"a": 0.9, "b": 0.9, "c": 0.9}, 2)
        assert sum(out.values()) <= 2

    def test_zero_shares_get_nothing_extra(self):
        out = _largest_remainder({"a": 0.0, "b": 2.0}, 4)
        assert out["a"] == 0

    def test_deterministic_tie_break(self):
        out1 = _largest_remainder({"a": 0.5, "b": 0.5}, 1)
        out2 = _largest_remainder({"a": 0.5, "b": 0.5}, 1)
        assert out1 == out2


class TestSingleJob:
    def test_waves(self):
        # 4 tasks of 1s on 2 slots -> two waves -> JCT 2
        res = simulate_discrete([Site("A", 2.0)], [DiscreteJob("x", {"A": (4, 1.0)})], "amf")
        assert res.records[0].jct == pytest.approx(2.0)

    def test_arrival_offset(self):
        res = simulate_discrete([Site("A", 1.0)], [DiscreteJob("x", {"A": (1, 1.0)}, arrival=3.0)], "amf")
        assert res.records[0].completion == pytest.approx(4.0)

    def test_multi_site(self):
        res = simulate_discrete(
            [Site("A", 1.0), Site("B", 1.0)],
            [DiscreteJob("x", {"A": (2, 1.0), "B": (1, 3.0)})],
            "amf",
        )
        # A side takes 2 waves (2s); B side one 3s task -> JCT 3
        assert res.records[0].jct == pytest.approx(3.0)

    def test_isolated_time_computed(self):
        res = simulate_discrete([Site("A", 2.0)], [DiscreteJob("x", {"A": (4, 1.0)})], "amf")
        assert res.records[0].isolated_time == pytest.approx(2.0)
        assert res.records[0].slowdown == pytest.approx(1.0)


class TestFairSharing:
    def test_two_jobs_share_slots(self):
        jobs = [DiscreteJob("a", {"A": (4, 1.0)}), DiscreteJob("b", {"A": (4, 1.0)})]
        res = simulate_discrete([Site("A", 2.0)], jobs, "amf")
        assert res.n_finished == 2
        # each gets ~1 slot -> 4 waves
        for r in res.records:
            assert r.jct == pytest.approx(4.0)

    def test_work_conserving_backfill(self):
        # one job with lots of tasks, one with a single task: all slots busy
        jobs = [DiscreteJob("big", {"A": (8, 1.0)}), DiscreteJob("small", {"A": (1, 1.0)})]
        res = simulate_discrete([Site("A", 3.0)], jobs, "amf")
        assert res.makespan == pytest.approx(3.0)  # 9 task-seconds on 3 slots

    def test_no_preemption(self):
        """A long task keeps its slot even when fair shares shift."""
        jobs = [
            DiscreteJob("long", {"A": (1, 10.0)}),
            DiscreteJob("late", {"A": (5, 1.0)}, arrival=1.0),
        ]
        res = simulate_discrete([Site("A", 1.0)], jobs, "amf")
        by = {r.name: r for r in res.records}
        assert by["long"].completion == pytest.approx(10.0)
        assert by["late"].completion == pytest.approx(15.0)

    def test_requires_whole_slot(self):
        with pytest.raises(ValueError, match="whole slot"):
            DiscreteSimulator([Site("A", 0.5)], [DiscreteJob("x", {"A": (1, 1.0)})], "amf")


class TestAgainstFluid:
    def test_fine_granularity_approaches_fluid(self):
        spec = WorkloadSpec(n_jobs=10, n_sites=3, theta=1.0, demand_scale=None, mean_work=20.0)
        rng = np.random.default_rng(1)
        jobs = generate_jobs(spec, rng)
        sites = [Site(s.name, max(2.0, float(int(s.capacity)))) for s in sites_for(spec, jobs)]
        fluid = simulate(sites, jobs, "amf").mean_jct
        fine = simulate_discrete(sites, discretize_jobs(jobs, 6.0), "amf").mean_jct
        assert fine == pytest.approx(fluid, rel=0.12)

    def test_all_jobs_finish(self):
        spec = WorkloadSpec(n_jobs=15, n_sites=4, theta=1.5, mean_work=15.0)
        rng = np.random.default_rng(2)
        jobs = generate_jobs(spec, rng)
        sites = [Site(s.name, max(2.0, float(int(s.capacity)))) for s in sites_for(spec, jobs)]
        for policy in ("psmf", "amf"):
            res = simulate_discrete(sites, discretize_jobs(jobs, 1.0), policy)
            assert res.n_finished == 15

    def test_deterministic(self):
        spec = WorkloadSpec(n_jobs=8, n_sites=3, theta=1.0)
        rng = np.random.default_rng(3)
        jobs = discretize_jobs(generate_jobs(spec, rng), 1.0)
        sites = [Site(f"s{k}", 3.0) for k in range(3)]
        r1 = simulate_discrete(sites, jobs, "amf")
        r2 = simulate_discrete(sites, jobs, "amf")
        assert [x.completion for x in r1.records] == [x.completion for x in r2.records]
