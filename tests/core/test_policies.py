"""Tests for the policy registry."""

import numpy as np
import pytest

from repro.core.policies import POLICIES, get_policy

from tests.conftest import random_cluster


EXPECTED = {
    "psmf",
    "amf",
    "amf-e",
    "amf-ct",
    "amf-ct-quick",
    "amf-ct-makespan",
    "amf-ct-lex",
    "amf-e-ct",
    "amf-prop",
    "amf-resilient",
}


class TestRegistry:
    def test_expected_policies_registered(self):
        assert set(POLICIES) == EXPECTED

    def test_get_policy_unknown(self):
        with pytest.raises(KeyError, match="choices"):
            get_policy("nope")

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_every_policy_returns_valid_allocation(self, name, rng):
        c = random_cluster(np.random.default_rng(3), n_jobs=4, n_sites=3, cap_prob=0.0)
        alloc = get_policy(name)(c)  # Allocation constructor enforces feasibility
        assert alloc.matrix.shape == (4, 3)

    def test_amf_variants_share_aggregates(self, rng):
        """All amf+CT variants re-split the same AMF aggregate vector."""
        from repro.core.amf import amf_levels

        c = random_cluster(np.random.default_rng(5), n_jobs=5, n_sites=3, cap_prob=0.0)
        lv = amf_levels(c)
        for name in ("amf", "amf-ct", "amf-ct-quick", "amf-ct-makespan", "amf-ct-lex"):
            agg = get_policy(name)(c).aggregates
            assert np.allclose(agg, lv, atol=1e-5), name

    def test_enhanced_ct_keeps_floors(self, two_site_cluster):
        from repro.core.enhanced import sharing_incentive_floors

        alloc = get_policy("amf-e-ct")(two_site_cluster)
        floors = sharing_incentive_floors(two_site_cluster)
        assert (alloc.aggregates >= floors - 1e-6).all()
