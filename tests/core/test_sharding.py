"""Shard decomposition: partition correctness and AMF separability.

The load-bearing claim of :mod:`repro.core.sharding` is that solving each
connected component of the job-site bipartite graph independently yields
the *same* allocation as the monolithic solve (the feasible region is a
product of component-local regions, so the leximin decomposes).  The
hypothesis suite here pins that equivalence — including the degenerate
extremes (one big component; every job its own component) — plus exact
serial-vs-parallel agreement and the warm-basis pool mechanics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ABS_TOL
from repro.core.amf import solve_amf
from repro.core.sharding import (
    Shard,
    ShardBasisPool,
    decompose,
    solve_amf_sharded,
    solve_shards,
    stitch,
)
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


def block_cluster(blocks: list[tuple[int, int]], *, idle_sites: int = 0, seed: int = 0) -> Cluster:
    """A block-diagonal cluster: each ``(n_jobs, n_sites)`` block is one
    connected component (every job in a block touches every block site)."""
    rng = np.random.default_rng(seed)
    sites: list[Site] = []
    jobs: list[Job] = []
    for b, (n, m) in enumerate(blocks):
        names = [f"b{b}s{j}" for j in range(m)]
        sites.extend(Site(nm, float(rng.uniform(1.0, 5.0))) for nm in names)
        for i in range(n):
            workload = {nm: float(rng.uniform(0.2, 2.0)) for nm in names}
            jobs.append(Job(f"b{b}j{i}", workload))
    sites.extend(Site(f"idle{k}", 1.0) for k in range(idle_sites))
    return Cluster(tuple(sites), tuple(jobs))


class TestDecompose:
    def test_blocks_become_shards(self):
        cluster = block_cluster([(2, 2), (3, 1), (1, 3)])
        shards = decompose(cluster)
        assert [(len(s.job_indices), len(s.site_indices)) for s in shards] == [(2, 2), (3, 1), (1, 3)]

    def test_partition_is_exact(self):
        cluster = block_cluster([(2, 3), (4, 2)], idle_sites=2)
        shards = decompose(cluster)
        all_sites = sorted(i for s in shards for i in s.site_indices)
        all_jobs = sorted(i for s in shards for i in s.job_indices)
        assert all_sites == list(range(cluster.n_sites))
        assert all_jobs == list(range(cluster.n_jobs))

    def test_idle_sites_form_jobless_shards(self):
        cluster = block_cluster([(2, 2)], idle_sites=3)
        shards = decompose(cluster)
        jobless = [s for s in shards if s.n_jobs == 0]
        assert len(jobless) == 3
        assert all(len(s.site_indices) == 1 for s in jobless)

    def test_bridging_job_merges_blocks(self):
        sites = (Site("a", 1.0), Site("b", 1.0), Site("c", 1.0))
        jobs = (Job("x", {"a": 1.0}), Job("y", {"b": 1.0, "c": 1.0}), Job("z", {"a": 1.0, "b": 1.0}))
        shards = decompose(Cluster(sites, jobs))
        assert len(shards) == 1  # z bridges {a} and {b, c}

    def test_deterministic_order(self):
        cluster = block_cluster([(1, 2), (2, 2), (1, 1)], seed=3)
        keys = [s.key for s in decompose(cluster)]
        assert keys == [s.key for s in decompose(cluster)]
        # ordered by smallest site index -> block order
        assert keys[0] == frozenset({"b0s0", "b0s1"})

    def test_shard_cluster_is_self_contained(self):
        cluster = block_cluster([(2, 2), (1, 1)])
        for shard in decompose(cluster):
            assert {s.name for s in shard.cluster.sites} == shard.key
            for job in shard.cluster.jobs:
                assert set(job.workload) <= shard.key


class TestStitch:
    def test_round_trip_identity(self):
        cluster = block_cluster([(2, 2), (3, 3)], seed=1)
        full = solve_amf(cluster)
        pieces = []
        for shard in decompose(cluster):
            sub = full.matrix[np.ix_(shard.job_indices, shard.site_indices)]
            pieces.append((shard, sub))
        stitched = stitch(cluster, pieces)
        np.testing.assert_array_equal(stitched, full.matrix)


# -- separability: sharded == monolithic --------------------------------

_block = st.tuples(st.integers(1, 3), st.integers(1, 3))
_blocks = st.lists(_block, min_size=1, max_size=4)


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(blocks=_blocks, idle=st.integers(0, 2), seed=st.integers(0, 2**16))
    def test_sharded_matches_monolithic(self, blocks, idle, seed):
        # Aggregates are the leximin-unique quantity AMF defines; the
        # matrix is one of possibly many optimal realizations (ties can
        # break differently when the flow graph gains idle sites), and
        # feasibility of the sharded matrix is already enforced by the
        # Allocation constructor.
        cluster = block_cluster(blocks, idle_sites=idle, seed=seed)
        mono = solve_amf(cluster)
        sharded = solve_amf_sharded(cluster)
        np.testing.assert_allclose(
            sharded.aggregates, mono.aggregates, atol=ABS_TOL * 10, rtol=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 6), m=st.integers(1, 4), seed=st.integers(0, 2**16))
    def test_single_component_extreme(self, n, m, seed):
        # every job touches every site: exactly one shard whose sub-cluster
        # IS the cluster, so the sharded path runs the identical pipeline
        # and even the matrix must agree bit-for-bit
        cluster = block_cluster([(n, m)], seed=seed)
        assert len(decompose(cluster)) == 1
        mono = solve_amf(cluster)
        sharded = solve_amf_sharded(cluster)
        np.testing.assert_array_equal(sharded.matrix, mono.matrix)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 8), seed=st.integers(0, 2**16))
    def test_fully_disconnected_extreme(self, n, seed):
        # one private site per job: n singleton shards
        # one private site per job: the matrix is forced (each aggregate
        # lands on the job's only site), so full equality is well-defined
        cluster = block_cluster([(1, 1)] * n, seed=seed)
        assert len(decompose(cluster)) == n
        mono = solve_amf(cluster)
        sharded = solve_amf_sharded(cluster)
        np.testing.assert_allclose(sharded.matrix, mono.matrix, atol=ABS_TOL * 10, rtol=1e-9)

    def test_floors_respected_per_shard(self):
        cluster = block_cluster([(2, 2), (2, 2)], seed=7)
        floors = np.full(cluster.n_jobs, 0.1)
        mono = solve_amf(cluster, floors)
        sharded = solve_amf_sharded(cluster, floors)
        assert sharded.policy == "amf+floors"
        np.testing.assert_allclose(
            sharded.aggregates, mono.aggregates, atol=ABS_TOL * 10, rtol=1e-9
        )
        assert bool((sharded.aggregates >= floors - ABS_TOL * 10).all())

    def test_solve_amf_shards_flag(self):
        cluster = block_cluster([(2, 2), (2, 2)], seed=5)
        via_flag = solve_amf(cluster, shards=True)
        mono = solve_amf(cluster)
        np.testing.assert_allclose(
            via_flag.aggregates, mono.aggregates, atol=ABS_TOL * 10, rtol=1e-9
        )

    def test_shards_flag_rejects_cut_basis(self):
        from repro.core.amf import CutBasis

        cluster = block_cluster([(1, 1)])
        with pytest.raises(ValueError):
            solve_amf(cluster, shards=True, basis=CutBasis())


class TestParallelAgreement:
    @settings(max_examples=10, deadline=None)
    @given(blocks=_blocks, seed=st.integers(0, 2**16))
    def test_serial_equals_parallel_bitwise(self, blocks, seed):
        cluster = block_cluster(blocks, seed=seed)
        serial = solve_amf_sharded(cluster, workers=None)
        fanned = solve_amf_sharded(cluster, workers=4)
        np.testing.assert_array_equal(serial.matrix, fanned.matrix)

    def test_discovered_cuts_fold_back_identically(self):
        # a tight cluster that generates cuts; the basis pool must end up
        # with the same cut sets whether shards ran serial or fanned
        cluster = block_cluster([(3, 2), (3, 2)], seed=11)
        pools = []
        for workers in (None, 4):
            pool = ShardBasisPool()
            solve_amf_sharded(cluster, bases=pool, workers=workers)
            pools.append({key: basis.sets() for key, basis in pool.items()})
        assert pools[0] == pools[1]


class TestShardBasisPool:
    def test_lru_eviction(self):
        pool = ShardBasisPool(max_shards=2)
        a = pool.basis_for(frozenset({"a"}))
        pool.basis_for(frozenset({"b"}))
        assert pool.basis_for(frozenset({"a"})) is a  # refreshed, not evicted
        pool.basis_for(frozenset({"c"}))  # evicts "b" (least recent)
        assert len(pool) == 2
        assert frozenset({"b"}) not in pool

    def test_merge_warming_seeds_from_subset_keys(self):
        pool = ShardBasisPool()
        small = pool.basis_for(frozenset({"a", "b"}))
        small.record(frozenset({"a"}))
        merged = pool.basis_for(frozenset({"a", "b", "c"}))
        assert frozenset({"a"}) in merged.sets()

    def test_solve_shards_reuses_pool(self):
        cluster = block_cluster([(3, 2), (3, 2)], seed=11)
        shards = decompose(cluster)
        pool = ShardBasisPool()
        first = solve_shards(shards, bases=pool, oracle="parametric", workers=None)
        warm_total = sum(r.diagnostics.warm_cuts_seeded for r in first)
        assert warm_total == 0  # cold pool: nothing to seed
        second = solve_shards(shards, bases=pool, oracle="parametric", workers=None)
        for cold, warm in zip(first, second):
            np.testing.assert_array_equal(cold.matrix, warm.matrix)

    def test_clear(self):
        pool = ShardBasisPool()
        pool.basis_for(frozenset({"a"}))
        pool.clear()
        assert len(pool) == 0


class TestShardValue:
    def test_shard_is_frozen(self):
        cluster = block_cluster([(1, 1)])
        shard = decompose(cluster)[0]
        assert isinstance(shard, Shard)
        with pytest.raises(AttributeError):
            shard.key = frozenset()
