"""Unit + property tests for single-resource water-filling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waterfilling import fill_level, solve_capped_level, water_fill


class TestWaterFill:
    def test_equal_uncapped(self):
        a = water_fill(9.0, np.array([np.inf, np.inf, np.inf]))
        assert np.allclose(a, 3.0)

    def test_small_demand_saturates(self):
        a = water_fill(9.0, np.array([1.0, np.inf, np.inf]))
        assert np.allclose(a, [1.0, 4.0, 4.0])

    def test_all_saturate_below_capacity(self):
        a = water_fill(100.0, np.array([1.0, 2.0]))
        assert np.allclose(a, [1.0, 2.0])

    def test_zero_capacity(self):
        a = water_fill(0.0, np.array([1.0, 2.0]))
        assert np.allclose(a, 0.0)

    def test_zero_demand_agent(self):
        a = water_fill(4.0, np.array([0.0, np.inf]))
        assert np.allclose(a, [0.0, 4.0])

    def test_empty(self):
        assert water_fill(5.0, np.array([])).size == 0

    def test_weighted_split(self):
        a = water_fill(9.0, np.array([np.inf, np.inf]), weights=np.array([1.0, 2.0]))
        assert np.allclose(a, [3.0, 6.0])

    def test_weighted_with_caps(self):
        # weight-2 agent capped at 1: leftover goes to the other
        a = water_fill(4.0, np.array([np.inf, 1.0]), weights=np.array([1.0, 2.0]))
        assert np.allclose(a, [3.0, 1.0])

    def test_classic_water_level_example(self):
        # demands 1, 2, 4, 6 over capacity 10 -> levels 1, 2, 3.5, 3.5
        a = water_fill(10.0, np.array([1.0, 2.0, 4.0, 6.0]))
        assert np.allclose(a, [1.0, 2.0, 3.5, 3.5])

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            water_fill(-1.0, np.array([1.0]))

    def test_rejects_nan_caps(self):
        with pytest.raises(ValueError):
            water_fill(1.0, np.array([np.nan]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            water_fill(1.0, np.array([1.0]), weights=np.array([-1.0]))


class TestFillLevel:
    def test_level_matches_allocation(self):
        caps = np.array([1.0, 2.0, 4.0, 6.0])
        w = np.ones(4)
        level = fill_level(10.0, caps, w)
        assert level == pytest.approx(3.5)

    def test_oversupplied_level_is_max_breakpoint(self):
        caps = np.array([1.0, 2.0])
        level = fill_level(100.0, caps, np.ones(2))
        assert level == pytest.approx(2.0)


class TestSolveCappedLevel:
    def test_interior_solution(self):
        # sum min(l, [2, 4]) = 3 -> l = 1.5
        assert solve_capped_level(3.0, np.array([2.0, 4.0]), np.ones(2)) == pytest.approx(1.5)

    def test_after_first_breakpoint(self):
        # sum min(l, [1, 10]) = 5 -> 1 + l = 5 -> l = 4
        assert solve_capped_level(5.0, np.array([1.0, 10.0]), np.ones(2)) == pytest.approx(4.0)

    def test_weighted(self):
        # min(2l, 10) + min(l, 10) = 6 -> 3l = 6 -> l = 2
        assert solve_capped_level(6.0, np.array([10.0, 10.0]), np.array([2.0, 1.0])) == pytest.approx(2.0)

    def test_target_zero(self):
        assert solve_capped_level(0.0, np.array([1.0, 2.0]), np.ones(2)) == pytest.approx(0.0)

    def test_target_at_total(self):
        assert solve_capped_level(3.0, np.array([1.0, 2.0]), np.ones(2)) == pytest.approx(2.0)


@st.composite
def waterfill_cases(draw):
    n = draw(st.integers(1, 8))
    caps = [draw(st.one_of(st.floats(0.0, 10.0), st.just(float("inf")))) for _ in range(n)]
    weights = [draw(st.floats(0.1, 5.0)) for _ in range(n)]
    capacity = draw(st.floats(0.0, 30.0))
    return capacity, np.array(caps), np.array(weights)


class TestHypothesisInvariants:
    @given(waterfill_cases())
    @settings(max_examples=150, deadline=None)
    def test_invariants(self, case):
        capacity, caps, weights = case
        a = water_fill(capacity, caps, weights)
        # feasibility
        assert (a >= -1e-12).all()
        assert (a <= caps + 1e-9).all()
        assert a.sum() <= capacity + 1e-6
        # work conservation: either capacity exhausted or everyone saturated
        assert a.sum() == pytest.approx(min(capacity, float(np.where(np.isinf(caps), 1e18, caps).sum())), rel=1e-6, abs=1e-6)
        # max-min: all unsaturated agents share one weighted level
        levels = a / weights
        unsat = a < caps - 1e-9
        if unsat.any():
            lv = levels[unsat]
            assert lv.max() - lv.min() <= 1e-6 * max(1.0, lv.max())
            # saturated agents sit below the common level
            if (~unsat).any():
                assert levels[~unsat].max() <= lv.max() + 1e-6 * max(1.0, lv.max())
