"""Edge-case and stress tests for the AMF solver."""

import numpy as np
import pytest

from repro.core import properties
from repro.core.amf import amf_levels, solve_amf
from repro.core.waterfilling import water_fill
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


class TestTies:
    def test_identical_jobs_share_exactly(self):
        c = Cluster.uniform(7, 3, capacity=7.0)
        lv = amf_levels(c)
        assert np.allclose(lv, lv[0])
        assert lv.sum() == pytest.approx(21.0)

    def test_identical_caps_tie(self):
        c = Cluster.from_matrices([4.0], [[1.0]] * 4, [[0.5]] * 4)
        lv = amf_levels(c)
        assert np.allclose(lv, 0.5)

    def test_two_equal_bottlenecks(self):
        # two disjoint unit sites, each shared by two pinned jobs
        c = Cluster.from_matrices(
            [1.0, 1.0],
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]],
        )
        assert np.allclose(amf_levels(c), 0.5)

    def test_cascading_bottlenecks(self):
        # site capacities 1 < 2 < 4 shared by chains of jobs
        c = Cluster.from_matrices(
            [1.0, 2.0, 4.0],
            [
                [1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0],
                [0.0, 1.0, 1.0],
                [0.0, 0.0, 1.0],
            ],
        )
        lv = amf_levels(c)
        a = solve_amf(c)
        assert properties.is_max_min_fair(a)
        assert lv.sum() == pytest.approx(min(7.0, lv.sum()))
        # total capacity is 7 and all jobs are elastic -> fully allocated
        assert lv.sum() == pytest.approx(7.0)


class TestDegenerate:
    def test_single_job_takes_reachable_capacity(self):
        c = Cluster.from_matrices([2.0, 5.0], [[1.0, 1.0]])
        assert amf_levels(c)[0] == pytest.approx(7.0)

    def test_single_job_single_site(self):
        c = Cluster.from_matrices([3.0], [[1.0]])
        assert amf_levels(c)[0] == pytest.approx(3.0)

    def test_all_jobs_zero_cap(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]], [[0.0], [0.0]])
        assert np.allclose(amf_levels(c), 0.0)

    def test_tiny_capacities(self):
        c = Cluster.from_matrices([1e-6, 1e-6], [[1.0, 1.0], [1.0, 0.0]])
        lv = amf_levels(c)
        assert lv.sum() == pytest.approx(2e-6, rel=1e-6)

    def test_huge_capacities(self):
        c = Cluster.from_matrices([1e9], [[1.0], [1.0]])
        assert np.allclose(amf_levels(c), 5e8)

    def test_extreme_weights(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]], weights=[1e-3, 1e3])
        lv = amf_levels(c)
        assert lv.sum() == pytest.approx(1.0)
        assert lv[1] / lv[0] == pytest.approx(1e6, rel=1e-6)

    def test_single_site_with_floors_matches_constrained_waterfill(self):
        c = Cluster.from_matrices([10.0], [[1.0], [1.0], [1.0]])
        floors = np.array([5.0, 0.0, 0.0])
        lv = amf_levels(c, floors=floors)
        assert np.allclose(lv, [5.0, 2.5, 2.5])

    def test_floors_equal_capacity(self):
        c = Cluster.from_matrices([2.0], [[1.0], [1.0]])
        lv = amf_levels(c, floors=np.array([1.0, 1.0]))
        assert np.allclose(lv, [1.0, 1.0])


class TestStressExactness:
    """Larger randomized instances, validated by the exact max-min decider
    (the LP oracle would be too slow here)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_medium_instances_are_maxmin(self, seed):
        rng = np.random.default_rng(1000 + seed)
        c = random_cluster(rng, n_jobs=25, n_sites=6)
        a = solve_amf(c)
        assert properties.is_max_min_fair(a)
        assert properties.is_pareto_efficient(a)

    def test_disconnected_components_solve_independently(self):
        # two independent sub-systems glued into one cluster
        c = Cluster.from_matrices(
            [6.0, 1.0],
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]],
            [[1.0, np.inf], [np.inf, np.inf], [np.inf, np.inf], [np.inf, np.inf]],
        )
        lv = amf_levels(c)
        left = water_fill(6.0, np.array([1.0, 6.0]))
        assert np.allclose(lv[:2], left)
        assert np.allclose(lv[2:], 0.5)

    def test_dense_support_matches_single_pool(self):
        """Full support with no caps behaves like one pooled resource."""
        rng = np.random.default_rng(2)
        caps = rng.uniform(1.0, 3.0, 4)
        c = Cluster.from_matrices(caps, np.ones((6, 4)))
        lv = amf_levels(c)
        assert np.allclose(lv, caps.sum() / 6.0)
