"""Unit tests for the Allocation invariant holder."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.model.cluster import Cluster


def cluster() -> Cluster:
    return Cluster.from_matrices(
        capacities=[2.0, 3.0],
        workloads=[[1.0, 1.0], [0.0, 2.0]],
        demand_caps=[[np.inf, np.inf], [np.inf, 1.5]],
    )


class TestInvariants:
    def test_valid_allocation(self):
        a = Allocation(cluster(), [[1.0, 1.0], [0.0, 1.0]])
        assert np.allclose(a.aggregates, [2.0, 1.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            Allocation(cluster(), [[1.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Allocation(cluster(), [[-0.5, 0.0], [0.0, 0.0]])

    def test_rejects_off_support(self):
        with pytest.raises(ValueError, match="support"):
            Allocation(cluster(), [[0.0, 0.0], [0.5, 0.0]])

    def test_rejects_demand_cap_violation(self):
        with pytest.raises(ValueError, match="demand cap"):
            Allocation(cluster(), [[0.0, 0.0], [0.0, 1.9]])

    def test_rejects_site_overflow(self):
        # each entry within its own demand cap, but the column sum exceeds c_B = 3
        with pytest.raises(ValueError, match="over-allocated"):
            Allocation(cluster(), [[0.0, 2.5], [0.0, 1.0]])

    def test_tolerates_float_noise(self):
        a = Allocation(cluster(), [[2.0 + 1e-12, 0.0], [0.0, 0.0]])
        assert a.aggregates[0] <= 2.0 + 1e-9

    def test_matrix_frozen(self):
        a = Allocation(cluster(), [[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            a.matrix[0, 0] = 5.0

    def test_input_not_aliased(self):
        m = np.array([[1.0, 0.0], [0.0, 0.0]])
        a = Allocation(cluster(), m)
        m[0, 0] = 99.0
        assert a.matrix[0, 0] == 1.0


class TestDerived:
    def test_site_usage_and_utilization(self):
        a = Allocation(cluster(), [[1.0, 1.0], [0.0, 1.0]])
        assert np.allclose(a.site_usage, [1.0, 2.0])
        assert a.utilization == pytest.approx(3.0 / 5.0)

    def test_aggregate_of_by_name(self):
        a = Allocation(cluster(), [[1.0, 1.0], [0.0, 1.0]])
        assert a.aggregate_of("j0") == pytest.approx(2.0)

    def test_completion_times(self):
        a = Allocation(cluster(), [[1.0, 0.5], [0.0, 1.0]])
        # job 0: max(1/1, 1/0.5) = 2 ; job 1: 2/1 = 2
        assert np.allclose(a.completion_times(), [2.0, 2.0])

    def test_completion_time_starved_edge_is_inf(self):
        a = Allocation(cluster(), [[1.0, 0.0], [0.0, 1.0]])
        t = a.completion_times()
        assert np.isinf(t[0])

    def test_normalized_aggregates_use_weights(self):
        c = Cluster.from_matrices([4.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        a = Allocation(c, [[1.0], [2.0]])
        assert np.allclose(a.normalized_aggregates(), [1.0, 1.0])

    def test_with_matrix_keeps_policy(self):
        a = Allocation(cluster(), [[1.0, 0.0], [0.0, 0.0]], policy="amf")
        b = a.with_matrix([[0.5, 0.0], [0.0, 0.0]])
        assert b.policy == "amf"
        assert b.aggregates[0] == pytest.approx(0.5)

    def test_pretty_renders(self):
        text = Allocation(cluster(), [[1.0, 0.0], [0.0, 0.0]], policy="demo").pretty()
        assert "policy=demo" in text
        assert "j0" in text
