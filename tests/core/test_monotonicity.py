"""Tests for the monotonicity-axiom probes."""

import numpy as np

from repro.core import properties
from repro.core.allocation import Allocation
from repro.core.amf import solve_amf
from repro.core.enhanced import solve_amf_enhanced
from repro.core.persite import solve_psmf
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


def rotating_dictator(cluster: Cluster) -> Allocation:
    """Deliberately non-monotonic policy: site ``k`` goes wholesale to the
    ``(k + 1) mod n``-th job (sorted by name).  Removing any job shifts the
    rotation, so a previously-rich job can lose a fat site."""
    names = sorted(j.name for j in cluster.jobs)
    matrix = np.zeros((cluster.n_jobs, cluster.n_sites))
    for k in range(cluster.n_sites):
        winner_name = names[(k + 1) % len(names)]
        i = cluster.job_index(winner_name)
        if cluster.support[i, k]:
            matrix[i, k] = min(cluster.capacities[k], cluster.demand_caps[i, k])
    return Allocation(cluster, matrix, policy="rotating-dictator")


class TestPopulationMonotonicity:
    def test_amf_clean_on_battery(self):
        for seed in range(8):
            c = random_cluster(np.random.default_rng(seed), n_jobs=5, n_sites=3)
            assert properties.population_monotonicity_probe(c, solve_amf) == []

    def test_psmf_clean_on_battery(self):
        for seed in range(8):
            c = random_cluster(np.random.default_rng(seed), n_jobs=5, n_sites=3)
            assert properties.population_monotonicity_probe(c, solve_psmf) == []

    def test_enhanced_amf_CAN_violate(self):
        """Documented behaviour: AMF-E is *not* population monotone.

        A departure raises the remaining jobs' equal-partition entitlements
        (each site now splits ``1/(n-1)`` ways), and the higher floors of
        *other* jobs can squeeze a previously-rich job below its old level.
        The probe finds such cases on random demand-capped instances — an
        inherent price of the sharing-incentive floors.
        """
        found = 0
        for seed in range(4):
            c = random_cluster(np.random.default_rng(seed), n_jobs=4, n_sites=3, cap_prob=0.8)
            found += len(properties.population_monotonicity_probe(c, solve_amf_enhanced))
        assert found > 0

    def test_single_job_trivially_clean(self):
        c = Cluster.from_matrices([1.0], [[1.0]])
        assert properties.population_monotonicity_probe(c, solve_amf) == []

    def test_probe_has_teeth(self):
        """The rotating-dictator policy produces breaches the probe catches."""
        c = Cluster.from_matrices(
            [3.0, 1.0, 1.0],
            [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0]],
            job_names=["a", "b", "c"],
        )
        breaches = properties.population_monotonicity_probe(c, rotating_dictator)
        assert breaches, "the rotating dictator should violate population monotonicity"
        assert any(b.trigger == "a" and b.victim == "b" for b in breaches)
        assert all(b.kind == "population" and b.after < b.before for b in breaches)


class TestResourceMonotonicity:
    def test_amf_clean_on_battery(self):
        for seed in range(8):
            c = random_cluster(np.random.default_rng(seed), n_jobs=5, n_sites=3)
            assert properties.resource_monotonicity_probe(c, solve_amf) == []

    def test_psmf_clean_on_battery(self):
        for seed in range(8):
            c = random_cluster(np.random.default_rng(seed), n_jobs=5, n_sites=3)
            assert properties.resource_monotonicity_probe(c, solve_psmf) == []

    def test_growth_factor_applied(self):
        """Growing a bottleneck site must help someone under AMF."""
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]])
        base = solve_amf(c).aggregates.sum()
        grown = solve_amf(Cluster([s.scaled(2.0) for s in c.sites], c.jobs)).aggregates.sum()
        assert grown > base
        assert properties.resource_monotonicity_probe(c, solve_amf) == []
