"""Unit tests for the PSMF baseline."""

import numpy as np
import pytest

from repro.core.persite import solve_psmf
from repro.core.waterfilling import water_fill
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


class TestPsmf:
    def test_single_site_equals_waterfill(self):
        c = Cluster.from_matrices([6.0], [[1.0], [1.0], [1.0]], [[1.0], [np.inf], [np.inf]])
        a = solve_psmf(c)
        expected = water_fill(6.0, np.array([1.0, 6.0, 6.0]))
        assert np.allclose(a.matrix[:, 0], expected)

    def test_sites_are_independent(self):
        c = Cluster.from_matrices(
            capacities=[1.0, 4.0],
            workloads=[[1.0, 1.0], [1.0, 0.0]],
        )
        a = solve_psmf(c)
        # site 0 split 0.5/0.5; site 1 fully to job 0
        assert np.allclose(a.matrix, [[0.5, 4.0], [0.5, 0.0]])

    def test_job_absent_from_site_gets_nothing(self):
        c = Cluster.from_matrices([2.0, 5.0], [[1.0, 0.0], [1.0, 1.0]])
        a = solve_psmf(c)
        assert a.matrix[0, 1] == 0.0
        assert a.matrix[1, 1] == pytest.approx(5.0)

    def test_weighted_per_site(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        a = solve_psmf(c)
        assert np.allclose(a.matrix[:, 0], [1.0, 2.0])

    def test_empty_site_ok(self):
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0]])
        a = solve_psmf(c)
        assert a.matrix[0, 1] == 0.0

    def test_psmf_skewed_imbalance(self):
        """The motivating imbalance: a job stuck at a hot site stays poor under PSMF."""
        c = Cluster.from_matrices(
            capacities=[1.0, 1.0],
            workloads=[[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]],
        )
        a = solve_psmf(c)
        # three jobs share site 0 -> 1/3 each; the lone job owns site 1
        assert np.allclose(a.aggregates, [1 / 3, 1 / 3, 1 / 3, 1.0])

    def test_never_violates_invariants_randomized(self, rng):
        for _ in range(20):
            c = random_cluster(rng)
            a = solve_psmf(c)  # Allocation constructor enforces all invariants
            assert a.policy == "psmf"

    def test_per_site_maxmin_property_randomized(self, rng):
        """At every site, unsaturated jobs share a common weighted level."""
        for _ in range(15):
            c = random_cluster(rng)
            a = solve_psmf(c)
            for j in range(c.n_sites):
                present = np.flatnonzero(c.support[:, j])
                if present.size == 0:
                    continue
                alloc = a.matrix[present, j]
                caps = c.demand_caps[present, j]
                w = c.weights[present]
                unsat = alloc < caps - 1e-9
                if unsat.any():
                    lv = (alloc / w)[unsat]
                    assert lv.max() - lv.min() <= 1e-6 * max(1.0, lv.max())
