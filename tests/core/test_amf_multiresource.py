"""Hypothesis: the R=1 multi-resource path is *bit-identical* to scalar AMF.

The v1 resource API promises that spelling a single-resource cluster as
vectors (``Site("s", {"cpu": c})``, ``Job(..., resources={"cpu": 1.0})``)
changes nothing: :func:`repro.core.amf.solve_amf` routes it through
:func:`repro.multiresource.engine.scalar_reduction` onto the very same
flow/GGT machinery, so levels, allocation matrices and diagnostics
counters must match the scalar solve exactly — not approximately.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amf import AmfDiagnostics, amf_levels, solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site

RES = "cpu"  # any non-"slots" name forces the multi-resource path


@st.composite
def instances(draw):
    """A small scalar instance plus its vector twin, float-for-float."""
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(0.5, 8.0, allow_nan=False)) for _ in range(m)]
    support = [
        [draw(st.booleans()) for _ in range(m)] for _ in range(n)
    ]
    for i in range(n):
        if not any(support[i]):
            support[i][draw(st.integers(0, m - 1))] = True
    demand = [
        [draw(st.one_of(st.none(), st.floats(0.1, 2.0, allow_nan=False))) for _ in range(m)]
        for _ in range(n)
    ]
    weights = [draw(st.floats(0.5, 3.0, allow_nan=False)) for _ in range(n)]
    floors = draw(st.booleans())

    def build(vector: bool) -> Cluster:
        if vector:
            sites = [Site(f"s{j}", {RES: caps[j]}) for j in range(m)]
        else:
            sites = [Site(f"s{j}", caps[j]) for j in range(m)]
        jobs = []
        for i in range(n):
            workload = {f"s{j}": 1.0 for j in range(m) if support[i][j]}
            dem = {
                f"s{j}": demand[i][j]
                for j in range(m)
                if support[i][j] and demand[i][j] is not None
            }
            jobs.append(
                Job(
                    f"j{i}",
                    workload,
                    demand=dem,
                    weight=weights[i],
                    resources={RES: 1.0} if vector else {},
                )
            )
        return Cluster(sites, jobs)

    scalar, vector = build(False), build(True)
    if floors:
        # feasible by construction: a fraction of the unsharded solve
        f = 0.5 * solve_amf(scalar).matrix.sum(axis=1)
    else:
        f = None
    return scalar, vector, f


@settings(max_examples=40, deadline=None)
@given(instances())
def test_levels_bit_identical(inst):
    scalar, vector, floors = inst
    assert vector.is_multiresource and not scalar.is_multiresource
    d_s, d_v = AmfDiagnostics(), AmfDiagnostics()
    ls = amf_levels(scalar, floors, d_s)
    lv = amf_levels(vector, floors, d_v)
    assert np.array_equal(ls, lv)
    assert d_s == d_v


@settings(max_examples=40, deadline=None)
@given(instances())
def test_allocation_bit_identical(inst):
    scalar, vector, floors = inst
    d_s, d_v = AmfDiagnostics(), AmfDiagnostics()
    a = solve_amf(scalar, floors, d_s)
    b = solve_amf(vector, floors, d_v)
    assert np.array_equal(a.matrix, b.matrix)
    assert a.policy == b.policy
    assert d_s == d_v
    assert d_v.amrf_lps == 0  # routed, never solved as an LP


@settings(max_examples=20, deadline=None)
@given(instances())
def test_ggt_oracle_bit_identical(inst):
    scalar, vector, floors = inst
    d_s, d_v = AmfDiagnostics(), AmfDiagnostics()
    a = solve_amf(scalar, floors, d_s, oracle="ggt")
    b = solve_amf(vector, floors, d_v, oracle="ggt")
    assert np.array_equal(a.matrix, b.matrix)
    assert d_s == d_v
    assert d_s.ggt_sweeps == d_v.ggt_sweeps


@settings(max_examples=20, deadline=None)
@given(instances())
def test_sharded_bit_identical(inst):
    scalar, vector, floors = inst
    a = solve_amf(scalar, floors, shards=True)
    b = solve_amf(vector, floors, shards=True)
    assert np.array_equal(a.matrix, b.matrix)


def test_weighted_levels_identical_nontrivial():
    """Deterministic spot check: weights actually differentiate levels."""
    scalar = Cluster(
        [Site("a", 6.0)],
        [Job("x", {"a": 10.0}, weight=2.0), Job("y", {"a": 10.0}, weight=1.0)],
    )
    vector = Cluster(
        [Site("a", {RES: 6.0})],
        [
            Job("x", {"a": 10.0}, weight=2.0, resources={RES: 1.0}),
            Job("y", {"a": 10.0}, weight=1.0, resources={RES: 1.0}),
        ],
    )
    ls, lv = amf_levels(scalar), amf_levels(vector)
    assert np.array_equal(ls, lv)
    assert ls[0] > ls[1]  # the weight did something
