"""Tests for the fairness-property decision procedures themselves."""

import numpy as np
import pytest

from repro.core import properties
from repro.core.allocation import Allocation
from repro.core.amf import solve_amf
from repro.core.enhanced import solve_amf_enhanced
from repro.core.persite import solve_psmf
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


def simple() -> Cluster:
    return Cluster.from_matrices([2.0], [[1.0], [1.0]])


class TestParetoHeadroom:
    def test_full_allocation_has_no_headroom(self):
        c = simple()
        a = Allocation(c, [[1.0], [1.0]])
        assert properties.pareto_headroom(a) == pytest.approx(0.0, abs=1e-9)
        assert properties.is_pareto_efficient(a)

    def test_wasteful_allocation_detected(self):
        c = simple()
        a = Allocation(c, [[0.5], [0.5]])
        assert properties.pareto_headroom(a) == pytest.approx(1.0, abs=1e-6)
        assert not properties.is_pareto_efficient(a)

    def test_headroom_respects_demand_caps(self):
        c = Cluster.from_matrices([2.0], [[1.0]], [[0.5]])
        a = Allocation(c, [[0.5]])
        # job is demand-saturated: leftover capacity is not headroom
        assert properties.is_pareto_efficient(a)


class TestMaxMin:
    def test_equal_split_is_maxmin(self):
        a = Allocation(simple(), [[1.0], [1.0]])
        assert properties.is_max_min_fair(a)

    def test_unequal_split_is_not(self):
        a = Allocation(simple(), [[1.5], [0.5]])
        viol = properties.max_min_violations(a)
        assert [v[0] for v in viol] == ["j1"]
        # with the richer j0 released entirely, j1 could rise from 0.5 to 2.0
        assert viol[0][1] == pytest.approx(1.5, abs=1e-6)

    def test_saturated_job_below_level_is_fine(self):
        c = Cluster.from_matrices([2.0], [[1.0], [1.0]], [[0.2], [np.inf]])
        a = Allocation(c, [[0.2], [1.8]])
        assert properties.is_max_min_fair(a)

    def test_weighted_maxmin(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        assert properties.is_max_min_fair(Allocation(c, [[1.0], [2.0]]))
        assert not properties.is_max_min_fair(Allocation(c, [[1.5], [1.5]]))

    def test_psmf_is_not_aggregate_maxmin_on_skew(self):
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0], [1.0, 1.0]])
        psmf = solve_psmf(c)  # aggregates [0.5, 1.5]
        assert not properties.is_max_min_fair(psmf)


class TestEnvy:
    def test_amf_is_envy_free(self, rng):
        for _ in range(10):
            c = random_cluster(rng)
            assert properties.is_envy_free(solve_amf(c))

    def test_blatant_envy_detected(self):
        c = Cluster.from_matrices([2.0], [[1.0], [1.0]])
        a = Allocation(c, [[2.0], [0.0]])
        viol = properties.envy_violations(a)
        assert ("j1", "j0", pytest.approx(2.0)) in [(v[0], v[1], v[2]) for v in viol]

    def test_envy_respects_support(self):
        # j1 cannot use site A, so it does not envy j0's site-A bundle
        c = Cluster.from_matrices([2.0, 1.0], [[1.0, 0.0], [0.0, 1.0]])
        a = Allocation(c, [[2.0, 0.0], [0.0, 1.0]])
        assert properties.is_envy_free(a)

    def test_envy_respects_demand_caps(self):
        # j1 is capped at 0.3, so j0's huge bundle is worth only 0.3 to it
        c = Cluster.from_matrices([2.0], [[1.0], [1.0]], [[np.inf], [0.3]])
        a = Allocation(c, [[1.7], [0.3]])
        assert properties.is_envy_free(a)

    def test_envy_matrix_diagonal_zero(self):
        a = Allocation(simple(), [[1.0], [1.0]])
        env = properties.envy_matrix(a)
        assert env[0, 0] == 0.0 and env[1, 1] == 0.0


class TestSharingIncentive:
    def test_equal_partition_satisfies(self):
        c = simple()
        a = Allocation(c, [[1.0], [1.0]])
        assert properties.satisfies_sharing_incentive(a)

    def test_violation_reported_with_magnitude(self, two_site_cluster):
        amf = solve_amf(two_site_cluster)
        viol = properties.sharing_incentive_violations(amf)
        assert len(viol) == 1
        name, short = viol[0]
        assert name == "c"
        assert short == pytest.approx(1 / 3 + 0.2 - 0.4, abs=1e-6)


class TestStrategyProofness:
    def test_amf_probe_finds_nothing(self, rng):
        for seed in range(3):
            c = random_cluster(np.random.default_rng(seed), n_jobs=4, n_sites=3)
            wins = properties.strategy_proofness_probe(c, solve_amf, rng, attempts=6)
            assert wins == []

    def test_enhanced_probe_finds_nothing(self, rng):
        c = random_cluster(np.random.default_rng(7), n_jobs=4, n_sites=3, cap_prob=0.8)
        wins = properties.strategy_proofness_probe(c, solve_amf_enhanced, rng, attempts=6)
        assert wins == []

    def test_manipulable_policy_is_caught(self, rng):
        """A deliberately gameable policy (proportional to reported work) is exposed."""

        def proportional_to_work(cluster: Cluster) -> Allocation:
            W = cluster.workloads
            shares = W.sum(axis=1)
            shares = shares / shares.sum()
            matrix = np.zeros_like(W)
            for j in range(cluster.n_sites):
                present = np.flatnonzero(cluster.support[:, j])
                if present.size == 0:
                    continue
                local = shares[present] / shares[present].sum()
                matrix[present, j] = np.minimum(
                    local * cluster.capacities[j], cluster.demand_caps[present, j]
                )
            return Allocation(cluster, matrix, policy="gameable")

        c = Cluster.from_matrices(
            [4.0, 4.0],
            [[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]],
        )
        wins = properties.strategy_proofness_probe(
            c, proportional_to_work, np.random.default_rng(1), attempts=30
        )
        assert wins, "inflating reported workload should pay off under the gameable policy"
        assert any(w.kind in ("skew-workload", "inflate-caps", "fake-site") for w in wins)


class TestCheckAll:
    def test_report_for_amf(self, two_site_cluster):
        rep = properties.check_all(solve_amf(two_site_cluster))
        assert rep.pareto and rep.max_min and rep.envy_free
        assert not rep.sharing_incentive
        assert rep.si_shortfall > 0

    def test_report_for_enhanced(self, two_site_cluster):
        rep = properties.check_all(solve_amf_enhanced(two_site_cluster), expect_max_min=False)
        assert rep.pareto and rep.sharing_incentive
