"""Tests for the completion-time add-on."""

import numpy as np
import pytest

from repro.core.amf import amf_levels
from repro.core.completion import (
    minimal_stretch,
    optimize_completion_times,
    proportional_split,
)
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


def uncontended() -> Cluster:
    return Cluster.from_matrices([10.0, 10.0], [[6.0, 2.0], [2.0, 6.0]])


class TestMinimalStretch:
    def test_uncontended_stretch_is_one(self):
        c = uncontended()
        lv = amf_levels(c)
        sigma, matrix = minimal_stretch(c, lv)
        assert sigma == pytest.approx(1.0)
        # proportional split achieved: a_ij = A_i * w_ij / W_i
        W = c.workloads
        expected = lv[:, None] * W / W.sum(axis=1, keepdims=True)
        assert np.allclose(matrix, expected, atol=1e-5)

    def test_contention_forces_stretch(self):
        # both jobs want all their work at the tiny site
        c = Cluster.from_matrices([1.0, 10.0], [[9.0, 1.0], [9.0, 1.0]])
        lv = amf_levels(c)
        sigma, _ = minimal_stretch(c, lv)
        assert sigma > 1.5

    def test_zero_levels_ok(self):
        c = Cluster.from_matrices([1.0], [[1.0]], [[0.0]])
        sigma, matrix = minimal_stretch(c, amf_levels(c))
        assert matrix.shape == (1, 1)

    def test_stretch_matrix_preserves_aggregates(self, rng):
        for _ in range(10):
            c = random_cluster(rng, cap_prob=0.0)
            lv = amf_levels(c)
            _, matrix = minimal_stretch(c, lv)
            assert np.allclose(matrix.sum(axis=1), lv, atol=1e-5)


class TestOptimizeCompletionTimes:
    @pytest.mark.parametrize("mode", ["stretch", "stretch1", "makespan", "lexicographic"])
    def test_modes_preserve_aggregates(self, mode, rng):
        for _ in range(5):
            c = random_cluster(rng, cap_prob=0.0)
            lv = amf_levels(c)
            a = optimize_completion_times(c, lv, mode=mode)
            assert np.allclose(a.aggregates, lv, atol=1e-5)

    @pytest.mark.parametrize("mode", ["stretch", "stretch1", "makespan", "lexicographic"])
    def test_modes_preserve_aggregates_with_demand_caps(self, mode, rng):
        for _ in range(4):
            c = random_cluster(rng, cap_prob=0.6)
            lv = amf_levels(c)
            a = optimize_completion_times(c, lv, mode=mode)
            assert np.allclose(a.aggregates, lv, atol=2e-4)

    def test_unknown_mode_rejected(self):
        c = uncontended()
        with pytest.raises(ValueError, match="unknown completion-time mode"):
            optimize_completion_times(c, amf_levels(c), mode="nope")

    def test_policy_labels(self):
        c = uncontended()
        lv = amf_levels(c)
        assert optimize_completion_times(c, lv, mode="stretch").policy == "amf+ct:stretch"
        assert optimize_completion_times(c, lv, mode="makespan").policy == "amf+ct:makespan"

    def test_lexicographic_not_worse_than_makespan(self, rng):
        for _ in range(8):
            c = random_cluster(rng, cap_prob=0.0)
            lv = amf_levels(c)
            lex = optimize_completion_times(c, lv, mode="lexicographic").completion_times()
            mk = optimize_completion_times(c, lv, mode="makespan").completion_times()
            finite = np.isfinite(lex) & np.isfinite(mk)
            if finite.any():
                assert np.max(lex[finite]) <= np.max(mk[finite]) * 1.001 + 1e-9

    def test_stretch_bounds_every_job(self, rng):
        """Every job's realized stretch is within the engine's first-stage optimum."""
        for _ in range(8):
            c = random_cluster(rng, cap_prob=0.0)
            lv = amf_levels(c)
            sigma, _ = minimal_stretch(c, lv)
            a = optimize_completion_times(c, lv, mode="stretch")
            ideal = c.workloads.sum(axis=1) / np.maximum(lv, 1e-12)
            t = a.completion_times()
            ok = lv > 1e-9
            assert (t[ok] <= sigma * ideal[ok] * 1.001 + 1e-9).all()

    def test_beats_arbitrary_split_on_makespan(self):
        """The add-on's makespan is no worse than the raw max-flow split's."""
        from repro.core.amf import solve_amf

        c = Cluster.from_matrices(
            [1.0, 1.0, 1.0],
            [[3.0, 1.0, 1.0], [1.0, 3.0, 1.0], [1.0, 1.0, 3.0]],
        )
        lv = amf_levels(c)
        raw = solve_amf(c).completion_times()
        opt = optimize_completion_times(c, lv, mode="makespan").completion_times()
        assert np.max(opt) <= np.max(raw) * 1.001 + 1e-9

    def test_wrong_levels_shape_rejected(self):
        with pytest.raises(ValueError, match="one entry per job"):
            optimize_completion_times(uncontended(), np.array([1.0]))


class TestProportionalSplit:
    def test_respects_invariants(self, rng):
        for _ in range(10):
            c = random_cluster(rng)
            lv = amf_levels(c)
            proportional_split(c, lv)  # Allocation constructor validates

    def test_undersupplies_at_hot_sites(self):
        # two jobs both proportionally target the tiny site beyond capacity
        c = Cluster.from_matrices([1.0, 10.0], [[5.0, 5.0], [5.0, 5.0]])
        lv = amf_levels(c)
        a = proportional_split(c, lv)
        assert a.aggregates.sum() < lv.sum() - 0.5

    def test_exact_when_uncontended(self):
        c = uncontended()
        lv = amf_levels(c)
        a = proportional_split(c, lv)
        assert np.allclose(a.aggregates, lv, atol=1e-8)

    def test_policy_label(self):
        c = uncontended()
        assert proportional_split(c, amf_levels(c)).policy == "amf+proportional"
