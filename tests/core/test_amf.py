"""Tests for the AMF solver — hand-checked cases, oracles and invariants.

Layers of evidence:

1. hand-computable instances (including the paper-style motivating ones),
2. agreement with the LP reference solver (independent code path),
3. agreement with the bisection variant,
4. exact flow-based max-min / Pareto verification,
5. hypothesis-driven random instances for the structural invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import properties
from repro.core.amf import (
    AmfDiagnostics,
    PiecewiseFill,
    SiteCutFill,
    amf_levels,
    amf_levels_bisect,
    solve_amf,
)
from repro.core.reference import reference_feasible, reference_levels
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


class TestPiecewiseFill:
    def test_value_simple(self):
        pf = PiecewiseFill(np.zeros(2), np.array([2.0, 4.0]), np.ones(2))
        assert pf.value(0.0) == pytest.approx(0.0)
        assert pf.value(1.0) == pytest.approx(2.0)
        assert pf.value(3.0) == pytest.approx(5.0)  # 2 + 3
        assert pf.value(10.0) == pytest.approx(6.0)

    def test_value_with_floors(self):
        pf = PiecewiseFill(np.array([1.0, 0.0]), np.array([3.0, 3.0]), np.ones(2))
        assert pf.value(0.0) == pytest.approx(1.0)  # floor only
        assert pf.value(0.5) == pytest.approx(1.5)  # floor + rising second
        assert pf.value(2.0) == pytest.approx(4.0)

    def test_value_weighted(self):
        pf = PiecewiseFill(np.zeros(1), np.array([4.0]), np.array([2.0]))
        assert pf.value(1.0) == pytest.approx(2.0)
        assert pf.value(3.0) == pytest.approx(4.0)  # capped at 4

    def test_max_level_interior(self):
        pf = PiecewiseFill(np.zeros(2), np.array([2.0, 4.0]), np.ones(2))
        assert pf.max_level(3.0) == pytest.approx(1.5)
        assert pf.max_level(5.0) == pytest.approx(3.0)

    def test_max_level_unbounded(self):
        pf = PiecewiseFill(np.zeros(1), np.array([2.0]), np.ones(1))
        assert np.isinf(pf.max_level(5.0))

    def test_max_level_at_total(self):
        pf = PiecewiseFill(np.zeros(2), np.array([1.0, 1.0]), np.ones(2))
        assert np.isinf(pf.max_level(2.0))

    def test_frozen_constant_jobs(self):
        # f == c models a frozen job: pure constant
        pf = PiecewiseFill(np.array([1.5, 0.0]), np.array([1.5, 5.0]), np.ones(2))
        assert pf.value(0.0) == pytest.approx(1.5)
        assert pf.max_level(3.5) == pytest.approx(2.0)

    def test_roundtrip_value_maxlevel(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(1, 7))
            caps = rng.uniform(0.5, 5.0, n)
            floors = caps * rng.uniform(0.0, 0.9, n)
            w = rng.uniform(0.2, 3.0, n)
            pf = PiecewiseFill(floors, caps, w)
            for frac in (0.1, 0.5, 0.9):
                rhs = floors.sum() + frac * (caps.sum() - floors.sum())
                lam = pf.max_level(rhs)
                if np.isfinite(lam):
                    assert pf.value(lam) == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestSiteCutFill:
    """H(lam) = sum_i max(0, clip(lam*w_i, f_i, c_i) - x_i) — the site-cut LHS."""

    @staticmethod
    def direct(lam, f, c, w, x):
        t = np.clip(lam * w, np.minimum(f, c), c)
        return float(np.maximum(0.0, t - x).sum())

    def test_zero_cross_degenerates_to_piecewise_fill(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(1, 7))
            caps = rng.uniform(0.5, 5.0, n)
            floors = caps * rng.uniform(0.0, 0.9, n)
            w = rng.uniform(0.2, 3.0, n)
            pf = PiecewiseFill(floors, caps, w)
            sf = SiteCutFill(floors, caps, w, np.zeros(n))
            for lam in rng.uniform(0.0, 8.0, 10):
                assert sf.value(float(lam)) == pytest.approx(pf.value(float(lam)), abs=1e-9)
            for rhs in rng.uniform(0.0, caps.sum() * 1.1, 5):
                a, b = sf.max_level(float(rhs)), pf.max_level(float(rhs))
                assert a == b or a == pytest.approx(b, rel=1e-9)

    def test_value_matches_brute_force(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            n = int(rng.integers(1, 8))
            w = rng.uniform(0.2, 3.0, n)
            c = rng.uniform(0.5, 5.0, n)
            f = np.where(rng.random(n) < 0.5, 0.0, rng.uniform(0.0, 1.0, n) * c)
            x = np.where(rng.random(n) < 0.3, 0.0, rng.uniform(0.0, 6.0, n))
            sf = SiteCutFill(f, c, w, x)
            for lam in np.append(rng.uniform(0.0, 8.0, 15), 0.0):
                assert sf.value(float(lam)) == pytest.approx(
                    self.direct(lam, f, c, w, x), abs=1e-9
                )

    def test_max_level_is_the_crossing(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            n = int(rng.integers(1, 8))
            w = rng.uniform(0.2, 3.0, n)
            c = rng.uniform(0.5, 5.0, n)
            f = np.zeros(n)
            x = np.where(rng.random(n) < 0.3, 0.0, rng.uniform(0.0, 6.0, n))
            sf = SiteCutFill(f, c, w, x)
            for rhs in rng.uniform(0.0, sf.total_cap, 8):
                rhs = float(rhs)
                lam = sf.max_level(rhs)
                if np.isinf(lam):
                    assert sf.total_cap <= rhs + 1e-6
                else:
                    assert self.direct(lam, f, c, w, x) <= rhs + 1e-6
                    assert self.direct(lam + 1e-5, f, c, w, x) >= rhs - 1e-6

    def test_plateau_resolves_to_next_breakpoint(self):
        # one job saturated exactly at its crossing capacity: H sits at rhs
        # until a second job starts exceeding its own crossing.
        sf = SiteCutFill(
            np.array([1.0, 0.0]),  # job 0 frozen at 1.0
            np.array([1.0, 4.0]),
            np.ones(2),
            np.array([0.0, 2.0]),
        )
        # H = 1.0 for lam <= 2, then 1.0 + (lam - 2)
        assert sf.value(1.5) == pytest.approx(1.0)
        assert sf.max_level(1.0) == pytest.approx(2.0)

    def test_fully_crossing_job_contributes_nothing(self):
        # x >= c: the job can always route around the cut
        sf = SiteCutFill(np.zeros(1), np.array([2.0]), np.ones(1), np.array([5.0]))
        assert sf.value(10.0) == 0.0
        assert np.isinf(sf.max_level(0.0))


class TestHandCases:
    def test_single_site_matches_waterfill(self):
        c = Cluster.from_matrices([6.0], [[1.0], [1.0], [1.0]], [[1.0], [np.inf], [np.inf]])
        assert np.allclose(amf_levels(c), [1.0, 2.5, 2.5])

    def test_disjoint_sites(self):
        c = Cluster.from_matrices([2.0, 3.0], [[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(amf_levels(c), [2.0, 3.0])

    def test_aggregate_compensation(self):
        """AMF's signature move: the multi-site job yields the hot site and
        recoups at the idle one, leaving everyone at the same aggregate."""
        c = Cluster.from_matrices(
            capacities=[1.0, 1.0],
            workloads=[[1.0, 0.0], [1.0, 1.0]],
        )
        lv = amf_levels(c)
        assert np.allclose(lv, [1.0, 1.0])
        a = solve_amf(c)
        # the hot site goes (almost) fully to the pinned job
        assert a.matrix[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_motivating_si_violation(self, two_site_cluster):
        lv = amf_levels(two_site_cluster)
        assert np.allclose(lv, [0.4, 0.4, 0.4], atol=1e-9)

    def test_three_jobs_two_sites_progressive(self):
        # jobs 0,1 pinned at site A (cap 1); job 2 spans A and B (cap 1)
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        lv = amf_levels(c)
        assert np.allclose(lv, [0.5, 0.5, 1.0])

    def test_empty_cluster(self):
        c = Cluster.from_matrices([1.0], np.zeros((0, 1)))
        assert amf_levels(c).size == 0

    def test_zero_demand_job(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]], [[0.0], [np.inf]])
        lv = amf_levels(c)
        assert np.allclose(lv, [0.0, 1.0])

    def test_uncontended_instance_saturates_demands(self):
        c = Cluster.from_matrices([10.0], [[1.0], [1.0]], [[2.0], [3.0]])
        assert np.allclose(amf_levels(c), [2.0, 3.0])


class TestWeighted:
    def test_weighted_single_site(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        assert np.allclose(amf_levels(c), [1.0, 2.0])

    def test_weighted_with_cap(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], [[np.inf], [1.0]], weights=[1.0, 2.0])
        assert np.allclose(amf_levels(c), [2.0, 1.0])

    def test_weighted_cross_site(self):
        c = Cluster.from_matrices(
            [2.0, 2.0],
            [[1.0, 1.0], [1.0, 1.0]],
            weights=[3.0, 1.0],
        )
        lv = amf_levels(c)
        assert np.allclose(lv, [3.0, 1.0])

    def test_weighted_matches_reference(self, rng):
        for _ in range(10):
            c = random_cluster(rng, weight_spread=2.0)
            assert np.abs(amf_levels(c) - reference_levels(c)).max() < 1e-5


class TestFloors:
    def test_floors_respected(self, two_site_cluster):
        floors = np.array([0.0, 0.0, 0.5])
        lv = amf_levels(two_site_cluster, floors=floors)
        assert lv[2] >= 0.5 - 1e-9

    def test_floors_above_demand_clipped(self):
        c = Cluster.from_matrices([10.0], [[1.0]], [[1.0]])
        lv = amf_levels(c, floors=np.array([5.0]))
        assert lv[0] == pytest.approx(1.0)

    def test_infeasible_floors_rejected(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]])
        with pytest.raises(ValueError, match="infeasible"):
            amf_levels(c, floors=np.array([0.8, 0.8]))

    def test_negative_floors_rejected(self):
        c = Cluster.from_matrices([1.0], [[1.0]])
        with pytest.raises(ValueError, match="non-negative"):
            amf_levels(c, floors=np.array([-0.5]))

    def test_zero_floors_match_plain(self, rng):
        for _ in range(5):
            c = random_cluster(rng)
            assert np.allclose(amf_levels(c), amf_levels(c, floors=np.zeros(c.n_jobs)), atol=1e-9)

    def test_fill_above_floors_is_maxmin(self):
        # one privileged job floored high; others equalize below
        c = Cluster.from_matrices([3.0], [[1.0], [1.0], [1.0]])
        lv = amf_levels(c, floors=np.array([2.0, 0.0, 0.0]))
        assert np.allclose(lv, [2.0, 0.5, 0.5])


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_lp_reference(self, seed):
        rng = np.random.default_rng(seed)
        c = random_cluster(rng)
        lv = amf_levels(c)
        ref = reference_levels(c)
        assert np.abs(lv - ref).max() < 1e-5

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bisection(self, seed):
        rng = np.random.default_rng(100 + seed)
        c = random_cluster(rng)
        assert np.abs(amf_levels(c) - amf_levels_bisect(c)).max() < 1e-5

    @pytest.mark.parametrize("seed", range(8))
    def test_levels_feasible_by_lp(self, seed):
        rng = np.random.default_rng(200 + seed)
        c = random_cluster(rng)
        lv = amf_levels(c)
        assert reference_feasible(c, lv - 1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_allocation_is_maxmin_and_pareto(self, seed):
        rng = np.random.default_rng(300 + seed)
        c = random_cluster(rng)
        a = solve_amf(c)
        assert properties.is_max_min_fair(a)
        assert properties.is_pareto_efficient(a)


class TestDiagnostics:
    def test_diagnostics_populated(self, two_site_cluster):
        d = AmfDiagnostics()
        amf_levels(two_site_cluster, diagnostics=d)
        assert d.rounds >= 1
        assert d.feasibility_solves >= d.rounds

    def test_probe_counters_folded_when_fill_raises(self, two_site_cluster, monkeypatch):
        """The finally arm must fold oracle stats even on a mid-fill fault;
        without it an aborted solve silently leaks every probes_* counter."""
        from repro.flownet.parametric import ParametricFeasibility

        real = ParametricFeasibility.probe
        calls = {"n": 0}

        def exploding(self, targets, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("mid-fill fault")
            return real(self, targets, **kwargs)

        monkeypatch.setattr(ParametricFeasibility, "probe", exploding)
        d = AmfDiagnostics()
        with pytest.raises(RuntimeError, match="mid-fill fault"):
            amf_levels(two_site_cluster, diagnostics=d)
        folded = d.probes_early_accept + d.probes_cut_reject + d.probes_warm + d.probes_cold
        assert folded >= 1

    def test_solve_amf_policy_label(self, two_site_cluster):
        assert solve_amf(two_site_cluster).policy == "amf"
        floors = np.zeros(3)
        assert solve_amf(two_site_cluster, floors=floors).policy == "amf+floors"


@st.composite
def small_instances(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(1, 4))
    caps = [draw(st.floats(0.2, 4.0)) for _ in range(m)]
    rows = []
    demands = []
    for _ in range(n):
        support = [draw(st.booleans()) for _ in range(m)]
        if not any(support):
            support[draw(st.integers(0, m - 1))] = True
        rows.append([draw(st.floats(0.1, 3.0)) if s else 0.0 for s in support])
        demands.append(
            [draw(st.one_of(st.floats(0.05, 2.0), st.just(float("inf")))) if s else float("inf") for s in support]
        )
    return caps, rows, demands


class TestHypothesisInvariants:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, inst):
        caps, rows, demands = inst
        c = Cluster.from_matrices(caps, rows, demands)
        lv = amf_levels(c)
        a = solve_amf(c)
        # aggregates realize the levels
        assert np.allclose(a.aggregates, lv, atol=1e-6)
        # never exceed aggregate demand
        assert (lv <= c.aggregate_demand + 1e-8).all()
        # total never exceeds capacity
        assert lv.sum() <= c.total_capacity + 1e-6
        # levels are non-negative
        assert (lv >= -1e-12).all()

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_exact_maxmin_and_pareto(self, inst):
        """The flow-based decision procedures confirm max-min fairness exactly."""
        caps, rows, demands = inst
        c = Cluster.from_matrices(caps, rows, demands)
        a = solve_amf(c)
        assert properties.is_max_min_fair(a)
        assert properties.is_pareto_efficient(a)
