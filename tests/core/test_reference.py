"""Tests for the LP-based reference oracle (it must be trustworthy itself)."""

import numpy as np
import pytest

from repro.core.reference import reference_feasible, reference_levels
from repro.model.cluster import Cluster


class TestReferenceFeasible:
    def test_trivial(self):
        c = Cluster.from_matrices([1.0], [[1.0]])
        assert reference_feasible(c, np.array([0.5]))
        assert not reference_feasible(c, np.array([1.5]))

    def test_respects_support(self):
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0]])
        assert not reference_feasible(c, np.array([1.5]))

    def test_respects_demand_caps(self):
        c = Cluster.from_matrices([1.0], [[1.0]], [[0.3]])
        assert not reference_feasible(c, np.array([0.4]))


class TestReferenceLevels:
    def test_single_site_waterfill(self):
        c = Cluster.from_matrices([6.0], [[1.0], [1.0], [1.0]], [[1.0], [np.inf], [np.inf]])
        assert np.allclose(reference_levels(c), [1.0, 2.5, 2.5], atol=1e-6)

    def test_cross_site_compensation(self):
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0], [1.0, 1.0]])
        assert np.allclose(reference_levels(c), [1.0, 1.0], atol=1e-6)

    def test_motivating_instance(self, two_site_cluster):
        assert np.allclose(reference_levels(two_site_cluster), [0.4, 0.4, 0.4], atol=1e-6)

    def test_floors(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0], [1.0]])
        lv = reference_levels(c, floors=np.array([2.0, 0.0, 0.0]))
        assert np.allclose(lv, [2.0, 0.5, 0.5], atol=1e-6)

    def test_infeasible_floors_rejected(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]])
        with pytest.raises(ValueError, match="infeasible"):
            reference_levels(c, floors=np.array([0.8, 0.8]))

    def test_empty(self):
        c = Cluster.from_matrices([1.0], np.zeros((0, 1)))
        assert reference_levels(c).size == 0

    def test_weighted(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        assert np.allclose(reference_levels(c), [1.0, 2.0], atol=1e-5)
