"""Tests for the reference bounds (locality-oblivious / isolation)."""

import numpy as np
import pytest

from repro.core.amf import amf_levels, solve_amf
from repro.core.bounds import isolation_levels, locality_oblivious_levels, price_of_locality
from repro.core.enhanced import sharing_incentive_floors
from repro.model.cluster import Cluster

from tests.conftest import random_cluster


class TestLocalityOblivious:
    def test_pooled_waterfill(self):
        # full support so each job's aggregate demand cap is the whole pool
        c = Cluster.from_matrices([2.0, 4.0], [[1.0, 1.0], [1.0, 1.0]])
        assert np.allclose(locality_oblivious_levels(c), [3.0, 3.0])

    def test_effective_caps_respected(self):
        # pinned jobs keep their (site-clipped) aggregate demand caps, so
        # the pooled relaxation still cannot give job 0 more than c_0 = 2
        c = Cluster.from_matrices([2.0, 4.0], [[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(locality_oblivious_levels(c), [2.0, 4.0])

    def test_caps_still_bind(self):
        c = Cluster.from_matrices([10.0], [[1.0], [1.0]], [[1.0], [np.inf]])
        assert np.allclose(locality_oblivious_levels(c), [1.0, 9.0])

    def test_min_level_upper_bounds_amf(self, rng):
        for _ in range(15):
            c = random_cluster(rng)
            amf_min = float((amf_levels(c) / c.weights).min())
            obl_min = float((locality_oblivious_levels(c) / c.weights).min())
            assert amf_min <= obl_min + 1e-9

    def test_matches_amf_on_fully_connected_uncapped(self):
        c = Cluster.from_matrices([2.0, 3.0], np.ones((4, 2)))
        assert np.allclose(locality_oblivious_levels(c), amf_levels(c), atol=1e-8)


class TestIsolation:
    def test_alias_of_floors(self, two_site_cluster):
        assert np.allclose(isolation_levels(two_site_cluster), sharing_incentive_floors(two_site_cluster))


class TestPriceOfLocality:
    def test_free_when_unconstrained(self):
        c = Cluster.from_matrices([4.0], [[1.0], [1.0]])
        alloc = solve_amf(c)
        assert price_of_locality(c, alloc.aggregates) == pytest.approx(1.0)

    def test_positive_under_skew(self):
        # one job locked in a crowded site: its level is far below the pool ideal
        c = Cluster.from_matrices([1.0, 10.0], [[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        from repro.core.persite import solve_psmf

        psmf = solve_psmf(c)
        assert price_of_locality(c, psmf.aggregates) > 2.0

    def test_starved_job_gives_inf(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]])
        assert np.isinf(price_of_locality(c, np.array([0.0, 1.0])))

    def test_never_below_one(self, rng):
        for _ in range(10):
            c = random_cluster(rng)
            alloc = solve_amf(c)
            assert price_of_locality(c, alloc.aggregates) >= 1.0
