"""Tests for the solver fallback chain and the allocation-error taxonomy."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.policies import (
    AllocationError,
    CapacityViolationError,
    DemandViolationError,
    NegativeAllocationError,
    NonFiniteAllocationError,
    ResilientPolicy,
    SolverError,
    SupportViolationError,
    get_policy,
    proportional_fallback,
    validate_allocation,
)
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


@pytest.fixture
def cluster():
    sites = [Site("A", 2.0), Site("B", 1.0)]
    jobs = [
        Job("x", {"A": 3.0, "B": 1.0}),
        Job("y", {"A": 1.0, "B": 2.0}, demand={"A": 0.5, "B": 2.0}),
    ]
    return Cluster(sites, jobs)


def raising_policy(cluster):
    raise RuntimeError("solver exploded")


def nan_policy(cluster):
    return SimpleNamespace(matrix=np.full((cluster.n_jobs, cluster.n_sites), np.nan), policy="nan")


class TestValidateAllocation:
    def test_accepts_real_allocation_unchanged(self, cluster):
        alloc = get_policy("amf")(cluster)
        assert validate_allocation(cluster, alloc) is alloc

    def test_not_an_allocation(self, cluster):
        with pytest.raises(SolverError):
            validate_allocation(cluster, object())

    def test_wrong_shape(self, cluster):
        with pytest.raises(SolverError):
            validate_allocation(cluster, SimpleNamespace(matrix=np.zeros((1, 1))))

    def test_non_finite(self, cluster):
        with pytest.raises(NonFiniteAllocationError):
            validate_allocation(cluster, nan_policy(cluster))

    def test_negative_entries(self, cluster):
        m = np.zeros((2, 2))
        m[0, 0] = -0.5
        with pytest.raises(NegativeAllocationError):
            validate_allocation(cluster, SimpleNamespace(matrix=m))

    def test_support_violation(self):
        sites = [Site("A", 2.0), Site("B", 1.0)]
        jobs = [Job("x", {"A": 1.0}), Job("y", {"A": 1.0, "B": 1.0})]
        c = Cluster(sites, jobs)
        m = np.zeros((2, 2))
        m[0, 1] = 0.5  # x has no work at B
        with pytest.raises(SupportViolationError):
            validate_allocation(c, SimpleNamespace(matrix=m))

    def test_demand_violation(self, cluster):
        m = np.zeros((2, 2))
        m[1, 0] = 1.0  # y's demand cap at A is 0.5
        with pytest.raises(DemandViolationError):
            validate_allocation(cluster, SimpleNamespace(matrix=m))

    def test_capacity_violation(self, cluster):
        m = np.array([[1.5, 0.9], [0.0, 0.9]])  # B column sums to 1.8 > 1.0
        with pytest.raises(CapacityViolationError):
            validate_allocation(cluster, SimpleNamespace(matrix=m))

    def test_rewraps_foreign_object(self, cluster):
        m = np.array([[1.0, 0.5], [0.5, 0.5]])
        out = validate_allocation(cluster, SimpleNamespace(matrix=m, policy="foreign"))
        assert isinstance(out, Allocation)
        assert out.policy == "foreign"

    def test_taxonomy_is_value_error(self):
        for err in (
            SolverError,
            NonFiniteAllocationError,
            NegativeAllocationError,
            SupportViolationError,
            DemandViolationError,
            CapacityViolationError,
        ):
            assert issubclass(err, AllocationError)
            assert issubclass(err, ValueError)


class TestProportionalFallback:
    def test_always_valid(self, cluster):
        alloc = proportional_fallback(cluster)
        assert validate_allocation(cluster, alloc) is alloc
        assert alloc.policy == "proportional-fallback"

    def test_respects_demand_caps(self, cluster):
        alloc = proportional_fallback(cluster)
        assert alloc.matrix[1, 0] <= 0.5 + 1e-9  # y capped at A

    def test_weight_proportional_split(self):
        sites = [Site("A", 3.0)]
        jobs = [
            Job("x", {"A": 10.0}, weight=2.0),
            Job("y", {"A": 10.0}, weight=1.0),
        ]
        alloc = proportional_fallback(Cluster(sites, jobs))
        assert alloc.matrix[0, 0] == pytest.approx(2.0)
        assert alloc.matrix[1, 0] == pytest.approx(1.0)


class TestResilientPolicy:
    def test_primary_serves_when_healthy(self, cluster):
        policy = ResilientPolicy("amf")
        alloc = policy(cluster)
        assert alloc.matrix.shape == (2, 2)
        assert policy.stats.solves == 1
        assert policy.stats.fallback_activations == 0
        assert policy.stats.served_by == {"amf": 1}

    def test_raising_primary_rescued_by_psmf(self, cluster):
        policy = ResilientPolicy(raising_policy, ("psmf",))
        alloc = policy(cluster)
        assert validate_allocation(cluster, alloc) is not None
        assert policy.stats.fallback_activations == 1
        assert policy.stats.served_by == {"psmf": 1}
        assert any("solver exploded" in e for e in policy.stats.errors)

    def test_invalid_result_rescued(self, cluster):
        policy = ResilientPolicy(nan_policy, ("psmf",))
        policy(cluster)
        assert policy.stats.fallback_activations == 1
        assert any("NonFiniteAllocationError" in e for e in policy.stats.errors)

    def test_all_fallbacks_fail_uses_proportional(self, cluster):
        policy = ResilientPolicy(raising_policy, (raising_policy,))
        alloc = policy(cluster)
        assert alloc.policy == "proportional-fallback"
        assert policy.stats.served_by == {"proportional-fallback": 1}
        assert policy.stats.fallback_activations == 1

    def test_name_reflects_primary(self):
        assert ResilientPolicy("amf").__name__ == "resilient:amf"
        assert ResilientPolicy("psmf", ()).__name__ == "resilient:psmf"

    def test_registered_in_registry(self, cluster):
        policy = get_policy("amf-resilient")
        alloc = policy(cluster)
        assert alloc.matrix.shape == (2, 2)

    def test_error_log_is_bounded(self, cluster):
        policy = ResilientPolicy(raising_policy, ("psmf",))
        policy.stats.max_errors = 5
        for _ in range(20):
            policy(cluster)
        assert len(policy.stats.errors) == 5
        assert policy.stats.fallback_activations == 20
