"""Tests for enhanced AMF (sharing-incentive floors)."""

import numpy as np
import pytest

from repro.core import properties
from repro.core.amf import amf_levels
from repro.core.enhanced import amf_enhanced_levels, sharing_incentive_floors, solve_amf_enhanced
from repro.core.amf import solve_amf

from tests.conftest import random_cluster


class TestFloors:
    def test_floors_are_entitlements(self, two_site_cluster):
        f = sharing_incentive_floors(two_site_cluster)
        assert np.allclose(f, [1 / 3, 1 / 3, 1 / 3 + 0.2])

    def test_floors_clipped_to_demand(self):
        from repro.model.cluster import Cluster

        c = Cluster.from_matrices([9.0], [[1.0], [1.0], [1.0]], [[1.0], [np.inf], [np.inf]])
        f = sharing_incentive_floors(c)
        assert f[0] == pytest.approx(1.0)  # demand 1 < entitlement 3
        assert f[1] == pytest.approx(3.0)

    def test_floors_always_feasible(self, rng):
        """The equal partition is a feasibility witness for the floors."""
        for _ in range(25):
            c = random_cluster(rng)
            amf_enhanced_levels(c)  # would raise ValueError if floors infeasible


class TestPaperMotivatingViolation:
    def test_paper_motivating_violation(self, two_site_cluster):
        """AMF violates sharing incentive here; AMF-E repairs it (abstract claim)."""
        amf = solve_amf(two_site_cluster)
        violations = properties.sharing_incentive_violations(amf)
        assert violations, "AMF should violate SI on the motivating instance"
        assert violations[0][0] == "c"
        assert violations[0][1] == pytest.approx(1 / 3 + 0.2 - 0.4, abs=1e-6)

        enhanced = solve_amf_enhanced(two_site_cluster)
        assert properties.satisfies_sharing_incentive(enhanced)
        assert np.allclose(enhanced.aggregates, [1 / 3, 1 / 3, 1 / 3 + 0.2], atol=1e-8)


class TestEnhancedProperties:
    def test_always_satisfies_sharing_incentive(self, rng):
        for _ in range(20):
            c = random_cluster(rng, cap_prob=0.8)
            e = solve_amf_enhanced(c)
            assert properties.satisfies_sharing_incentive(e)

    def test_still_pareto_efficient(self, rng):
        for _ in range(10):
            c = random_cluster(rng)
            e = solve_amf_enhanced(c)
            assert properties.is_pareto_efficient(e)

    def test_matches_amf_when_no_violation(self):
        """With identical symmetric jobs, floors never bind: AMF-E == AMF."""
        from repro.model.cluster import Cluster

        c = Cluster.uniform(4, 3, capacity=2.0)
        assert np.allclose(amf_levels(c), amf_enhanced_levels(c), atol=1e-8)

    def test_policy_label(self, two_site_cluster):
        assert solve_amf_enhanced(two_site_cluster).policy == "amf-e"

    def test_enhanced_dominates_floor_for_everyone(self, rng):
        for _ in range(15):
            c = random_cluster(rng, cap_prob=0.8)
            f = sharing_incentive_floors(c)
            lv = amf_enhanced_levels(c)
            assert (lv >= f - 1e-7).all()

    def test_min_level_at_least_min_entitlement(self, rng):
        """The floors lower-bound every job, so the global min does not fall below the min floor."""
        for _ in range(10):
            c = random_cluster(rng, cap_prob=0.8)
            lv = amf_enhanced_levels(c)
            f = sharing_incentive_floors(c)
            assert lv.min() >= f.min() - 1e-7
