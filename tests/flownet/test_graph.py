"""Unit tests for repro.flownet.graph."""

import pytest

from repro.flownet.graph import INF, FlowGraph


class TestNodes:
    def test_node_creation_and_lookup(self):
        g = FlowGraph()
        a = g.node("a")
        assert g.node("a") == a  # idempotent
        assert g.key_of(a) == "a"
        assert g.has_node("a")
        assert not g.has_node("b")

    def test_tuple_keys(self):
        g = FlowGraph()
        nid = g.node(("job", 3))
        assert g.key_of(nid) == ("job", 3)

    def test_n_nodes(self):
        g = FlowGraph()
        g.node("a")
        g.node("b")
        g.node("a")
        assert g.n_nodes == 2


class TestEdges:
    def test_add_edge_creates_twin(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        assert g.residual(e) == 5.0
        assert g.residual(e ^ 1) == 0.0
        assert g.n_edges == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowGraph().add_edge("a", "b", -1.0)

    def test_infinite_capacity(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", INF)
        assert g.residual(e) == INF

    def test_edge_flow_after_manual_push(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        g.cap[e] -= 2.0
        g.cap[e ^ 1] += 2.0
        assert g.edge_flow(e) == 2.0

    def test_edge_flow_zero_initially(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        assert g.edge_flow(e) == 0.0

    def test_out_edges_iterates_both_directions(self):
        g = FlowGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 1.0)
        g.add_edge("d", "a", 1.0)
        edges = list(g.out_edges(g.node("a")))
        # 2 forward + 1 residual twin of d->a
        assert len(edges) == 3

    def test_reset_flow(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        g.cap[e] -= 2.0
        g.cap[e ^ 1] += 2.0
        g.reset_flow()
        assert g.residual(e) == 5.0
        assert g.edge_flow(e) == 0.0

    def test_set_capacity_wipes_flow(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        g.cap[e] -= 2.0
        g.cap[e ^ 1] += 2.0
        g.set_capacity(e, 3.0)
        assert g.residual(e) == 3.0
        assert g.edge_flow(e) == 0.0

    def test_increase_capacity_keeps_flow(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        g.cap[e] -= 5.0
        g.cap[e ^ 1] += 5.0
        g.increase_capacity(e, 2.0)
        assert g.edge_flow(e) == 5.0
        assert g.residual(e) == 2.0
        assert g.capacity_of(e) == 7.0

    def test_increase_capacity_rejects_negative(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 5.0)
        with pytest.raises(ValueError):
            g.increase_capacity(e, -1.0)

    def test_usable_respects_tolerance(self):
        g = FlowGraph()
        e = g.add_edge("a", "b", 1e-12)
        assert not g.usable(e)
