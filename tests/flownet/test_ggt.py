"""GGT sweep acceptance: bit-identical levels, contraction mechanics, reuse.

The acceptance bar for ``oracle="ggt"``: on any instance — floors, weights,
degenerate single-breakpoint profiles, fully-disconnected shards —
``amf_levels(..., oracle="ggt")`` must be *bit-identical* (``==``, not
allclose) to ``oracle="parametric"``; the sweep is a pure accelerator.
Bisection joins the bar at ``tol=1e-6`` (at 1e-9 the final interval is
narrower than warm-state float noise, so bit-identity is not well-posed
there — docs/performance.md, layer 5).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect, solve_amf
from repro.flownet.arrayflow import ArrayFlowGraph
from repro.flownet.bipartite import build_network
from repro.flownet.ggt import GgtFeasibility, GgtSweep, sweep_levels
from repro.model.cluster import Cluster
from repro.workload.generator import WorkloadSpec, breakpoint_ladder, generate_cluster


# ----------------------------------------------------------------------
# Contraction mechanics (ArrayFlowGraph.contract)
# ----------------------------------------------------------------------
def _diamond():
    #   0 -> 1 -> 3, 0 -> 2 -> 3, 1 -> 2
    tails = [0, 1, 0, 2, 1]
    heads = [1, 3, 2, 3, 2]
    caps = [2.0, 1.0, 1.0, 2.0, 1.0]
    return ArrayFlowGraph(4, tails, heads, caps)


def test_contract_drops_interior_pairs_together():
    g = _diamond()
    # merge {0, 1} onto node 0: edge 0->1 (and its twin) become self-loops
    node_map = np.array([0, 0, 2, 3], dtype=np.int32)
    view = g.contract(node_map)
    assert view.to.size == g.to.size - 2  # one forward/twin pair dropped
    assert view.to.size % 2 == 0
    # the e^1 mate invariant survives compaction: the twin of every kept
    # root edge is kept too, adjacent and order-preserving
    assert (view.parent_eids.reshape(-1, 2) // 2 == view.parent_eids.reshape(-1, 2)[:, :1] // 2).all()
    # twins still reverse: head(e) in the view equals the contracted tail
    # of e's root twin
    assert (view.to == node_map[g.to[view.parent_eids]]).all()
    # dropped root edge maps to -1, kept edges to dense ids
    assert view.eid_map[0] == -1 and view.eid_map[1] == -1
    kept = view.eid_map[view.eid_map >= 0]
    assert sorted(kept) == list(range(view.to.size))


def test_contract_preserves_max_flow_value():
    g = _diamond()
    full = g.clone().max_flow(0, 3)
    # contract after a partial solve: merge the source side of the final
    # cut into the source; the remaining flow on the view equals zero
    # (the view starts from the parent's max-flow residual state)
    g.max_flow(0, 3)
    reach = g.reachable_from(0)
    node_map = np.arange(4, dtype=np.int32)
    node_map[reach] = 0
    view = g.contract(node_map)
    assert view.max_flow(0, 3) == 0.0
    assert full == pytest.approx(3.0)


def test_project_flow_writes_only_kept_edges():
    g = _diamond()
    node_map = np.array([0, 0, 2, 3], dtype=np.int32)
    view = g.contract(node_map)
    before_interior = g.cap[0]
    view.cap[:] = 0.5  # arbitrary view-side state
    mask = view.project_flow()
    assert mask.sum() == view.to.size
    assert g.cap[0] == before_interior  # interior pair untouched
    assert (g.cap[view.parent_eids] == 0.5).all()


def test_eid_map_composes_across_nested_views():
    g = _diamond()
    first = g.contract(np.array([0, 0, 2, 3], dtype=np.int32))
    second = first.contract(np.array([0, 0, 2, 2], dtype=np.int32))
    # two levels of renumbering: root ids translate straight to the leaf
    for root_eid in range(g.to.size):
        leaf = second.eid_map[root_eid]
        mid = first.eid_map[root_eid]
        if mid < 0:
            assert leaf == -1
        elif leaf >= 0:
            assert second.parent_eids[leaf] == mid


# ----------------------------------------------------------------------
# Sweep-level correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_sweep_levels_match_fill(seed):
    cluster = generate_cluster(
        WorkloadSpec(n_jobs=20, n_sites=5, theta=1.1, weight_spread=2.0),
        np.random.default_rng(seed),
    )
    np.testing.assert_allclose(
        sweep_levels(cluster), amf_levels(cluster, oracle="parametric"), atol=1e-8, rtol=1e-9
    )


def test_sweep_recovers_every_ladder_breakpoint():
    k = 16
    sweep = GgtSweep(breakpoint_ladder(k))
    schedule = sweep.run()
    # both weight classes of a rung saturate at the same λ (one binding
    # cut), so transitions = rungs = k/2 while distinct levels = k
    assert len(schedule.breakpoints) == k // 2
    assert np.unique(schedule.levels).size == k
    assert list(schedule.breakpoints) == sorted(schedule.breakpoints)
    # nested (GGT): each cumulative frozen-job set contains the previous
    for a, b in zip(schedule.cut_jobs, schedule.cut_jobs[1:]):
        assert a < b
    st = sweep.stats
    assert st.sweeps == 1 and st.breakpoints == k // 2
    assert st.contractions > 0
    # divide-and-conquer: flows stay near 2x the transition count
    assert st.sweep_flows <= 3 * k


def test_sweep_with_floors_freezes_at_lambda_zero():
    cluster = Cluster.from_matrices([4.0, 4.0], [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    floors = np.array([2.0, 0.0, 0.0])
    schedule = GgtSweep(cluster, floors).run()
    levels = amf_levels(cluster, floors=floors, oracle="parametric")
    np.testing.assert_allclose(schedule.levels, levels, atol=1e-8)


def test_sweep_empty_cluster():
    cluster = Cluster.from_matrices([1.0], [[1.0]])
    empty = Cluster(cluster.sites, ())
    schedule = GgtSweep(empty).run()
    assert schedule.breakpoints == () and schedule.levels.size == 0


# ----------------------------------------------------------------------
# GgtFeasibility: verdict bit-identity + reuse accounting
# ----------------------------------------------------------------------
@st.composite
def clusters_and_probes(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(min_value=0.2, max_value=6.0)) for _ in range(n_sites)]
    workloads = []
    for _ in range(n_jobs):
        row = [draw(st.floats(min_value=0.0, max_value=4.0)) for _ in range(n_sites)]
        if max(row) == 0.0:
            row[draw(st.integers(min_value=0, max_value=n_sites - 1))] = 1.0
        workloads.append(row)
    weights = [draw(st.floats(min_value=0.25, max_value=4.0)) for _ in range(n_jobs)]
    cluster = Cluster.from_matrices(caps, workloads, weights=weights)
    demand = cluster.aggregate_demand
    n_probes = draw(st.integers(min_value=1, max_value=7))
    fractions = [
        draw(st.floats(min_value=0.0, max_value=1.2, allow_nan=False)) for _ in range(n_probes)
    ]
    return cluster, [f * demand for f in fractions]


@settings(max_examples=60, deadline=None)
@given(clusters_and_probes())
def test_ggt_probe_verdicts_bit_identical_to_cold(case):
    cluster, probes = case
    oracle = GgtFeasibility(cluster)
    for targets in probes:
        cold = build_network(cluster, np.asarray(targets, dtype=float)).solve()
        warm = oracle.probe(targets)
        assert warm.feasible is cold.feasible


def test_repeat_probe_served_from_cache():
    cluster = Cluster.from_matrices([2.0, 3.0], [[1.0, 1.0], [1.0, 0.0]])
    oracle = GgtFeasibility(cluster)
    hot = cluster.aggregate_demand * 1.1  # infeasible
    first = oracle.probe(hot, need_cut=True)  # need_cut: must reach the flow
    assert first.mode.startswith("flow") and not first.feasible
    avoided = oracle.ggt.flows_avoided
    flows = oracle.stats.warm_solves + oracle.stats.cold_solves
    again = oracle.probe(hot, need_cut=True)
    assert again is first  # byte-identical targets, no flow in between
    assert oracle.ggt.flows_avoided == avoided + 1
    assert oracle.stats.warm_solves + oracle.stats.cold_solves == flows


def test_schedule_levels_probe_answered_without_flow():
    cluster = breakpoint_ladder(8)
    oracle = GgtFeasibility(cluster)
    levels = amf_levels(cluster, oracle="parametric")
    flows_before = None
    out = oracle.probe(levels)  # triggers sweep + one verification flow
    flows_before = oracle.stats.warm_solves + oracle.stats.cold_solves
    assert out.feasible
    out = oracle.probe(levels * 0.999)
    assert out.feasible and out.mode == "early-accept"
    assert oracle.stats.warm_solves + oracle.stats.cold_solves == flows_before


# ----------------------------------------------------------------------
# End-to-end: oracle="ggt" bit-identical to oracle="parametric"
# ----------------------------------------------------------------------
@st.composite
def instances(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=6))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(min_value=0.5, max_value=8.0)) for _ in range(n_sites)]
    workloads = []
    for _ in range(n_jobs):
        row = [draw(st.floats(min_value=0.0, max_value=3.0)) for _ in range(n_sites)]
        if max(row) == 0.0:
            row[draw(st.integers(min_value=0, max_value=n_sites - 1))] = 1.0
        workloads.append(row)
    weights = [draw(st.floats(min_value=0.25, max_value=4.0)) for _ in range(n_jobs)]
    cluster = Cluster.from_matrices(caps, workloads, weights=weights)
    floors = None
    if draw(st.booleans()):
        # feasible-by-construction floors: a fraction of the AMF levels
        frac = draw(st.floats(min_value=0.0, max_value=0.9))
        floors = frac * amf_levels(cluster)
    return cluster, floors


@settings(max_examples=60, deadline=None)
@given(instances())
def test_amf_levels_ggt_bit_identical(case):
    cluster, floors = case
    ggt = amf_levels(cluster, floors=floors, oracle="ggt")
    par = amf_levels(cluster, floors=floors, oracle="parametric")
    assert (ggt == par).all()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_amf_levels_ggt_bit_identical_zipf(seed):
    rng = np.random.default_rng(seed)
    cluster = generate_cluster(
        WorkloadSpec(n_jobs=30, n_sites=6, theta=1.2, weight_spread=3.0), rng
    )
    diag = AmfDiagnostics()
    ggt = amf_levels(cluster, diagnostics=diag, oracle="ggt")
    par = amf_levels(cluster, oracle="parametric")
    assert (ggt == par).all()
    assert diag.ggt_sweeps == 1 and diag.ggt_breakpoints >= 1
    assert diag.ggt_flows_avoided > 0


def test_degenerate_single_breakpoint():
    # every job identical: the whole profile is one breakpoint
    cluster = Cluster.from_matrices([6.0], [[1.0]] * 4)
    ggt = amf_levels(cluster, oracle="ggt")
    par = amf_levels(cluster, oracle="parametric")
    assert (ggt == par).all()
    assert np.unique(par).size == 1


def test_fully_disconnected_shards():
    # one site per job, no sharing: k = n distinct levels, n components
    caps = [1.0, 2.0, 3.0, 4.0]
    workloads = np.eye(4).tolist()
    cluster = Cluster.from_matrices(caps, workloads)
    ggt = amf_levels(cluster, oracle="ggt")
    par = amf_levels(cluster, oracle="parametric")
    assert (ggt == par).all()
    # sharded end-to-end: one sweep per shard, matrices exactly equal
    a = solve_amf(cluster, oracle="ggt", shards=True)
    b = solve_amf(cluster, oracle="parametric", shards=True)
    assert (a.matrix == b.matrix).all()


@pytest.mark.parametrize("k", [4, 16])
def test_bisect_ggt_matches_parametric_on_ladder(k):
    cluster = breakpoint_ladder(k)
    diag = AmfDiagnostics()
    ggt = amf_levels_bisect(cluster, tol=1e-6, diagnostics=diag, oracle="ggt")
    par = amf_levels_bisect(cluster, tol=1e-6, oracle="parametric")
    assert (ggt == par).all()
    # the sweep must actually shortcut probes, not just agree
    assert diag.ggt_flows_avoided > 0
    assert diag.probes_warm + diag.probes_cold < diag.feasibility_solves


def test_solve_amf_ggt_aggregates_match():
    cluster = generate_cluster(
        WorkloadSpec(n_jobs=25, n_sites=5, theta=1.2), np.random.default_rng(7)
    )
    a = solve_amf(cluster, oracle="ggt")
    b = solve_amf(cluster, oracle="parametric")
    # levels are bit-identical (tested above); the realized split is any
    # valid max flow at those levels and may legitimately differ with the
    # oracle's probe history, so the aggregates carry the contract here
    np.testing.assert_allclose(a.aggregates, b.aggregates, atol=1e-9, rtol=1e-12)


def test_unknown_oracle_rejected():
    cluster = Cluster.from_matrices([1.0], [[1.0]])
    with pytest.raises(Exception, match="backend"):
        amf_levels(cluster, oracle="newton")
