"""Unit tests for min-cut extraction."""

import numpy as np
import pytest

from repro.flownet.dinic import Dinic
from repro.flownet.graph import FlowGraph
from repro.flownet.mincut import cut_capacity, min_cut_partition


def build(edges):
    g = FlowGraph()
    g.node("s")
    for u, v, c in edges:
        g.add_edge(u, v, c)
    return g


class TestMinCutPartition:
    def test_simple_bottleneck(self):
        g = build([("s", "a", 5.0), ("a", "t", 2.0)])
        src, snk = min_cut_partition(g, "s", "t")
        assert src == {"s", "a"}
        assert snk == {"t"}

    def test_cut_at_source(self):
        g = build([("s", "a", 1.0), ("a", "t", 5.0)])
        src, snk = min_cut_partition(g, "s", "t")
        assert src == {"s"}
        assert "a" in snk

    def test_partition_covers_all_nodes(self):
        g = build([("s", "a", 1.0), ("a", "b", 2.0), ("b", "t", 3.0), ("s", "b", 1.0)])
        src, snk = min_cut_partition(g, "s", "t")
        assert src | snk == {"s", "a", "b", "t"}
        assert not (src & snk)

    def test_cut_capacity_equals_flow(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = 8
            edges = []
            for _ in range(20):
                u, v = rng.integers(0, n, 2)
                if u != v:
                    edges.append((int(u), int(v), float(rng.uniform(0.5, 4.0))))
            g = FlowGraph()
            g.node(0)
            g.node(n - 1)
            for u, v, c in edges:
                g.add_edge(u, v, c)
            value = Dinic(g).max_flow(0, n - 1).value
            g.reset_flow()
            src, _ = min_cut_partition(g, 0, n - 1)
            assert cut_capacity(g, src) == pytest.approx(value, rel=1e-9, abs=1e-9)
