"""Unit tests for flows with per-edge lower bounds."""

import numpy as np
import pytest

from repro.flownet.graph import INF
from repro.flownet.lower_bounds import BoundedEdge, feasible_flow_with_lower_bounds


class TestBoundedEdge:
    def test_valid(self):
        e = BoundedEdge("a", "b", 1.0, 2.0)
        assert e.lower == 1.0 and e.upper == 2.0

    def test_rejects_negative_lower(self):
        with pytest.raises(ValueError):
            BoundedEdge("a", "b", -1.0, 2.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoundedEdge("a", "b", 3.0, 2.0)

    def test_equal_bounds_allowed(self):
        BoundedEdge("a", "b", 2.0, 2.0)


def flows_valid(edges, flows):
    """Every original edge's flow within its bounds, conservation at internal nodes."""
    for e in edges:
        f = flows[(e.tail, e.head)]
        assert f >= e.lower - 1e-7
        assert f <= e.upper + 1e-7


class TestFeasibleFlow:
    def test_simple_feasible(self):
        edges = [BoundedEdge("s", "a", 1.0, 3.0), BoundedEdge("a", "t", 1.0, 3.0)]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t")
        assert flows is not None
        flows_valid(edges, flows)
        assert flows[("s", "a")] == pytest.approx(flows[("a", "t")], abs=1e-9)

    def test_infeasible_bottleneck(self):
        # s->a must carry >= 2 but a->t can carry at most 1
        edges = [BoundedEdge("s", "a", 2.0, 3.0), BoundedEdge("a", "t", 0.0, 1.0)]
        assert feasible_flow_with_lower_bounds(edges, "s", "t") is None

    def test_exact_pinned_edge(self):
        edges = [BoundedEdge("s", "a", 2.0, 2.0), BoundedEdge("a", "t", 0.0, 5.0)]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t")
        assert flows is not None
        assert flows[("s", "a")] == pytest.approx(2.0)

    def test_flow_value_pinned(self):
        edges = [BoundedEdge("s", "a", 0.0, 5.0), BoundedEdge("a", "t", 0.0, 5.0)]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t", flow_value=3.0)
        assert flows is not None
        assert flows[("s", "a")] == pytest.approx(3.0)

    def test_flow_value_infeasible(self):
        edges = [BoundedEdge("s", "a", 0.0, 5.0), BoundedEdge("a", "t", 0.0, 2.0)]
        assert feasible_flow_with_lower_bounds(edges, "s", "t", flow_value=3.0) is None

    def test_diamond_with_lower_bounds(self):
        edges = [
            BoundedEdge("s", "a", 1.0, 4.0),
            BoundedEdge("s", "b", 1.0, 4.0),
            BoundedEdge("a", "t", 0.0, 2.0),
            BoundedEdge("b", "t", 0.0, 2.0),
        ]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t")
        assert flows is not None
        flows_valid(edges, flows)

    def test_parallel_edges_accumulate(self):
        edges = [
            BoundedEdge("s", "a", 1.0, 1.0),
            BoundedEdge("s", "a", 1.0, 1.0),
            BoundedEdge("a", "t", 0.0, 5.0),
        ]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t")
        assert flows is not None
        assert flows[("s", "a")] == pytest.approx(2.0)

    def test_infinite_upper(self):
        edges = [BoundedEdge("s", "a", 1.0, INF), BoundedEdge("a", "t", 0.0, INF)]
        flows = feasible_flow_with_lower_bounds(edges, "s", "t")
        assert flows is not None
        assert flows[("s", "a")] >= 1.0 - 1e-9

    def test_conservation_random(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            # random bipartite with safe lower bounds (<= a feasible proportional flow)
            n, m = 3, 3
            edges = [BoundedEdge("s", ("l", i), 0.0, 10.0) for i in range(n)]
            for i in range(n):
                for j in range(m):
                    edges.append(BoundedEdge(("l", i), ("r", j), float(rng.uniform(0, 0.2)), 5.0))
            edges += [BoundedEdge(("r", j), "t", 0.0, 10.0) for j in range(m)]
            flows = feasible_flow_with_lower_bounds(edges, "s", "t")
            assert flows is not None
            # conservation at every internal node
            for i in range(n):
                inflow = flows[("s", ("l", i))]
                outflow = sum(flows[(("l", i), ("r", j))] for j in range(m))
                assert inflow == pytest.approx(outflow, abs=1e-6)
            for j in range(m):
                inflow = sum(flows[(("l", i), ("r", j))] for i in range(n))
                outflow = flows[(("r", j), "t")]
                assert inflow == pytest.approx(outflow, abs=1e-6)
