"""Stress/pathology tests for the flow engine."""

import numpy as np
import pytest

from repro.flownet.dinic import Dinic
from repro.flownet.graph import FlowGraph


class TestDeepGraphs:
    def test_long_chain_no_recursion_limit(self):
        """A 5000-hop chain exercises the iterative DFS (recursive Dinic dies here)."""
        g = FlowGraph()
        n = 5000
        for k in range(n):
            g.add_edge(k, k + 1, 2.0)
        value = Dinic(g).max_flow(0, n).value
        assert value == pytest.approx(2.0)

    def test_wide_fanout(self):
        g = FlowGraph()
        width = 2000
        for k in range(width):
            g.add_edge("s", ("mid", k), 1.0)
            g.add_edge(("mid", k), "t", 0.5)
        value = Dinic(g).max_flow("s", "t").value
        assert value == pytest.approx(0.5 * width)

    def test_zero_capacity_edges_ignored(self):
        g = FlowGraph()
        g.add_edge("s", "a", 0.0)
        g.add_edge("a", "t", 5.0)
        g.add_edge("s", "b", 1.0)
        g.add_edge("b", "t", 1.0)
        assert Dinic(g).max_flow("s", "t").value == pytest.approx(1.0)

    def test_parallel_edges_sum(self):
        g = FlowGraph()
        for _ in range(5):
            g.add_edge("s", "t", 0.3)
        assert Dinic(g).max_flow("s", "t").value == pytest.approx(1.5)

    def test_cycle_does_not_trap(self):
        g = FlowGraph()
        g.add_edge("s", "a", 1.0)
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 1.0)  # cycle
        g.add_edge("b", "t", 1.0)
        assert Dinic(g).max_flow("s", "t").value == pytest.approx(1.0)

    def test_tiny_capacities_converge(self):
        """Capacities near the tolerance never cause an infinite phase loop."""
        g = FlowGraph()
        rng = np.random.default_rng(0)
        for k in range(50):
            g.add_edge("s", ("m", k), float(rng.uniform(1e-8, 1e-6)))
            g.add_edge(("m", k), "t", 1.0)
        value = Dinic(g).max_flow("s", "t").value
        assert 0.0 <= value <= 50e-6

    def test_repeated_solves_idempotent(self):
        g = FlowGraph()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 1.5)
        d = Dinic(g)
        first = d.max_flow("s", "t").value
        second = d.max_flow("s", "t").value  # residual is already optimal
        assert first == pytest.approx(1.5)
        assert second == pytest.approx(0.0, abs=1e-9)
