"""Unit tests for the job-site feasibility network."""

import numpy as np
import pytest

from repro.flownet.bipartite import build_network, max_feasible_allocation, targets_feasible
from repro.model.cluster import Cluster


def cluster2x2() -> Cluster:
    return Cluster.from_matrices(
        capacities=[1.0, 2.0],
        workloads=[[1.0, 1.0], [0.0, 1.0]],
        demand_caps=[[np.inf, np.inf], [np.inf, 0.5]],
    )


class TestFeasibility:
    def test_zero_targets_always_feasible(self):
        assert targets_feasible(cluster2x2(), np.zeros(2))

    def test_targets_within_capacity(self):
        assert targets_feasible(cluster2x2(), np.array([1.0, 0.5]))

    def test_capacity_violation_detected(self):
        # job 0 can take at most 1 + 2 = 3
        assert not targets_feasible(cluster2x2(), np.array([3.5, 0.0]))

    def test_demand_cap_violation_detected(self):
        # job 1 only reaches site 1, cap 0.5
        assert not targets_feasible(cluster2x2(), np.array([0.0, 0.6]))

    def test_support_restriction(self):
        # job 1 cannot use site 0 at all
        c = Cluster.from_matrices([5.0, 0.1], [[1.0, 1.0], [0.0, 1.0]])
        assert not targets_feasible(c, np.array([0.0, 0.2]))

    def test_shared_bottleneck(self):
        c = Cluster.from_matrices([1.0], [[1.0], [1.0]])
        assert targets_feasible(c, np.array([0.5, 0.5]))
        assert not targets_feasible(c, np.array([0.6, 0.5]))


class TestOutcome:
    def test_cut_identifies_bottleneck_jobs_and_sites(self):
        # jobs 0,1 share a unit site; target 0.6 each is infeasible
        c = Cluster.from_matrices([1.0, 10.0], [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        net = build_network(c, np.array([0.6, 0.6, 1.0]))
        out = net.solve()
        assert not out.feasible
        assert out.cut_jobs == {0, 1}
        assert out.cut_sites == {0}

    def test_feasible_outcome_flow_matches_demand(self):
        c = cluster2x2()
        net = build_network(c, np.array([1.0, 0.5]))
        out = net.solve()
        assert out.feasible
        assert out.flow_value == pytest.approx(1.5)


class TestAllocationExtraction:
    def test_matrix_respects_everything(self):
        c = cluster2x2()
        mat = max_feasible_allocation(c, np.array([2.0, 0.5]))
        assert mat.shape == (2, 2)
        assert (mat >= -1e-12).all()
        assert mat[1, 0] == 0.0  # outside support
        assert mat[1, 1] <= 0.5 + 1e-9  # demand cap
        assert mat.sum(axis=0)[0] <= 1.0 + 1e-9
        assert mat.sum(axis=0)[1] <= 2.0 + 1e-9

    def test_aggregates_match_feasible_targets(self):
        c = cluster2x2()
        targets = np.array([1.5, 0.5])
        mat = max_feasible_allocation(c, targets)
        assert np.allclose(mat.sum(axis=1), targets, atol=1e-9)


class TestIncrementalTargets:
    def test_raising_targets_keeps_flow(self):
        c = cluster2x2()
        net = build_network(c, np.array([0.5, 0.1]))
        assert net.solve().feasible
        net.set_targets(np.array([1.0, 0.5]))
        out = net.solve()
        assert out.feasible
        assert out.demanded == pytest.approx(1.5)

    def test_lowering_targets_resets(self):
        c = cluster2x2()
        net = build_network(c, np.array([1.0, 0.5]))
        net.solve()
        net.set_targets(np.array([0.2, 0.2]))
        out = net.solve()
        assert out.feasible
        assert out.flow_value == pytest.approx(0.4)

    def test_interleaved_raises_and_drops(self):
        c = cluster2x2()
        net = build_network(c, np.zeros(2))
        for targets in ([0.3, 0.1], [0.9, 0.4], [0.1, 0.0], [1.0, 0.5]):
            net.set_targets(np.array(targets))
            out = net.solve()
            assert out.feasible
            assert out.flow_value == pytest.approx(sum(targets), abs=1e-8)
