"""Property tests: the parametric oracle is verdict-identical to cold solves.

The acceptance bar for the warm engine: on any probe sequence, the
``feasible`` bit returned by :class:`ParametricFeasibility` must be
*bit-identical* to what a cold ``build_network(...).solve()`` (fresh
pointer graph + Dinic from zero flow) returns for the same targets — no
matter in which order the probes arrive, whether folding or cut screening
is on, and which internal answer mode (early-accept, cut-reject, warm or
cold flow) produced the verdict.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect, solve_amf
from repro.flownet.bipartite import build_network
from repro.flownet.parametric import ParametricFeasibility
from repro.model.cluster import Cluster
from repro.workload.generator import WorkloadSpec, generate_cluster


def _cold_outcome(cluster, targets):
    """The reference: fresh network, Dinic from zero flow."""
    return build_network(cluster, np.asarray(targets, dtype=float)).solve()


@st.composite
def clusters_and_probes(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(min_value=0.2, max_value=6.0)) for _ in range(n_sites)]
    workloads = []
    for _ in range(n_jobs):
        row = [draw(st.floats(min_value=0.0, max_value=4.0)) for _ in range(n_sites)]
        if max(row) == 0.0:  # every job needs support somewhere
            row[draw(st.integers(min_value=0, max_value=n_sites - 1))] = 1.0
        workloads.append(row)
    cluster = Cluster.from_matrices(caps, workloads)
    demand = cluster.aggregate_demand
    # Probe fractions both rising and falling, including the exact bounds
    # bisection hits (0 and 1) — the sequence shape that broke fuzzy
    # early-accept once already.
    n_probes = draw(st.integers(min_value=1, max_value=7))
    fractions = [
        draw(st.floats(min_value=0.0, max_value=1.2, allow_nan=False)) for _ in range(n_probes)
    ]
    return cluster, [f * demand for f in fractions]


@settings(max_examples=50, deadline=None)
@given(clusters_and_probes(), st.booleans(), st.booleans())
def test_probe_verdicts_bit_identical_to_cold(case, fold, screen):
    cluster, probes = case
    oracle = ParametricFeasibility(cluster, fold_single_site=fold, screen_cuts=screen)
    for targets in probes:
        cold = _cold_outcome(cluster, targets)
        warm = oracle.probe(targets)
        assert warm.feasible is cold.feasible
        assert warm.demanded == pytest.approx(cold.demanded, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(clusters_and_probes())
def test_need_cut_probes_return_the_cold_min_cut(case):
    """With ``need_cut`` the oracle must surface the same minimal cut."""
    cluster, probes = case
    oracle = ParametricFeasibility(cluster)
    for targets in probes:
        cold = _cold_outcome(cluster, targets)
        warm = oracle.probe(targets, need_cut=True)
        assert warm.feasible is cold.feasible
        assert warm.cut_sites == cold.cut_sites
        assert warm.cut_jobs == cold.cut_jobs
        assert warm.flow_value == pytest.approx(cold.flow_value, abs=1e-8)


@st.composite
def falling_sequences(draw):
    """Sequences that drive the falling-λ rollback arm of ``_install``.

    The opener is over total site capacity — provably infeasible, so the
    graph is left holding a saturating flow — and the follow-ups descend
    (including an exact-zero probe), so installed capacities drop *below*
    carried flow and the oracle must cancel excess locally (``rolled=True``)
    rather than restart.
    """
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(min_value=0.2, max_value=6.0)) for _ in range(n_sites)]
    workloads = []
    for _ in range(n_jobs):
        row = [draw(st.floats(min_value=0.0, max_value=4.0)) for _ in range(n_sites)]
        if max(row) == 0.0:
            row[draw(st.integers(min_value=0, max_value=n_sites - 1))] = 1.0
        workloads.append(row)
    cluster = Cluster.from_matrices(caps, workloads)
    demand = cluster.aggregate_demand
    n_probes = draw(st.integers(min_value=1, max_value=5))
    fractions = sorted(
        (draw(st.floats(min_value=0.0, max_value=1.1)) for _ in range(n_probes)), reverse=True
    )
    opener = demand + float(np.sum(caps))  # demanded > total capacity
    return cluster, [opener] + [f * demand for f in fractions] + [0.0 * demand]


@settings(max_examples=50, deadline=None)
@given(falling_sequences(), st.booleans())
def test_falling_probes_roll_back_and_stay_bit_identical(case, fold):
    """The cancel-and-reuse arm: falling targets cancel just the excess flow,
    and the verdicts (and minimal cuts) still bit-match cold solves.

    No rollback-count assertion here: degenerate draws legitimately skip the
    arm (every job folded, or an early feasible probe lets the trailing zero
    early-accept) — the deterministic test below pins that the arm fires.
    """
    cluster, probes = case
    oracle = ParametricFeasibility(cluster, fold_single_site=fold)
    for targets in probes:
        cold = _cold_outcome(cluster, targets)
        warm = oracle.probe(targets, need_cut=True)
        assert warm.feasible is cold.feasible
        assert warm.cut_sites == cold.cut_sites
        assert warm.cut_jobs == cold.cut_jobs
        assert warm.flow_value == pytest.approx(cold.flow_value, abs=1e-8)
    assert oracle.stats.probes == len(probes)


def test_falling_probe_fires_the_rollback_arm():
    """A two-site job never folds; the saturating opener carries flow 2.0 and
    the undercut probe installs capacity below it, so ``rolled=True`` must
    cancel the excess locally — and the verdicts still bit-match cold."""
    cluster = Cluster.from_matrices([1.0, 1.0], [[1.0, 1.0]])
    oracle = ParametricFeasibility(cluster)
    for targets in ([10.0], [0.5], [0.0]):
        cold = _cold_outcome(cluster, targets)
        warm = oracle.probe(targets, need_cut=True)
        assert warm.feasible is cold.feasible
        assert warm.flow_value == pytest.approx(cold.flow_value, abs=1e-9)
    assert oracle.stats.rollbacks >= 1


@settings(max_examples=30, deadline=None)
@given(clusters_and_probes())
def test_feasible_flow_value_matches_demand(case):
    cluster, probes = case
    oracle = ParametricFeasibility(cluster)
    for targets in probes:
        out = oracle.probe(targets, need_cut=True)
        if out.feasible:
            assert out.flow_value == pytest.approx(float(np.sum(targets)), abs=1e-7)
            alloc = oracle.allocation_matrix(targets)
            assert alloc is not None
            np.testing.assert_allclose(alloc.sum(axis=1), targets, atol=1e-7)
            assert bool((alloc <= cluster.demand_caps + 1e-9).all())
            assert bool((alloc.sum(axis=0) <= cluster.capacities + 1e-7).all())


def test_allocation_matrix_resyncs_after_infeasible_probe():
    """An infeasible probe in between must not corrupt the stored flow."""
    cluster = Cluster.from_matrices([1.0, 1.0], [[1.0, 1.0], [1.0, 0.0]])
    oracle = ParametricFeasibility(cluster)
    good = np.array([1.0, 0.9])
    assert oracle.probe(good).feasible
    assert not oracle.probe(np.array([3.0, 3.0])).feasible  # mutates the flow
    alloc = oracle.allocation_matrix(good)
    assert alloc is not None
    np.testing.assert_allclose(alloc.sum(axis=1), good, atol=1e-9)


def test_allocation_matrix_rejects_infeasible_targets():
    cluster = Cluster.from_matrices([1.0], [[1.0]])
    oracle = ParametricFeasibility(cluster)
    assert oracle.allocation_matrix(np.array([5.0])) is None
    assert oracle.allocation_matrix(np.array([1.0, 2.0])) is None  # wrong shape


def test_all_jobs_single_site_fold_entirely():
    """Degree-1 folding may leave an empty reduced network."""
    cluster = Cluster.from_matrices([2.0, 1.0], [[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    oracle = ParametricFeasibility(cluster)
    assert oracle.stats.folded_jobs == 3
    assert oracle.probe(np.array([1.0, 1.0, 1.0])).feasible
    out = oracle.probe(np.array([2.0, 1.0, 2.0]), need_cut=True)
    assert not out.feasible
    cold = _cold_outcome(cluster, [2.0, 1.0, 2.0])
    assert out.feasible is cold.feasible
    assert out.cut_sites == cold.cut_sites


def test_single_job_single_site():
    cluster = Cluster.from_matrices([1.5], [[1.0]])
    oracle = ParametricFeasibility(cluster)
    assert oracle.probe(np.array([1.5])).feasible
    assert not oracle.probe(np.array([1.6])).feasible
    assert oracle.probe(np.array([0.0])).feasible


def test_observed_cut_screens_without_flow_solve():
    cluster = Cluster.from_matrices([1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]])
    oracle = ParametricFeasibility(cluster)
    oracle.observe_cut({0, 1})  # total capacity 2.0
    out = oracle.probe(np.array([5.0, 5.0]))
    assert not out.feasible
    assert out.mode == "cut-reject"
    assert oracle.stats.cut_rejects == 1
    # the screen is advisory only: the verdict still matches a cold solve
    assert _cold_outcome(cluster, [5.0, 5.0]).feasible is False


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_amf_levels_match_legacy_oracle(seed):
    cluster = generate_cluster(
        WorkloadSpec(n_jobs=25, n_sites=6, theta=1.2), np.random.default_rng(seed)
    )
    d_par, d_leg = AmfDiagnostics(), AmfDiagnostics()
    lv_par = amf_levels(cluster, diagnostics=d_par, oracle="parametric")
    lv_leg = amf_levels(cluster, diagnostics=d_leg, oracle="legacy")
    np.testing.assert_allclose(lv_par, lv_leg, atol=1e-8, rtol=1e-9)
    # identical probe-for-probe behaviour, not just identical answers
    assert d_par.feasibility_solves == d_leg.feasibility_solves
    np.testing.assert_allclose(
        amf_levels_bisect(cluster, oracle="parametric"),
        amf_levels_bisect(cluster, oracle="legacy"),
        atol=1e-7,
        rtol=1e-7,
    )
    np.testing.assert_allclose(
        solve_amf(cluster, oracle="parametric").aggregates,
        solve_amf(cluster, oracle="legacy").aggregates,
        atol=1e-7,
    )


def test_degenerate_instances_stop_at_the_model_boundary():
    """Zero-capacity sites / empty clusters never reach the oracle."""
    with pytest.raises(Exception, match="capacity must be positive"):
        Cluster.from_matrices([0.0, 1.0], [[1.0, 1.0]])
    with pytest.raises(Exception, match="at least one site"):
        Cluster([], [])
    # the in-model degenerates the oracle must survive: zero targets
    cluster = Cluster.from_matrices([1.0], [[1.0]])
    out = ParametricFeasibility(cluster).probe(np.zeros(1), need_cut=True)
    assert out.feasible and out.flow_value == 0.0


def test_probe_stats_track_reuse():
    cluster = Cluster.from_matrices([2.0, 2.0], [[1.0, 1.0], [1.0, 1.0]])
    oracle = ParametricFeasibility(cluster)
    oracle.probe(np.array([1.0, 1.0]))
    oracle.probe(np.array([0.5, 0.5]))  # dominated by the last feasible probe
    assert oracle.stats.early_accepts == 1
    assert oracle.stats.probes == 2
