"""Property tests: ArrayFlowGraph agrees with the pointer-based Dinic.

The array kernel is only allowed to be *faster* — every max-flow value,
every min-cut side, warm or cold, must match what ``FlowGraph`` +
:class:`Dinic` compute on the same edges.  Hypothesis drives random
digraphs and random bipartite job-site instances through both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.flownet.arrayflow as arrayflow_mod
from repro.flownet.arrayflow import ArrayFlowGraph
from repro.flownet.dinic import Dinic
from repro.flownet.graph import FlowGraph


def _reference(n_nodes, tails, heads, caps, s, t):
    """Max-flow value + source-side cut via the pointer engine."""
    g = FlowGraph()
    for u in range(n_nodes):
        g.node(u)
    for u, v, c in zip(tails, heads, caps):
        g.add_edge(u, v, c)
    result = Dinic(g).max_flow(s, t)
    return result.value, frozenset(result.source_side)


def _array_solve(n_nodes, tails, heads, caps, s, t, limit=None):
    ag = ArrayFlowGraph(n_nodes, tails, heads, caps)
    value = ag.max_flow(s, t, limit=limit)
    side = frozenset(np.flatnonzero(ag.reachable_from(s)).tolist())
    return value, side, ag


@st.composite
def digraphs(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=7))
    n_edges = draw(st.integers(min_value=0, max_value=14))
    tails, heads, caps = [], [], []
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        if u == v:
            continue
        c = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        tails.append(u), heads.append(v), caps.append(c)
    return n_nodes, tails, heads, caps


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_value_and_cut_match_dinic(graph):
    n_nodes, tails, heads, caps = graph
    s, t = 0, n_nodes - 1
    ref_value, ref_side = _reference(n_nodes, tails, heads, caps, s, t)
    value, side, _ = _array_solve(n_nodes, tails, heads, caps, s, t)
    assert value == pytest.approx(ref_value, abs=1e-9)
    assert side == ref_side


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_vectorized_path_matches_scalar(graph):
    """Forcing the vectorized BFS must not change any answer."""
    n_nodes, tails, heads, caps = graph
    s, t = 0, n_nodes - 1
    scalar_value, scalar_side, _ = _array_solve(n_nodes, tails, heads, caps, s, t)
    orig = arrayflow_mod._VECTOR_THRESHOLD
    arrayflow_mod._VECTOR_THRESHOLD = 0  # every graph takes the numpy path
    try:
        vec_value, vec_side, _ = _array_solve(n_nodes, tails, heads, caps, s, t)
    finally:
        arrayflow_mod._VECTOR_THRESHOLD = orig
    assert vec_value == pytest.approx(scalar_value, abs=1e-9)
    assert vec_side == scalar_side


@st.composite
def bipartite_instances(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    site_caps = [draw(st.floats(min_value=0.1, max_value=8.0)) for _ in range(n_sites)]
    dcaps = [
        [draw(st.floats(min_value=0.0, max_value=5.0)) for _ in range(n_sites)]
        for _ in range(n_jobs)
    ]
    targets = [draw(st.floats(min_value=0.0, max_value=12.0)) for _ in range(n_jobs)]
    return site_caps, dcaps, targets


def _bipartite_edges(site_caps, dcaps, targets):
    n_jobs, n_sites = len(dcaps), len(site_caps)
    src, snk = 0, n_jobs + n_sites + 1
    tails, heads, caps = [], [], []
    for i in range(n_jobs):
        tails.append(src), heads.append(1 + i), caps.append(targets[i])
    for i in range(n_jobs):
        for j in range(n_sites):
            if dcaps[i][j] > 0.0:
                tails.append(1 + i), heads.append(1 + n_jobs + j), caps.append(dcaps[i][j])
    for j in range(n_sites):
        tails.append(1 + n_jobs + j), heads.append(snk), caps.append(site_caps[j])
    return snk + 1, tails, heads, caps, src, snk


@settings(max_examples=60, deadline=None)
@given(bipartite_instances())
def test_bipartite_value_and_cut_match_dinic(instance):
    """The exact graph shape the parametric oracle builds."""
    site_caps, dcaps, targets = instance
    n_nodes, tails, heads, caps, s, t = _bipartite_edges(site_caps, dcaps, targets)
    ref_value, ref_side = _reference(n_nodes, tails, heads, caps, s, t)
    value, side, _ = _array_solve(n_nodes, tails, heads, caps, s, t)
    assert value == pytest.approx(ref_value, abs=1e-9)
    assert side == ref_side


@settings(max_examples=40, deadline=None)
@given(bipartite_instances(), st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=5))
def test_warm_capacity_increases_match_cold(instance, deltas):
    """A warm increase_capacity sequence ends at the cold-solve optimum."""
    site_caps, dcaps, targets = instance
    n_nodes, tails, heads, caps, s, t = _bipartite_edges(site_caps, dcaps, targets)
    n_jobs = len(dcaps)
    ag = ArrayFlowGraph(n_nodes, tails, heads, caps)
    total = ag.max_flow(s, t)
    final = list(caps)
    for d in deltas:
        for i in range(n_jobs):
            ag.increase_capacity(2 * i, d)
            final[i] += d
        total += ag.max_flow(s, t)
    cold_value, cold_side = _reference(n_nodes, tails, heads, final, s, t)
    assert total == pytest.approx(cold_value, abs=1e-8)
    warm_side = frozenset(np.flatnonzero(ag.reachable_from(s)).tolist())
    assert warm_side == cold_side


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_limit_stop_is_value_consistent(graph):
    """Passing the true upper bound as ``limit`` must not change the value."""
    n_nodes, tails, heads, caps = graph
    s, t = 0, n_nodes - 1
    free_value, _, _ = _array_solve(n_nodes, tails, heads, caps, s, t)
    bound = sum(c for u, c in zip(tails, caps) if u == s)
    limited_value, _, _ = _array_solve(n_nodes, tails, heads, caps, s, t, limit=bound)
    assert limited_value == pytest.approx(free_value, abs=1e-9)


# ----------------------------------------------------------------------
# Degenerate shapes (the cases random generation rarely pins exactly)
# ----------------------------------------------------------------------
def test_empty_graph():
    ag = ArrayFlowGraph(2, [], [], [])
    assert ag.max_flow(0, 1) == 0.0
    assert ag.reachable_from(0).tolist() == [True, False]


def test_single_edge():
    ag = ArrayFlowGraph(2, [0], [1], [3.5])
    assert ag.max_flow(0, 1) == pytest.approx(3.5)
    assert ag.edge_flow(0) == pytest.approx(3.5)


def test_zero_capacity_edge_blocks_flow():
    ag = ArrayFlowGraph(3, [0, 1], [1, 2], [5.0, 0.0])
    assert ag.max_flow(0, 2) == 0.0
    # the zero arc keeps the sink out of the source side
    assert ag.reachable_from(0).tolist() == [True, True, False]


def test_disconnected_sink():
    ag = ArrayFlowGraph(4, [0, 2], [1, 3], [1.0, 1.0])
    assert ag.max_flow(0, 3) == 0.0


def test_set_capacity_discards_flow():
    ag = ArrayFlowGraph(2, [0], [1], [2.0])
    assert ag.max_flow(0, 1) == pytest.approx(2.0)
    ag.set_capacity(0, 1.0)
    assert ag.edge_flow(0) == 0.0
    assert ag.max_flow(0, 1) == pytest.approx(1.0)


def test_reset_flow_restores_capacities():
    ag = ArrayFlowGraph(3, [0, 1], [1, 2], [2.0, 1.0])
    assert ag.max_flow(0, 2) == pytest.approx(1.0)
    ag.reset_flow()
    assert ag.max_flow(0, 2) == pytest.approx(1.0)


def test_flows_vectorized_matches_edge_flow():
    ag = ArrayFlowGraph(3, [0, 0, 1], [1, 2, 2], [2.0, 1.0, 3.0])
    ag.max_flow(0, 2)
    eids = np.array([0, 2, 4])
    np.testing.assert_allclose(ag.flows(eids), [ag.edge_flow(e) for e in eids])


def test_negative_capacity_rejected():
    with pytest.raises(Exception):
        ArrayFlowGraph(2, [0], [1], [-1.0])
    ag = ArrayFlowGraph(2, [0], [1], [1.0])
    with pytest.raises(Exception):
        ag.set_capacity(0, -2.0)
    with pytest.raises(Exception):
        ag.increase_capacity(0, -0.5)
