"""Dinic max-flow: hand-checked cases, a networkx oracle, and hypothesis."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.dinic import Dinic
from repro.flownet.graph import INF, FlowGraph


def solve(edges, s, t):
    g = FlowGraph()
    g.node(s)
    for u, v, c in edges:
        g.add_edge(u, v, c)
    return Dinic(g).max_flow(s, t), g


class TestHandCases:
    def test_single_edge(self):
        result, _ = solve([("s", "t", 3.0)], "s", "t")
        assert result.value == pytest.approx(3.0)

    def test_series_bottleneck(self):
        result, _ = solve([("s", "a", 3.0), ("a", "t", 1.5)], "s", "t")
        assert result.value == pytest.approx(1.5)

    def test_parallel_paths(self):
        result, _ = solve([("s", "a", 2.0), ("a", "t", 2.0), ("s", "b", 1.0), ("b", "t", 1.0)], "s", "t")
        assert result.value == pytest.approx(3.0)

    def test_classic_cross_graph(self):
        # The textbook example where augmenting must use the cross edge.
        edges = [
            ("s", "a", 10.0),
            ("s", "b", 10.0),
            ("a", "b", 1.0),
            ("a", "t", 10.0),
            ("b", "t", 10.0),
        ]
        result, _ = solve(edges, "s", "t")
        assert result.value == pytest.approx(20.0)

    def test_disconnected(self):
        g = FlowGraph()
        g.node("s")
        g.node("t")
        result = Dinic(g).max_flow("s", "t")
        assert result.value == 0.0

    def test_no_path(self):
        result, _ = solve([("a", "t", 5.0)], "s", "t")
        assert result.value == 0.0

    def test_infinite_capacity_path(self):
        result, _ = solve([("s", "a", INF), ("a", "t", 4.0)], "s", "t")
        assert result.value == pytest.approx(4.0)

    def test_flow_conservation(self):
        edges = [
            ("s", "a", 5.0),
            ("s", "b", 5.0),
            ("a", "c", 3.0),
            ("b", "c", 3.0),
            ("c", "t", 4.0),
            ("a", "t", 1.0),
        ]
        result, g = solve(edges, "s", "t")
        assert result.value == pytest.approx(5.0)
        # conservation at internal nodes: inflow == outflow
        for node in ("a", "b", "c"):
            nid = g.node(node)
            inflow = sum(
                g.edge_flow(e)
                for e in range(0, len(g.to), 2)
                if g.to[e] == nid
            )
            outflow = sum(
                g.edge_flow(e)
                for e in range(0, len(g.to), 2)
                if g.to[e ^ 1] == nid
            )
            assert inflow == pytest.approx(outflow, abs=1e-9)

    def test_source_side_is_min_cut(self):
        result, g = solve([("s", "a", 2.0), ("a", "t", 1.0)], "s", "t")
        keys = {g.key_of(i) for i in result.source_side}
        assert keys == {"s", "a"}

    def test_fractional_capacities(self):
        result, _ = solve([("s", "a", 0.3), ("a", "t", 0.7)], "s", "t")
        assert result.value == pytest.approx(0.3)

    def test_incremental_resolve(self):
        g = FlowGraph()
        e = g.add_edge("s", "a", 1.0)
        g.add_edge("a", "t", 10.0)
        d = Dinic(g)
        first = d.max_flow("s", "t")
        assert first.value == pytest.approx(1.0)
        g.increase_capacity(e, 2.0)
        second = d.max_flow("s", "t")
        # incremental solve returns only the *additional* flow
        assert second.value == pytest.approx(2.0)
        assert g.edge_flow(e) == pytest.approx(3.0)


class TestResidualQueries:
    def test_residual_path_exists(self):
        _, g = solve([("s", "a", 2.0), ("a", "t", 1.0)], "s", "t")
        d = Dinic(g)
        assert not d.residual_path_exists("s", "t")
        assert d.residual_path_exists("s", "a")

    def test_residual_path_missing_nodes(self):
        g = FlowGraph()
        assert not Dinic(g).residual_path_exists("s", "t")


def _random_graph_edges(rng: np.random.Generator, n_nodes: int, n_edges: int):
    edges = []
    for _ in range(n_edges):
        u, v = rng.integers(0, n_nodes, 2)
        if u == v:
            continue
        edges.append((int(u), int(v), float(rng.uniform(0.1, 10.0))))
    return edges


class TestNetworkxOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_networkx_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        edges = _random_graph_edges(rng, n, int(rng.integers(n, 4 * n)))
        result, _ = solve(edges, 0, n - 1)
        G = nx.DiGraph()
        G.add_nodes_from(range(n))
        for u, v, c in edges:
            if G.has_edge(u, v):
                G[u][v]["capacity"] += c
            else:
                G.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(G, 0, n - 1)
        assert result.value == pytest.approx(expected, rel=1e-9, abs=1e-9)


@st.composite
def bipartite_instances(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(1, 4))
    # Supplies are either exactly zero or bounded away from the 1e-9
    # comparison tolerance, so tiny denormal-ish draws can't make the
    # oracle comparison a pure tolerance coin-flip.
    supply = [draw(st.one_of(st.just(0.0), st.floats(1e-6, 10.0))) for _ in range(n)]
    caps = [draw(st.floats(0.1, 5.0)) for _ in range(m)]
    mask = [[draw(st.booleans()) for _ in range(m)] for _ in range(n)]
    return supply, caps, mask


class TestHypothesis:
    @given(bipartite_instances())
    @settings(max_examples=60, deadline=None)
    def test_bipartite_flow_bounds(self, inst):
        """Max-flow never exceeds either side's total, matches networkx."""
        supply, caps, mask = inst
        g = FlowGraph()
        g.node("s")
        G = nx.DiGraph()
        for i, sup in enumerate(supply):
            g.add_edge("s", ("l", i), sup)
            G.add_edge("s", ("l", i), capacity=sup)
        for j, cap in enumerate(caps):
            g.add_edge(("r", j), "t", cap)
            G.add_edge(("r", j), "t", capacity=cap)
        for i in range(len(supply)):
            for j in range(len(caps)):
                if mask[i][j]:
                    g.add_edge(("l", i), ("r", j), float("inf"))
                    G.add_edge(("l", i), ("r", j), capacity=float("inf"))
        value = Dinic(g).max_flow("s", "t").value
        assert value <= sum(supply) + 1e-9
        assert value <= sum(caps) + 1e-9
        expected = nx.maximum_flow_value(G, "s", "t") if G.has_node("s") and G.has_node("t") else 0.0
        assert value == pytest.approx(expected, rel=1e-9, abs=1e-9)
