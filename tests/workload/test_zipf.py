"""Tests for the bounded Zipf laws."""

import numpy as np
import pytest

from repro.workload.zipf import permuted_zipf, zipf_probabilities, zipf_sample


class TestProbabilities:
    def test_sums_to_one(self):
        for theta in (0.0, 0.7, 1.5, 3.0):
            assert zipf_probabilities(10, theta).sum() == pytest.approx(1.0)

    def test_theta_zero_is_uniform(self):
        p = zipf_probabilities(5, 0.0)
        assert np.allclose(p, 0.2)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(8, 1.2)
        assert (np.diff(p) < 0).all()

    def test_higher_theta_more_concentrated(self):
        p1 = zipf_probabilities(10, 0.5)
        p2 = zipf_probabilities(10, 2.0)
        assert p2[0] > p1[0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(5, -0.1)

    def test_single_rank(self):
        assert zipf_probabilities(1, 2.0).tolist() == [1.0]


class TestSampling:
    def test_sample_range(self):
        rng = np.random.default_rng(0)
        s = zipf_sample(rng, 6, 1.0, 500)
        assert s.min() >= 0 and s.max() < 6

    def test_sample_skew_matches_law(self):
        rng = np.random.default_rng(0)
        s = zipf_sample(rng, 5, 2.0, 5000)
        counts = np.bincount(s, minlength=5)
        assert counts[0] > counts[4] * 3

    def test_permuted_zipf_same_multiset(self):
        rng = np.random.default_rng(0)
        p = permuted_zipf(rng, 7, 1.3)
        assert np.allclose(sorted(p), sorted(zipf_probabilities(7, 1.3)))
