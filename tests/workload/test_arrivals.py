"""Tests for the Poisson arrival generator."""

import numpy as np
import pytest

from repro.workload.arrivals import ArrivalSpec, generate_arrival_jobs, replace_arrival
from repro.workload.generator import WorkloadSpec
from repro.model.job import Job


class TestArrivalSpec:
    def test_defaults(self):
        ArrivalSpec()

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            ArrivalSpec(load=0.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ArrivalSpec(site_capacity=0.0)


class TestGeneration:
    def test_offered_load_matches(self):
        spec = ArrivalSpec(workload=WorkloadSpec(n_jobs=100, n_sites=5), load=0.6, site_capacity=8.0)
        sites, jobs = generate_arrival_jobs(spec, np.random.default_rng(0))
        total_capacity = sum(s.capacity for s in sites)
        total_work = sum(j.total_work for j in jobs)
        horizon = max(j.arrival for j in jobs)
        realized = total_work / (horizon * total_capacity)
        assert realized == pytest.approx(0.6, rel=0.05)

    def test_arrivals_sorted_and_positive(self):
        spec = ArrivalSpec(workload=WorkloadSpec(n_jobs=50, n_sites=4))
        _, jobs = generate_arrival_jobs(spec, np.random.default_rng(1))
        times = [j.arrival for j in jobs]
        assert times == sorted(times)
        assert min(times) >= 0.0

    def test_sites_match_spec(self):
        spec = ArrivalSpec(workload=WorkloadSpec(n_jobs=10, n_sites=7), site_capacity=3.0)
        sites, _ = generate_arrival_jobs(spec, np.random.default_rng(2))
        assert len(sites) == 7
        assert all(s.capacity == 3.0 for s in sites)


class TestReplaceArrival:
    def test_preserves_everything_else(self):
        j = Job("x", {"A": 1.0}, demand={"A": 0.5}, weight=2.0, arrival=1.0)
        j2 = replace_arrival(j, 9.0)
        assert j2.arrival == 9.0
        assert j2.workload == j.workload
        assert j2.weight == 2.0
        assert j2.demand_at("A") == 0.5
