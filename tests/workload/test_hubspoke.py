"""Tests for the hub-and-spoke instance family and its closed-form analysis."""

import numpy as np
import pytest

from repro.core import properties
from repro.core.policies import get_policy
from repro.workload.hubspoke import HubSpokeSpec, hub_and_spoke_cluster, predicted_violators


class TestSpec:
    def test_defaults(self):
        spec = HubSpokeSpec()
        assert spec.effective_satellite_capacity == pytest.approx(2 * 12 * 0.15)

    def test_explicit_satellite_capacity(self):
        assert HubSpokeSpec(satellite_capacity=5.0).effective_satellite_capacity == 5.0

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            HubSpokeSpec(n_jobs=1)

    def test_rejects_bad_spread(self):
        with pytest.raises(ValueError):
            HubSpokeSpec(cap_spread=1.5)


class TestGeneration:
    def test_structure(self):
        spec = HubSpokeSpec(n_jobs=5)
        c = hub_and_spoke_cluster(spec, np.random.default_rng(0))
        assert c.n_sites == 6  # hub + 5 satellites
        assert c.n_jobs == 5
        for i, job in enumerate(c.jobs):
            assert "hub" in job.workload
            assert f"sat{i}" in job.workload

    def test_satellites_private(self):
        c = hub_and_spoke_cluster(HubSpokeSpec(n_jobs=4), np.random.default_rng(1))
        # each satellite has exactly one job with support there
        for j, site in enumerate(c.sites):
            if site.name == "hub":
                continue
            assert int(c.support[:, j].sum()) == 1

    def test_zero_spread_homogeneous(self):
        spec = HubSpokeSpec(n_jobs=4, cap_spread=0.0)
        c = hub_and_spoke_cluster(spec, np.random.default_rng(2))
        caps = [job.demand_at(f"sat{k}") for k, job in enumerate(c.jobs)]
        assert np.allclose(caps, spec.mean_cap)


class TestClosedFormAnalysis:
    @pytest.mark.parametrize("n_jobs", [3, 8, 15])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_prediction_matches_solver(self, n_jobs, seed):
        """The paper-math prediction of SI violators equals the flow solver's."""
        spec = HubSpokeSpec(n_jobs=n_jobs, cap_spread=1.0)
        c = hub_and_spoke_cluster(spec, np.random.default_rng(seed))
        amf = get_policy("amf")(c)
        actual = sorted(name for name, _ in properties.sharing_incentive_violations(amf))
        assert actual == sorted(predicted_violators(spec, c))

    def test_homogeneous_caps_never_violate(self):
        spec = HubSpokeSpec(n_jobs=6, cap_spread=0.0)
        c = hub_and_spoke_cluster(spec, np.random.default_rng(0))
        amf = get_policy("amf")(c)
        assert properties.satisfies_sharing_incentive(amf)
        assert predicted_violators(spec, c) == []

    def test_heterogeneous_caps_do_violate(self):
        spec = HubSpokeSpec(n_jobs=10, cap_spread=1.0)
        c = hub_and_spoke_cluster(spec, np.random.default_rng(3))
        amf = get_policy("amf")(c)
        assert not properties.satisfies_sharing_incentive(amf)

    def test_enhanced_always_repairs(self):
        for seed in range(5):
            spec = HubSpokeSpec(n_jobs=8, cap_spread=1.0)
            c = hub_and_spoke_cluster(spec, np.random.default_rng(seed))
            e = get_policy("amf-e")(c)
            assert properties.satisfies_sharing_incentive(e)
