"""Tests for the Poisson MTBF/MTTR failure-trace generator."""

import numpy as np
import pytest

from repro.sim.trace import SiteFailure, SiteRecovery
from repro.workload.failures import FailureSpec, generate_failure_trace


NAMES = ["a", "b", "c"]
SPEC = FailureSpec(mtbf=20.0, mttr=5.0, horizon=200.0)


def trace(seed=0, names=NAMES, spec=SPEC):
    return generate_failure_trace(names, spec, np.random.default_rng(seed))


class TestStructure:
    def test_sorted_by_time(self):
        events = trace()
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_alternates_per_site_starting_with_failure(self):
        events = trace()
        for name in NAMES:
            mine = [e for e in events if e.site == name]
            for i, ev in enumerate(mine):
                expected = SiteFailure if i % 2 == 0 else SiteRecovery
                assert isinstance(ev, expected), (name, i)

    def test_every_failure_has_a_recovery(self):
        events = trace()
        for name in NAMES:
            fails = sum(1 for e in events if e.site == name and isinstance(e, SiteFailure))
            recs = sum(1 for e in events if e.site == name and isinstance(e, SiteRecovery))
            assert fails == recs
            assert fails >= 1  # horizon = 10x mtbf: vanishingly unlikely to be empty

    def test_recovery_after_its_failure(self):
        events = trace()
        for name in NAMES:
            mine = [e.time for e in events if e.site == name]
            assert mine == sorted(mine)
            assert all(mine[i] < mine[i + 1] for i in range(len(mine) - 1))

    def test_failures_within_horizon(self):
        events = trace()
        for e in events:
            if isinstance(e, SiteFailure):
                assert e.time < SPEC.horizon  # recoveries may land past it


class TestKnobs:
    def test_seeded_reproducibility(self):
        assert trace(seed=42) == trace(seed=42)
        assert trace(seed=42) != trace(seed=43)

    def test_degraded_fraction_propagates(self):
        spec = FailureSpec(mtbf=20.0, mttr=5.0, horizon=100.0, degraded_fraction=0.25)
        events = generate_failure_trace(NAMES, spec, np.random.default_rng(0))
        fails = [e for e in events if isinstance(e, SiteFailure)]
        assert fails and all(e.degraded_fraction == 0.25 for e in fails)

    def test_max_failures_per_site(self):
        spec = FailureSpec(mtbf=1.0, mttr=0.5, horizon=100.0, max_failures_per_site=2)
        events = generate_failure_trace(NAMES, spec, np.random.default_rng(0))
        for name in NAMES:
            fails = sum(1 for e in events if e.site == name and isinstance(e, SiteFailure))
            assert fails <= 2


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mtbf=0.0),
            dict(mttr=-1.0),
            dict(horizon=0.0),
            dict(degraded_fraction=1.0),
            dict(degraded_fraction=-0.1),
            dict(max_failures_per_site=-1),
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailureSpec(**kwargs)

    def test_empty_site_list_rejected(self):
        with pytest.raises(ValueError):
            generate_failure_trace([], SPEC, np.random.default_rng(0))

    def test_duplicate_site_names_rejected(self):
        with pytest.raises(ValueError):
            generate_failure_trace(["a", "a"], SPEC, np.random.default_rng(0))
