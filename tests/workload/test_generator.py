"""Tests for the static batch workload generator."""

import numpy as np
import pytest

from repro.model.validation import validate_instance
from repro.workload.generator import WorkloadSpec, generate_cluster, generate_jobs, sites_for


class TestSpecValidation:
    def test_defaults_are_valid(self):
        WorkloadSpec()

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=0)

    def test_rejects_bad_contention(self):
        with pytest.raises(ValueError):
            WorkloadSpec(contention=0.0)

    def test_rejects_bad_demand_scale(self):
        with pytest.raises(ValueError):
            WorkloadSpec(demand_scale=-1.0)


class TestGenerateJobs:
    def test_job_count_and_names(self):
        spec = WorkloadSpec(n_jobs=7, n_sites=4)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        assert len(jobs) == 7
        assert {j.name for j in jobs} == {f"j{i}" for i in range(7)}

    def test_site_spread_respected(self):
        spec = WorkloadSpec(n_jobs=20, n_sites=10, site_spread=3)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        assert all(len(j.workload) <= 3 for j in jobs)

    def test_spread_clipped_to_sites(self):
        spec = WorkloadSpec(n_jobs=5, n_sites=2, site_spread=8)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        assert all(len(j.workload) <= 2 for j in jobs)

    def test_demand_caps_scale_with_work(self):
        spec = WorkloadSpec(n_jobs=10, n_sites=4, demand_scale=0.1)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        for j in jobs:
            for s, w in j.workload.items():
                assert j.demand_at(s) == pytest.approx(0.1 * w)

    def test_uncapped_mode(self):
        spec = WorkloadSpec(n_jobs=5, n_sites=3, demand_scale=None)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        assert all(not j.demand for j in jobs)

    def test_mean_work_roughly_matches(self):
        spec = WorkloadSpec(n_jobs=400, n_sites=4, mean_work=50.0, work_cv=0.5)
        jobs = generate_jobs(spec, np.random.default_rng(1))
        mean = np.mean([j.total_work for j in jobs])
        assert mean == pytest.approx(50.0, rel=0.15)

    def test_skew_concentrates_on_popular_sites(self):
        spec = WorkloadSpec(n_jobs=200, n_sites=10, theta=2.0, site_spread=2)
        jobs = generate_jobs(spec, np.random.default_rng(2))
        per_site = np.zeros(10)
        for j in jobs:
            for s, w in j.workload.items():
                per_site[int(s[1:])] += w
        assert per_site[0] > per_site[5:].sum()

    def test_weights_spread(self):
        spec = WorkloadSpec(n_jobs=50, n_sites=3, weight_spread=1.0)
        jobs = generate_jobs(spec, np.random.default_rng(3))
        weights = [j.weight for j in jobs]
        assert min(weights) >= 1.0
        assert max(weights) > 1.1

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(n_jobs=10, n_sites=4)
        a = generate_jobs(spec, np.random.default_rng(7))
        b = generate_jobs(spec, np.random.default_rng(7))
        assert all(x.workload == y.workload for x, y in zip(a, b))


class TestSitesAndCluster:
    def test_contention_realized(self):
        spec = WorkloadSpec(n_jobs=50, n_sites=5, contention=3.0)
        rng = np.random.default_rng(0)
        cluster = generate_cluster(spec, rng)
        rep = validate_instance(cluster)
        # per-edge caps are clipped by site capacity, so realized contention
        # can only come out at or below the requested level
        assert 1.5 < rep.contention_ratio <= 3.0 + 1e-9

    def test_explicit_capacity(self):
        spec = WorkloadSpec(n_jobs=5, n_sites=3)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        sites = sites_for(spec, jobs, site_capacity=42.0)
        assert all(s.capacity == 42.0 for s in sites)

    def test_uncapped_capacity_heuristic(self):
        spec = WorkloadSpec(n_jobs=5, n_sites=3, demand_scale=None)
        jobs = generate_jobs(spec, np.random.default_rng(0))
        sites = sites_for(spec, jobs)
        total_work = sum(j.total_work for j in jobs)
        assert sum(s.capacity for s in sites) == pytest.approx(total_work / 10.0)

    def test_cluster_is_valid(self):
        cluster = generate_cluster(WorkloadSpec(n_jobs=20, n_sites=6), np.random.default_rng(0))
        assert cluster.n_jobs == 20
        assert cluster.n_sites == 6
