"""Tests for the named workload scenarios."""

import numpy as np
import pytest

from repro.model.validation import validate_instance
from repro.workload.generator import generate_cluster
from repro.workload.scenarios import SCENARIOS, get_scenario


class TestRegistry:
    def test_expected_names(self):
        assert {"uniform", "skewed", "hot-spot", "elastic", "capped", "weighted", "wide"} == set(SCENARIOS)

    def test_get_scenario(self):
        assert get_scenario("skewed").theta == 1.5

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="choices"):
            get_scenario("bogus")


class TestScenarioShapes:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_generates(self, name):
        cluster = generate_cluster(SCENARIOS[name], np.random.default_rng(0))
        assert cluster.n_jobs == SCENARIOS[name].n_jobs

    def test_hot_spot_skews_harder_than_uniform(self):
        rng = np.random.default_rng(1)
        hot = validate_instance(generate_cluster(SCENARIOS["hot-spot"], rng)).skew_gini
        rng = np.random.default_rng(1)
        flat = validate_instance(generate_cluster(SCENARIOS["uniform"], rng)).skew_gini
        assert hot > flat + 0.2

    def test_elastic_has_no_caps(self):
        cluster = generate_cluster(SCENARIOS["elastic"], np.random.default_rng(2))
        assert all(not j.demand for j in cluster.jobs)

    def test_weighted_has_weight_spread(self):
        cluster = generate_cluster(SCENARIOS["weighted"], np.random.default_rng(3))
        assert cluster.weights.max() > cluster.weights.min() + 0.5
