"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.workload.traces import TraceSpec, generate_trace_jobs


class TestTraceSpec:
    def test_defaults(self):
        TraceSpec()

    def test_rejects_light_tail(self):
        with pytest.raises(ValueError):
            TraceSpec(pareto_shape=1.0)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            TraceSpec(diurnal_amplitude=1.0)

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            TraceSpec(class_shares=(0.5, 0.5, 0.5))


class TestGeneration:
    def test_counts_and_horizon(self):
        spec = TraceSpec(n_jobs=100, n_sites=6, horizon=50.0)
        sites, jobs = generate_trace_jobs(spec, np.random.default_rng(0))
        assert len(sites) == 6 and len(jobs) == 100
        assert all(0.0 <= j.arrival <= 50.0 for j in jobs)

    def test_heavy_tail_present(self):
        spec = TraceSpec(n_jobs=500, pareto_shape=1.5, mean_work=10.0)
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(1))
        sizes = np.array([j.total_work for j in jobs])
        assert sizes.max() > 5.0 * np.median(sizes)

    def test_locality_classes(self):
        spec = TraceSpec(n_jobs=300, n_sites=8, class_shares=(1.0, 0.0, 0.0))
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(2))
        assert all(len(j.workload) == 1 for j in jobs)

        spec = TraceSpec(n_jobs=50, n_sites=8, class_shares=(0.0, 0.0, 1.0))
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(2))
        assert all(len(j.workload) == 8 for j in jobs)

    def test_demand_caps_attached(self):
        spec = TraceSpec(n_jobs=20, demand_scale=0.2)
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(3))
        for j in jobs:
            for s, w in j.workload.items():
                assert j.demand_at(s) == pytest.approx(0.2 * w)

    def test_arrivals_sorted(self):
        spec = TraceSpec(n_jobs=50)
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(4))
        times = [j.arrival for j in jobs]
        assert times == sorted(times)

    def test_diurnal_modulation_shifts_mass(self):
        """With a strong sinusoid, the first half-period gets more arrivals."""
        spec = TraceSpec(n_jobs=2000, diurnal_amplitude=0.9, horizon=10.0)
        _, jobs = generate_trace_jobs(spec, np.random.default_rng(5))
        first_half = sum(1 for j in jobs if j.arrival < 5.0)
        assert first_half > 1150  # sin is positive on the first half-period
