"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


@pytest.fixture
def two_site_cluster() -> Cluster:
    """Two sites, three jobs; job c is demand-capped at site B.

    This is the library's canonical sharing-incentive violation instance
    (DESIGN.md §1): AMF levels everyone at 0.4 while job c's equal-partition
    entitlement is 1/3 + 0.2 = 0.5333.
    """
    sites = [Site("A", 1.0), Site("B", 1.0)]
    jobs = [
        Job("a", {"A": 1.0}),
        Job("b", {"A": 1.0}),
        Job("c", {"A": 1.0, "B": 0.2}, demand={"B": 0.2}),
    ]
    return Cluster(sites, jobs)


@pytest.fixture
def simple_cluster() -> Cluster:
    """Three jobs, two uncapped sites, mild skew; uncontended enough to be easy."""
    return Cluster.from_matrices(
        capacities=[10.0, 10.0],
        workloads=[[8.0, 2.0], [2.0, 8.0], [5.0, 5.0]],
    )


def random_cluster(
    rng: np.random.Generator,
    n_jobs: int | None = None,
    n_sites: int | None = None,
    *,
    cap_prob: float = 0.5,
    weight_spread: float = 0.0,
) -> Cluster:
    """Small random instance with sparse support and mixed demand caps.

    Used by the randomized cross-validation tests; kept intentionally
    different from :mod:`repro.workload.generator` so the test instances do
    not share the generator's structure.
    """
    n = n_jobs if n_jobs is not None else int(rng.integers(2, 8))
    m = n_sites if n_sites is not None else int(rng.integers(1, 6))
    W = rng.uniform(0.0, 2.0, (n, m)) * (rng.random((n, m)) < 0.7)
    for i in range(n):
        if W[i].sum() == 0.0:
            W[i, rng.integers(m)] = 1.0
    caps = np.where(rng.random((n, m)) < cap_prob, rng.uniform(0.05, 1.5, (n, m)), np.inf)
    weights = None
    if weight_spread > 0:
        weights = 1.0 + rng.uniform(0.0, weight_spread, n)
    return Cluster.from_matrices(rng.uniform(0.5, 3.0, m), W, caps, weights=weights)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
