"""Unit tests for repro._util."""

import numpy as np
import pytest

from repro._util import (
    ABS_TOL,
    as_float_array,
    as_float_matrix,
    feq,
    fle,
    flt,
    nonneg,
    require,
    stable_unique_levels,
)


class TestComparisons:
    def test_feq_exact(self):
        assert feq(1.0, 1.0)

    def test_feq_within_tolerance(self):
        assert feq(1.0, 1.0 + ABS_TOL / 2)

    def test_feq_beyond_tolerance(self):
        assert not feq(1.0, 1.0 + 1e-6)

    def test_feq_relative_for_large_values(self):
        assert feq(1e12, 1e12 * (1 + 1e-10))
        assert not feq(1e12, 1e12 * (1 + 1e-6))

    def test_feq_scale_widens(self):
        assert not feq(1.0, 1.0 + 5e-9)
        assert feq(1.0, 1.0 + 5e-9, scale=10.0)

    def test_fle_strictly_less(self):
        assert fle(0.5, 1.0)

    def test_fle_equal_within_noise(self):
        assert fle(1.0 + ABS_TOL / 2, 1.0)

    def test_fle_greater(self):
        assert not fle(1.1, 1.0)

    def test_flt_is_strict(self):
        assert flt(0.5, 1.0)
        assert not flt(1.0, 1.0 + ABS_TOL / 2)

    def test_zero_vs_zero(self):
        assert feq(0.0, 0.0)
        assert fle(0.0, 0.0)
        assert not flt(0.0, 0.0)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestArrayHelpers:
    def test_as_float_array_from_list(self):
        arr = as_float_array([1, 2, 3], "x")
        assert arr.dtype == float
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([1.0, np.nan], "x")

    def test_as_float_array_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_float_array(np.ones((2, 2)), "x")

    def test_as_float_matrix_shape(self):
        m = as_float_matrix([[1, 2], [3, 4]], "m")
        assert m.shape == (2, 2)

    def test_as_float_matrix_rejects_1d(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            as_float_matrix([1, 2], "m")

    def test_nonneg_clamps_noise(self):
        arr = nonneg(np.array([0.0, -ABS_TOL / 2, 1.0]), "x")
        assert (arr >= 0).all()

    def test_nonneg_rejects_real_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            nonneg(np.array([-0.1]), "x")


class TestStableUniqueLevels:
    def test_collapses_duplicates(self):
        out = stable_unique_levels([1.0, 1.0 + ABS_TOL / 10, 2.0])
        assert out == [1.0, 2.0]

    def test_sorts(self):
        assert stable_unique_levels([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert stable_unique_levels([]) == []
