"""Production AMRF engine: routing, warm bases, table cache, properties.

Three layers of guarantees:

* **routing** — R=1 and dominant-resource clusters take the scalar flow
  fast path (zero LPs); genuinely multi-resource clusters run the
  progressive-filling LP engine;
* **equivalence** — the engine's leximin share profile matches the
  extension study's bisection oracle (:func:`repro.multiresource.amrf_shares`)
  on random instances, sharded or not, warm or cold;
* **fairness properties** — Pareto efficiency, envy-freeness and sharing
  incentive on cap-free instances (the DRF hypotheses).
"""

import numpy as np
import pytest

from repro.core.amf import AmfDiagnostics, solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.multiresource import (
    AmrfBasis,
    MRCluster,
    MRJob,
    MRSite,
    TableCache,
    amrf_allocate,
    amrf_shares,
    scalar_reduction,
    solve_multiresource,
)

RESOURCES = ("cpu", "mem")


def crossing_cluster() -> Cluster:
    """Non-reducible: j0 is mem-heavy, j1 cpu-heavy — no resource dominates."""
    return Cluster(
        [Site("a", {"cpu": 8.0, "mem": 16.0}), Site("b", {"cpu": 4.0, "mem": 32.0})],
        [
            Job("j0", {"a": 100.0, "b": 100.0}, resources={"cpu": 1.0, "mem": 4.0}),
            Job("j1", {"a": 100.0, "b": 100.0}, resources={"cpu": 4.0, "mem": 1.0}),
        ],
    )


def random_mr_pair(rng, n_jobs=None, n_sites=None, *, weights=False):
    """A random MR instance as both a vector ``Cluster`` and an ``MRCluster``."""
    n = n_jobs if n_jobs is not None else int(rng.integers(2, 6))
    m = n_sites if n_sites is not None else int(rng.integers(1, 4))
    site_caps = rng.uniform(1.0, 10.0, (m, len(RESOURCES)))
    demands = rng.uniform(0.1, 4.0, (n, len(RESOURCES)))
    support = rng.random((n, m)) < 0.7
    for i in range(n):
        if not support[i].any():
            support[i, rng.integers(m)] = True
    caps = np.where(rng.random((n, m)) < 0.5, rng.uniform(0.2, 3.0, (n, m)), 50.0)
    w = rng.uniform(0.5, 2.0, n) if weights else np.ones(n)
    sites = [
        Site(f"s{j}", {res: float(site_caps[j, r]) for r, res in enumerate(RESOURCES)})
        for j in range(m)
    ]
    jobs = [
        Job(
            f"j{i}",
            {f"s{j}": 1.0 for j in range(m) if support[i, j]},
            demand={f"s{j}": float(caps[i, j]) for j in range(m) if support[i, j]},
            resources={res: float(demands[i, r]) for r, res in enumerate(RESOURCES)},
            weight=float(w[i]),
        )
        for i in range(n)
    ]
    mr_sites = [MRSite(s.name, s.resource_vector) for s in sites]
    mr_jobs = [
        MRJob(
            jb.name,
            jb.resource_vector,
            {site: float(caps[i, int(site[1:])]) for site in jb.workload},
            weight=float(w[i]),
        )
        for i, jb in enumerate(jobs)
    ]
    return Cluster(sites, jobs), MRCluster(mr_sites, mr_jobs)


def check_valid(cluster: Cluster, matrix: np.ndarray, tol: float = 1e-6) -> None:
    """Rates within caps and every site-resource capacity respected."""
    assert float(matrix.min(initial=0.0)) >= -tol
    assert (matrix - cluster.demand_caps).max(initial=0.0) <= tol * 10
    usage = np.einsum("ij,ir->jr", matrix, cluster.job_resource_matrix)
    slack = usage - cluster.site_resource_matrix
    assert float(slack.max(initial=0.0)) <= tol * float(cluster.site_resource_matrix.max())


class TestRouting:
    def test_r1_routes_to_flow_path(self):
        c = Cluster(
            [Site("a", {"cpu": 4.0}), Site("b", {"cpu": 2.0})],
            [
                Job("x", {"a": 10.0}, resources={"cpu": 1.0}),
                Job("y", {"a": 10.0, "b": 10.0}, resources={"cpu": 2.0}),
            ],
        )
        diag = AmfDiagnostics()
        alloc = solve_amf(c, diagnostics=diag)
        assert diag.amrf_lps == 0  # no LP ever ran
        check_valid(c, alloc.matrix)

    def test_dominant_resource_routes_to_flow_path(self):
        # cpu dominates: every job's cpu/total ratio exceeds its mem ratio
        c = Cluster(
            [Site("a", {"cpu": 4.0, "mem": 100.0}), Site("b", {"cpu": 2.0, "mem": 100.0})],
            [
                Job("x", {"a": 10.0}, resources={"cpu": 2.0, "mem": 1.0}),
                Job("y", {"a": 10.0, "b": 10.0}, resources={"cpu": 1.0, "mem": 0.5}),
            ],
        )
        assert scalar_reduction(c) is not None
        diag = AmfDiagnostics()
        solve_amf(c, diagnostics=diag)
        assert diag.amrf_lps == 0

    def test_crossing_dominance_runs_engine(self):
        c = crossing_cluster()
        assert scalar_reduction(c) is None
        diag = AmfDiagnostics()
        alloc = solve_amf(c, diagnostics=diag)
        assert diag.amrf_lps > 0
        assert diag.amrf_rounds > 0
        check_valid(c, alloc.matrix)

    def test_reduction_is_exact_change_of_variables(self):
        c = Cluster(
            [Site("a", {"cpu": 4.0})],
            [Job("x", {"a": 10.0}, demand={"a": 3.0}, resources={"cpu": 2.0})],
        )
        red = scalar_reduction(c)
        assert red is not None
        scalar, k = red
        assert scalar.sites[0].capacity == 4.0
        assert k.tolist() == [2.0]
        # demand cap scales by k: 2 * min(3, 4/2) = 4
        assert scalar.demand_caps[0, 0] == pytest.approx(4.0)

    def test_r1_matches_scalar_solve_exactly(self, rng):
        for _ in range(5):
            n, m = int(rng.integers(2, 6)), int(rng.integers(1, 4))
            caps = rng.uniform(1.0, 8.0, m)
            support = rng.random((n, m)) < 0.7
            for i in range(n):
                if not support[i].any():
                    support[i, rng.integers(m)] = True
            scalar = Cluster(
                [Site(f"s{j}", float(caps[j])) for j in range(m)],
                [
                    Job(f"j{i}", {f"s{j}": 1.0 for j in range(m) if support[i, j]})
                    for i in range(n)
                ],
            )
            vector = Cluster(
                [Site(f"s{j}", {"cpu": float(caps[j])}) for j in range(m)],
                [
                    Job(
                        f"j{i}",
                        {f"s{j}": 1.0 for j in range(m) if support[i, j]},
                        resources={"cpu": 1.0},
                    )
                    for i in range(n)
                ],
            )
            a = solve_amf(scalar).matrix
            b = solve_amf(vector).matrix
            assert np.array_equal(a, b)  # bit-identical routing


class TestEngineVsOracle:
    def test_matches_bisection_oracle_on_random_instances(self, rng):
        for _ in range(8):
            cluster, mr = random_mr_pair(rng)
            alloc = solve_multiresource(cluster, table_cache=TableCache())
            check_valid(cluster, alloc.matrix)
            got = np.sort(cluster.dominant_factor() * alloc.matrix.sum(axis=1))
            want = np.sort(amrf_shares(mr))
            assert np.allclose(got, want, atol=1e-5), (got, want)

    def test_weighted_instances(self, rng):
        for _ in range(4):
            cluster, mr = random_mr_pair(rng, weights=True)
            alloc = solve_multiresource(cluster, table_cache=TableCache())
            got = np.sort(cluster.dominant_factor() * alloc.matrix.sum(axis=1))
            want = np.sort(amrf_shares(mr))
            assert np.allclose(got, want, atol=1e-5)

    def test_sharded_equals_monolithic(self, rng):
        # Two disconnected components: disjoint sites and job supports.
        for _ in range(4):
            c1, _ = random_mr_pair(rng, n_sites=2)
            c2, _ = random_mr_pair(rng, n_sites=2)
            sites = list(c1.sites) + [
                Site("t" + s.name, s.resource_vector) for s in c2.sites
            ]
            jobs = list(c1.jobs) + [
                Job(
                    "t" + j.name,
                    {"t" + s: w for s, w in j.workload.items()},
                    demand={"t" + s: d for s, d in j.demand.items()},
                    resources=dict(j.resources),
                    weight=j.weight,
                )
                for j in c2.jobs
            ]
            merged = Cluster(sites, jobs)
            mono = solve_multiresource(merged, table_cache=TableCache())
            shard = solve_multiresource(merged, shards=True, table_cache=TableCache())
            dom = merged.dominant_factor()
            assert np.allclose(
                dom * mono.matrix.sum(axis=1),
                dom * shard.matrix.sum(axis=1),
                atol=1e-5,
            )

    def test_floors_respected(self):
        c = crossing_cluster()
        floors = np.array([3.0, 0.0])
        alloc = solve_multiresource(c, floors=floors, table_cache=TableCache())
        assert alloc.matrix.sum(axis=1)[0] >= 3.0 - 1e-6
        assert alloc.policy == "amrf+floors"

    def test_infeasible_floors_raise(self):
        # Each floor is individually feasible (below the job's run-alone
        # maximum, so it survives the share-cap clip) but jointly they
        # need 7.9 + 4*2.9 = 19.5 cpu against 12 available.
        c = crossing_cluster()
        with pytest.raises(ValueError, match="infeasible"):
            amrf_allocate(c, floors=np.array([7.9, 2.9]))


class TestWarmStartAndCache:
    def test_basis_rows_reused_on_resolve(self):
        c = crossing_cluster()
        basis = AmrfBasis()
        d1 = AmfDiagnostics()
        a1 = amrf_allocate(c, basis=basis, diagnostics=d1)
        assert len(basis) > 0
        d2 = AmfDiagnostics()
        a2 = amrf_allocate(c, basis=basis, diagnostics=d2)
        assert d2.amrf_basis_rows_reused > 0
        assert np.allclose(a1.matrix, a2.matrix, atol=1e-7)

    def test_warm_basis_cannot_change_result(self, rng):
        for _ in range(4):
            cluster, _ = random_mr_pair(rng)
            cold = amrf_allocate(cluster)
            basis = AmrfBasis()
            amrf_allocate(cluster, basis=basis)
            warm = amrf_allocate(cluster, basis=basis)
            dom = cluster.dominant_factor()
            assert np.allclose(
                dom * cold.matrix.sum(axis=1),
                dom * warm.matrix.sum(axis=1),
                atol=1e-6,
            )

    def test_table_cache_hit_skips_all_lps(self):
        c = crossing_cluster()
        cache = TableCache()
        d1 = AmfDiagnostics()
        a1 = amrf_allocate(c, table_cache=cache, diagnostics=d1)
        assert d1.amrf_lps > 0
        assert cache.misses == 1
        d2 = AmfDiagnostics()
        a2 = amrf_allocate(c, table_cache=cache, diagnostics=d2)
        assert d2.amrf_table_hits == 1
        assert d2.amrf_lps == 0
        assert cache.hits == 1
        assert np.array_equal(a1.matrix, a2.matrix)  # served verbatim

    def test_table_key_covers_totals_and_floors(self):
        c = crossing_cluster()
        cache = TableCache()
        amrf_allocate(c, table_cache=cache)
        d = AmfDiagnostics()
        amrf_allocate(
            c,
            table_cache=cache,
            resource_totals={"cpu": 100.0, "mem": 100.0},
            diagnostics=d,
        )
        assert d.amrf_table_hits == 0  # different totals, different key
        d2 = AmfDiagnostics()
        amrf_allocate(c, table_cache=cache, floors=np.array([1.0, 0.0]), diagnostics=d2)
        assert d2.amrf_table_hits == 0

    def test_lru_eviction(self):
        cache = TableCache(maxsize=1)
        cache.put(("a",), np.zeros(1), np.zeros((1, 1)))
        cache.put(("b",), np.zeros(1), np.zeros((1, 1)))
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is not None

    def test_global_cache_is_production_default(self):
        from repro.multiresource.engine import global_table_cache

        cache = global_table_cache()
        c = Cluster(
            [Site("gdefault", {"cpu": 5.0, "mem": 5.0})],
            [
                Job("g0", {"gdefault": 100.0}, resources={"cpu": 1.0, "mem": 3.0}),
                Job("g1", {"gdefault": 100.0}, resources={"cpu": 3.0, "mem": 1.0}),
            ],
        )
        solve_multiresource(c)
        d = AmfDiagnostics()
        solve_multiresource(c, diagnostics=d)
        assert d.amrf_table_hits >= 1
        assert d.amrf_lps == 0
        cache.clear()


class TestFairnessProperties:
    """DRF-style properties on cap-free instances (the classical hypotheses)."""

    def capfree(self, rng, n=3, m=2):
        demands = rng.uniform(0.2, 4.0, (n, len(RESOURCES)))
        site_caps = rng.uniform(2.0, 10.0, (m, len(RESOURCES)))
        sites = [
            Site(f"s{j}", {res: float(site_caps[j, r]) for r, res in enumerate(RESOURCES)})
            for j in range(m)
        ]
        jobs = [
            Job(
                f"j{i}",
                {f"s{j}": 1.0 for j in range(m)},
                resources={res: float(demands[i, r]) for r, res in enumerate(RESOURCES)},
            )
            for i in range(n)
        ]
        return Cluster(sites, jobs)

    def test_pareto_efficiency(self, rng):
        """No job's share can rise without another's falling below its share."""
        from scipy.optimize import linprog

        for _ in range(4):
            c = self.capfree(rng)
            alloc = solve_multiresource(c, table_cache=TableCache())
            dom = c.dominant_factor()
            shares = dom * alloc.matrix.sum(axis=1)
            caps = c.demand_caps
            edges = [(i, j) for i in range(c.n_jobs) for j in range(c.n_sites) if caps[i, j] > 0]
            J, C = c.job_resource_matrix, c.site_resource_matrix
            for target in range(c.n_jobs):
                rows, rhs = [], []
                for j in range(c.n_sites):
                    for r in range(J.shape[1]):
                        row = [J[i, r] if je == j else 0.0 for (i, je) in edges]
                        rows.append(row)
                        rhs.append(C[j, r])
                for i in range(c.n_jobs):
                    if i == target:
                        continue
                    rows.append([-dom[i] if ie == i else 0.0 for (ie, _j) in edges])
                    rhs.append(-shares[i] * (1 - 1e-7))
                obj = [-dom[target] if ie == target else 0.0 for (ie, _j) in edges]
                res = linprog(
                    obj,
                    A_ub=np.array(rows),
                    b_ub=np.array(rhs),
                    bounds=[(0, caps[i, j]) for (i, j) in edges],
                    method="highs",
                )
                assert res.success
                assert -res.fun <= shares[target] + 1e-5

    def test_envy_freeness(self, rng):
        """No job could run more tasks with another job's resource bundle."""
        for _ in range(6):
            c = self.capfree(rng)
            alloc = solve_multiresource(c, table_cache=TableCache())
            J = c.job_resource_matrix
            agg = alloc.matrix.sum(axis=1)
            for i in range(c.n_jobs):
                for k in range(c.n_jobs):
                    bundle = agg[k] * J[k]  # job k's aggregate usage vector
                    could_run = float(np.min(bundle / J[i]))
                    assert could_run <= agg[i] + 1e-5

    def test_sharing_incentive_single_site(self, rng):
        """Classical DRF guarantee: at one site, each job's dominant share
        is at least 1/n (what an equal split of every resource yields)."""
        for _ in range(6):
            c = self.capfree(rng, n=int(rng.integers(2, 5)), m=1)
            alloc = solve_multiresource(c, table_cache=TableCache())
            shares = c.dominant_factor() * alloc.matrix.sum(axis=1)
            assert float(shares.min()) >= 1.0 / c.n_jobs - 1e-5

    def test_sharing_incentive_multi_site(self, rng):
        """Multi-site form: leximin's worst-off job does at least as well
        as the worst-off job under splitting every site n ways (packing
        losses mean per-job 1/n is not achievable across sites)."""
        for _ in range(6):
            c = self.capfree(rng, n=int(rng.integers(2, 5)))
            alloc = solve_multiresource(c, table_cache=TableCache())
            dom = c.dominant_factor()
            shares = dom * alloc.matrix.sum(axis=1)
            J, C = c.job_resource_matrix, c.site_resource_matrix
            # job i alone on 1/n of every site runs sum_j min_r c_jr/(n r_ir)
            eq_tasks = (C[None, :, :] / (c.n_jobs * J[:, None, :])).min(axis=2).sum(axis=1)
            assert float(shares.min()) >= float((dom * eq_tasks).min()) - 1e-5
