"""Tests for per-site DRF and AMRF solvers."""

import numpy as np
import pytest

from repro.core.amf import amf_levels
from repro.model.cluster import Cluster
from repro.multiresource import MRCluster, MRJob, MRSite, amrf_shares, solve_amrf, solve_persite_drf


def ghodsi() -> MRCluster:
    """The canonical DRF example (Ghodsi et al., NSDI'11)."""
    return MRCluster(
        [MRSite("s", {"cpu": 9.0, "mem": 18.0})],
        [
            MRJob("A", {"cpu": 1.0, "mem": 4.0}, {"s": 100.0}),
            MRJob("B", {"cpu": 3.0, "mem": 1.0}, {"s": 100.0}),
        ],
    )


class TestPerSiteDrf:
    def test_canonical_example(self):
        rates = solve_persite_drf(ghodsi())
        assert np.allclose(rates.ravel(), [3.0, 2.0], atol=1e-7)

    def test_single_resource_reduces_to_waterfill(self):
        c = MRCluster(
            [MRSite("s", {"cpu": 6.0})],
            [
                MRJob("x", {"cpu": 1.0}, {"s": 1.0}),
                MRJob("y", {"cpu": 1.0}, {"s": 100.0}),
                MRJob("z", {"cpu": 1.0}, {"s": 100.0}),
            ],
        )
        assert np.allclose(solve_persite_drf(c).ravel(), [1.0, 2.5, 2.5], atol=1e-7)

    def test_sites_independent(self):
        c = MRCluster(
            [MRSite("A", {"cpu": 4.0}), MRSite("B", {"cpu": 2.0})],
            [MRJob("x", {"cpu": 1.0}, {"A": 100.0}), MRJob("y", {"cpu": 1.0}, {"B": 100.0})],
        )
        rates = solve_persite_drf(c)
        assert rates[0, 0] == pytest.approx(4.0)
        assert rates[1, 1] == pytest.approx(2.0)

    def test_task_caps_respected(self):
        c = MRCluster(
            [MRSite("s", {"cpu": 10.0})],
            [MRJob("x", {"cpu": 1.0}, {"s": 2.0}), MRJob("y", {"cpu": 1.0}, {"s": 100.0})],
        )
        rates = solve_persite_drf(c)
        assert rates[0, 0] == pytest.approx(2.0)
        assert rates[1, 0] == pytest.approx(8.0)

    def test_disjoint_resources_fill_independently(self):
        # x uses only cpu, y only mem: neither blocks the other
        c = MRCluster(
            [MRSite("s", {"cpu": 4.0, "mem": 8.0})],
            [MRJob("x", {"cpu": 1.0}, {"s": 100.0}), MRJob("y", {"mem": 1.0}, {"s": 100.0})],
        )
        rates = solve_persite_drf(c)
        assert rates[0, 0] == pytest.approx(4.0, abs=1e-6)
        assert rates[1, 0] == pytest.approx(8.0, abs=1e-6)


class TestAmrf:
    def test_single_site_matches_drf(self):
        c = ghodsi()
        drf_shares = c.aggregate_dominant_shares(solve_persite_drf(c))
        assert np.allclose(amrf_shares(c), drf_shares, atol=1e-6)

    def test_single_resource_matches_amf(self):
        mr = MRCluster(
            [MRSite("A", {"cpu": 1.0}), MRSite("B", {"cpu": 1.0})],
            [
                MRJob("a", {"cpu": 1.0}, {"A": 10.0}),
                MRJob("b", {"cpu": 1.0}, {"A": 10.0}),
                MRJob("s", {"cpu": 1.0}, {"A": 10.0, "B": 10.0}),
            ],
        )
        aggregates = solve_amrf(mr).sum(axis=1)
        flow = Cluster.from_matrices(
            [1.0, 1.0],
            [[10.0, 0.0], [10.0, 0.0], [10.0, 10.0]],
            [[10.0, np.inf], [10.0, np.inf], [10.0, 10.0]],
        )
        assert np.allclose(aggregates, amf_levels(flow), atol=1e-6)

    def test_cross_site_compensation(self):
        """The AMF signature, in vector form: the spread job yields the hot site."""
        mr = MRCluster(
            [MRSite("hot", {"cpu": 4.0, "mem": 8.0}), MRSite("idle", {"cpu": 4.0, "mem": 8.0})],
            [
                MRJob("pinned", {"cpu": 1.0, "mem": 1.0}, {"hot": 100.0}),
                MRJob("spread", {"cpu": 1.0, "mem": 1.0}, {"hot": 100.0, "idle": 100.0}),
            ],
        )
        rates = solve_amrf(mr)
        # pinned gets (nearly) the whole hot site's cpu
        assert rates[0, 0] == pytest.approx(4.0, rel=1e-3)

    def test_shares_weighted(self):
        mr = MRCluster(
            [MRSite("s", {"cpu": 3.0})],
            [
                MRJob("x", {"cpu": 1.0}, {"s": 100.0}, weight=1.0),
                MRJob("y", {"cpu": 1.0}, {"s": 100.0}, weight=2.0),
            ],
        )
        shares = amrf_shares(mr)
        assert shares[1] / shares[0] == pytest.approx(2.0, rel=1e-4)

    def test_rates_feasible_randomized(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            m, n = 3, 6
            sites = [MRSite(f"s{j}", {"cpu": float(rng.uniform(4, 10)), "mem": float(rng.uniform(8, 30))}) for j in range(m)]
            jobs = []
            for i in range(n):
                spread = int(rng.integers(1, m + 1))
                chosen = rng.choice(m, size=spread, replace=False)
                jobs.append(
                    MRJob(
                        f"j{i}",
                        {"cpu": float(rng.uniform(0.5, 2.0)), "mem": float(rng.uniform(0.5, 6.0))},
                        {f"s{j}": float(rng.uniform(2, 20)) for j in chosen},
                    )
                )
            mr = MRCluster(sites, jobs)
            solve_amrf(mr)  # validate_rates inside
            solve_persite_drf(mr)

    def test_amrf_at_least_as_balanced_as_drf(self):
        """On the dominant-share Jain index, AMRF never loses (randomized)."""
        from repro.metrics.fairness import jain_index

        rng = np.random.default_rng(1)
        for _ in range(5):
            m, n = 3, 8
            sites = [MRSite(f"s{j}", {"cpu": 10.0, "mem": 40.0}) for j in range(m)]
            jobs = []
            for i in range(n):
                spread = int(rng.integers(1, 3))
                chosen = rng.choice(m, size=spread, replace=False)
                jobs.append(
                    MRJob(
                        f"j{i}",
                        {"cpu": float(rng.uniform(0.5, 2.0)), "mem": float(rng.uniform(1.0, 8.0))},
                        {f"s{j}": float(rng.uniform(5, 30)) for j in chosen},
                    )
                )
            mr = MRCluster(sites, jobs)
            drf = jain_index(mr.aggregate_dominant_shares(solve_persite_drf(mr)))
            amrf = jain_index(mr.aggregate_dominant_shares(solve_amrf(mr)))
            assert amrf >= drf - 1e-6
