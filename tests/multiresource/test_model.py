"""Tests for the multi-resource model."""

import numpy as np
import pytest

from repro.multiresource.model import MRCluster, MRJob, MRSite


def cluster() -> MRCluster:
    return MRCluster(
        [MRSite("A", {"cpu": 8.0, "mem": 16.0}), MRSite("B", {"cpu": 4.0, "mem": 32.0})],
        [
            MRJob("x", {"cpu": 1.0, "mem": 4.0}, {"A": 10.0}),
            MRJob("y", {"cpu": 2.0, "mem": 1.0}, {"A": 5.0, "B": 5.0}),
        ],
    )


class TestConstruction:
    def test_basic(self):
        c = cluster()
        assert c.n_jobs == 2 and c.n_sites == 2
        assert c.resources == ["cpu", "mem"]

    def test_rejects_inconsistent_resources(self):
        with pytest.raises(ValueError, match="must define all resources"):
            MRCluster(
                [MRSite("A", {"cpu": 1.0}), MRSite("B", {"cpu": 1.0, "mem": 1.0})],
                [],
            )

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown sites"):
            MRCluster([MRSite("A", {"cpu": 1.0})], [MRJob("x", {"cpu": 1.0}, {"Z": 1.0})])

    def test_rejects_zero_demand_vector(self):
        with pytest.raises(ValueError, match="non-zero"):
            MRJob("x", {"cpu": 0.0}, {"A": 1.0})

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            MRSite("A", {"cpu": 0.0})


class TestMatrices:
    def test_capacity_matrix(self):
        c = cluster()
        assert c.capacity_matrix.tolist() == [[8.0, 16.0], [4.0, 32.0]]
        assert c.total_capacity.tolist() == [12.0, 48.0]

    def test_demand_matrix(self):
        assert cluster().demand_matrix.tolist() == [[1.0, 4.0], [2.0, 1.0]]

    def test_task_caps(self):
        assert cluster().task_caps.tolist() == [[10.0, 0.0], [5.0, 5.0]]

    def test_global_dominant_factor(self):
        c = cluster()
        # x: max(1/12, 4/48) = 1/12 ; y: max(2/12, 1/48) = 1/6
        assert np.allclose(c.global_dominant_factor(), [1 / 12, 1 / 6])

    def test_local_dominant_factor(self):
        c = cluster()
        # at site A: x -> max(1/8, 4/16) = 1/4 ; y -> max(2/8, 1/16) = 1/4
        assert np.allclose(c.local_dominant_factor(0), [0.25, 0.25])

    def test_aggregate_dominant_shares(self):
        c = cluster()
        rates = np.array([[6.0, 0.0], [1.0, 1.0]])
        assert np.allclose(c.aggregate_dominant_shares(rates), [0.5, 1 / 3])


class TestValidateRates:
    def test_valid(self):
        cluster().validate_rates(np.array([[2.0, 0.0], [1.0, 1.0]]))

    def test_rejects_cap_violation(self):
        with pytest.raises(ValueError, match="task cap"):
            cluster().validate_rates(np.array([[11.0, 0.0], [0.0, 0.0]]))

    def test_rejects_resource_violation(self):
        with pytest.raises(ValueError, match="resource capacity"):
            # 4 mem per task * 5 tasks = 20 > 16 mem at A
            cluster().validate_rates(np.array([[5.0, 0.0], [0.0, 0.0]]))
