"""Tests for balance metrics."""

import numpy as np
import pytest

from repro.core.amf import solve_amf
from repro.core.persite import solve_psmf
from repro.metrics.fairness import (
    balance_report,
    coefficient_of_variation,
    jain_index,
    min_max_ratio,
)
from repro.model.cluster import Cluster


class TestJain:
    def test_equal_is_one(self):
        assert jain_index(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_empty_is_one(self):
        assert jain_index(np.array([])) == 1.0

    def test_all_zero_is_one(self):
        assert jain_index(np.zeros(3)) == 1.0

    def test_scale_invariant(self):
        v = np.array([1.0, 2.0, 3.0])
        assert jain_index(v) == pytest.approx(jain_index(10 * v))


class TestCov:
    def test_equal_is_zero(self):
        assert coefficient_of_variation(np.array([3.0, 3.0])) == pytest.approx(0.0)

    def test_known_value(self):
        v = np.array([1.0, 3.0])
        assert coefficient_of_variation(v) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert coefficient_of_variation(np.array([])) == 0.0

    def test_all_zero_is_zero(self):
        # the degenerate-vector convention: all-zero reads as perfectly
        # equal, consistent with jain_index/min_max_ratio (module docstring)
        assert coefficient_of_variation(np.zeros(3)) == 0.0


class TestMinMax:
    def test_equal_is_one(self):
        assert min_max_ratio(np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_starved_is_zero(self):
        assert min_max_ratio(np.array([0.0, 5.0])) == pytest.approx(0.0)

    def test_all_zero_is_one(self):
        assert min_max_ratio(np.zeros(2)) == 1.0


class TestBalanceReport:
    def test_amf_perfectly_balanced_when_unconstrained(self):
        c = Cluster.from_matrices([4.0], [[1.0], [1.0]])
        rep = balance_report(solve_amf(c))
        assert rep.jain == pytest.approx(1.0)
        assert rep.cov == pytest.approx(0.0, abs=1e-9)
        assert rep.min_max == pytest.approx(1.0)

    def test_psmf_imbalance_visible(self):
        c = Cluster.from_matrices([1.0, 1.0], [[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        rep_psmf = balance_report(solve_psmf(c))
        rep_amf = balance_report(solve_amf(c))
        assert rep_amf.jain > rep_psmf.jain

    def test_saturated_jobs_excluded(self):
        # one job demand-saturated tiny; the others equal -> still "balanced"
        c = Cluster.from_matrices([3.0], [[1.0], [1.0], [1.0]], [[0.1], [np.inf], [np.inf]])
        rep = balance_report(solve_amf(c))
        assert rep.jain == pytest.approx(1.0)

    def test_all_saturated_falls_back_to_levels(self):
        c = Cluster.from_matrices([10.0], [[1.0], [1.0]], [[1.0], [2.0]])
        rep = balance_report(solve_amf(c))
        assert 0.0 < rep.jain <= 1.0

    def test_report_row(self):
        c = Cluster.from_matrices([2.0], [[1.0], [1.0]])
        row = balance_report(solve_amf(c)).row()
        assert {"jain", "cov", "min_max", "min_level", "max_level", "utilization"} == set(row)

    def test_weighted_levels_used(self):
        c = Cluster.from_matrices([3.0], [[1.0], [1.0]], weights=[1.0, 2.0])
        rep = balance_report(solve_amf(c))
        # weighted max-min equalizes A/w, so the normalized report is balanced
        assert rep.jain == pytest.approx(1.0)
