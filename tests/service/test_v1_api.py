"""The v1 control-plane surface: versioned routes, deprecation headers on
legacy aliases, the uniform error envelope, pagination, and /v1/spec.

Golden tests — they pin the wire contract clients are told to rely on
(docs/api.md), so a failure here is an API break, not a refactor detail.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.site import Site
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.service.daemon import AllocationService
from repro.service.http import ServiceServer
from repro.service.schema import API_SPEC, JobsQuery, SchemaError
from repro.service.state import ClusterState


@pytest.fixture
def server():
    REGISTRY.reset()
    TRACER.clear()
    state = ClusterState([Site("a", 2.0), Site("b", 3.0), Site("c", 1.0)])
    service = AllocationService(state, max_delay=0.005)
    srv = ServiceServer(service, port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def call(srv, method: str, path: str, body: dict | None = None):
    """Like the other suites' helper but also returns the response headers."""
    url = f"http://127.0.0.1:{srv.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), dict(exc.headers)


class TestV1Reachability:
    def test_every_get_endpoint_answers_under_v1(self, server):
        for path in ("/v1/health", "/v1/stats", "/v1/jobs", "/v1/spec", "/v1/traces"):
            status, _, _ = call(server, "GET", path)
            assert status == 200, path

    def test_metrics_under_v1(self, server):
        url = f"http://127.0.0.1:{server.port}/v1/metrics"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_post_delete_lifecycle_under_v1(self, server):
        status, payload, _ = call(
            server, "POST", "/v1/allocate", {"name": "x", "workload": {"a": 1.0}}
        )
        assert status == 200 and set(payload["jobs"]) == {"x"}
        status, payload, _ = call(
            server, "POST", "/v1/jobs", {"name": "y", "workload": {"b": 1.0}}
        )
        assert status == 202 and payload["queued_jobs"] == ["y"]
        status, _, _ = call(server, "POST", "/v1/capacity", {"site": "a", "capacity": 5.0})
        assert status == 202
        status, _, _ = call(server, "DELETE", "/v1/jobs/x")
        assert status == 202

    def test_v1_and_legacy_answer_identically(self, server):
        call(server, "POST", "/v1/allocate", {"name": "x", "workload": {"a": 1.0}})
        _, v1_payload, _ = call(server, "GET", "/v1/jobs")
        _, legacy_payload, _ = call(server, "GET", "/jobs")
        assert v1_payload == legacy_payload


class TestDeprecationHeaders:
    @pytest.mark.parametrize("path", ["/health", "/stats", "/jobs"])
    def test_legacy_alias_carries_deprecation(self, server, path):
        status, _, headers = call(server, "GET", path)
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == f'</v1{path}>; rel="successor-version"'

    def test_legacy_post_carries_deprecation(self, server):
        _, _, headers = call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        assert headers.get("Deprecation") == "true"
        assert '</v1/allocate>' in headers.get("Link", "")

    @pytest.mark.parametrize("path", ["/v1/health", "/v1/stats", "/v1/jobs", "/v1/spec"])
    def test_v1_routes_are_clean(self, server, path):
        status, _, headers = call(server, "GET", path)
        assert status == 200
        assert "Deprecation" not in headers
        assert "Link" not in headers

    def test_unknown_legacy_path_is_plain_404(self, server):
        status, _, headers = call(server, "GET", "/nope")
        assert status == 404 and "Deprecation" not in headers

    def test_spec_has_no_legacy_alias(self, server):
        status, payload, _ = call(server, "GET", "/spec")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestErrorEnvelope:
    """Every error body is {"error": {"code", "message", "detail"}}."""

    def envelope(self, payload):
        assert set(payload) == {"error"}
        assert set(payload["error"]) == {"code", "message", "detail"}
        return payload["error"]

    def test_bad_request(self, server):
        status, payload, _ = call(server, "POST", "/v1/jobs", {"name": "j"})
        assert status == 400
        err = self.envelope(payload)
        assert err["code"] == "bad_request"
        assert "workload" in err["message"]

    def test_not_found_path(self, server):
        status, payload, _ = call(server, "GET", "/v1/nope")
        assert status == 404
        assert self.envelope(payload)["code"] == "not_found"

    def test_not_found_job(self, server):
        status, payload, _ = call(server, "DELETE", "/v1/jobs/ghost")
        assert status == 404
        err = self.envelope(payload)
        assert err["code"] == "not_found" and "ghost" in err["message"]

    def test_bad_query_string(self, server):
        status, payload, _ = call(server, "GET", "/v1/jobs?limit=0")
        assert status == 400
        assert self.envelope(payload)["code"] == "bad_request"

    def test_unknown_field_rejected_with_envelope(self, server):
        status, payload, _ = call(
            server, "POST", "/v1/jobs", {"name": "j", "workload": {"a": 1.0}, "nope": 1}
        )
        assert status == 400
        assert "unknown fields" in self.envelope(payload)["message"]


class TestPagination:
    def seed_jobs(self, server, n):
        jobs = [{"name": f"j{i:02d}", "workload": {"a": 1.0}} for i in range(n)]
        status, _, _ = call(server, "POST", "/v1/allocate", {"jobs": jobs})
        assert status == 200

    def test_defaults(self, server):
        self.seed_jobs(server, 5)
        _, payload, _ = call(server, "GET", "/v1/jobs")
        page = payload["pagination"]
        assert page == {"limit": 100, "offset": 0, "total": 5, "returned": 5, "status": "active"}
        assert all(entry["status"] == "active" for entry in payload["jobs"].values())

    def test_limit_and_offset_window(self, server):
        self.seed_jobs(server, 6)
        _, payload, _ = call(server, "GET", "/v1/jobs?limit=2&offset=3")
        assert payload["pagination"]["returned"] == 2
        assert payload["pagination"]["total"] == 6
        assert list(payload["jobs"]) == ["j03", "j04"]

    def test_offset_past_end(self, server):
        self.seed_jobs(server, 3)
        _, payload, _ = call(server, "GET", "/v1/jobs?offset=10")
        assert payload["jobs"] == {} and payload["pagination"]["returned"] == 0

    @pytest.mark.parametrize("query", ["limit=0", "limit=1001", "limit=x", "offset=-1", "status=zzz", "nope=1"])
    def test_invalid_query_400(self, server, query):
        status, payload, _ = call(server, "GET", f"/v1/jobs?{query}")
        assert status == 400 and payload["error"]["code"] == "bad_request"

    def test_pending_filter_sees_queued_jobs(self, server):
        # queue without flushing: max_delay keeps the batch pending briefly
        call(server, "POST", "/v1/jobs", {"name": "p1", "workload": {"a": 1.0}})
        _, payload, _ = call(server, "GET", "/v1/jobs?status=pending")
        names = {n for n, e in payload["jobs"].items() if e["status"] == "pending"}
        # the flusher may have landed the batch already; either way the
        # filter answers without error and never lists it as active
        assert names <= {"p1"}
        assert all(e["status"] == "pending" for e in payload["jobs"].values())

    def test_status_all_merges_active_and_pending(self, server):
        self.seed_jobs(server, 2)
        _, payload, _ = call(server, "GET", "/v1/jobs?status=all")
        assert payload["pagination"]["status"] == "all"
        assert {"j00", "j01"} <= set(payload["jobs"])


class TestSpec:
    def test_spec_served_verbatim(self, server):
        status, payload, _ = call(server, "GET", "/v1/spec")
        assert status == 200 and payload == json.loads(json.dumps(API_SPEC))

    def test_spec_covers_every_route(self, server):
        _, payload, _ = call(server, "GET", "/v1/spec")
        routes = {(r["method"], r["path"]) for r in payload["routes"]}
        assert routes == {
            ("GET", "/v1/health"),
            ("GET", "/v1/stats"),
            ("GET", "/v1/metrics"),
            ("GET", "/v1/traces"),
            ("GET", "/v1/jobs"),
            ("GET", "/v1/allocate"),
            ("GET", "/v1/spec"),
            ("POST", "/v1/jobs"),
            ("POST", "/v1/capacity"),
            ("POST", "/v1/allocate"),
            ("DELETE", "/v1/jobs/<name>"),
        }
        assert payload["api_version"] == "v1"
        assert payload["pagination"]["limit"] == {"default": 100, "min": 1, "max": 1000}


class TestJobsQueryUnit:
    def test_defaults(self):
        q = JobsQuery.from_query({})
        assert (q.limit, q.offset, q.status) == (100, 0, "active")

    @pytest.mark.parametrize("params", [{"limit": "0"}, {"limit": "1001"}, {"offset": "-1"}, {"status": "none"}, {"bogus": "1"}])
    def test_rejections(self, params):
        with pytest.raises(SchemaError):
            JobsQuery.from_query(params)

    def test_bounds_accepted(self):
        assert JobsQuery.from_query({"limit": "1"}).limit == 1
        assert JobsQuery.from_query({"limit": "1000"}).limit == 1000


class TestShardingStats:
    def test_stats_expose_sharding_section(self, server):
        call(server, "POST", "/v1/allocate", {"name": "x", "workload": {"a": 1.0}})
        _, stats, _ = call(server, "GET", "/v1/stats")
        sharding = stats["sharding"]
        assert sharding["enabled"] is True
        assert sharding["last_shards"] >= 1
        assert sharding["shard_solves"] >= 1
