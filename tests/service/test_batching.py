"""CoalescingQueue on a fully controlled virtual clock."""

import pytest

from repro.service.batching import CoalescingQueue
from repro.service.state import JobDeparted


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_queue(**kwargs):
    clock = FakeClock()
    return CoalescingQueue(clock=clock, **kwargs), clock


class TestDueness:
    def test_empty_queue_never_due(self):
        q, _ = make_queue(max_delay=0.1)
        assert not q.due()
        assert q.seconds_until_due() is None
        assert q.drain() == []

    def test_batch_due_after_max_delay(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        assert not q.due()
        assert q.seconds_until_due() == pytest.approx(0.1)
        clock.now = 0.09
        assert not q.due()
        clock.now = 0.1
        assert q.due()
        assert q.seconds_until_due() == 0.0

    def test_age_measured_from_oldest_event(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        clock.now = 0.08
        q.push(JobDeparted("y"))  # newer event does not reset the deadline
        clock.now = 0.1
        assert q.due()

    def test_full_batch_due_immediately(self):
        q, _ = make_queue(max_delay=1e9, max_batch=3)
        for name in "abc":
            q.push(JobDeparted(name))
        assert q.due()
        assert q.seconds_until_due() == 0.0

    def test_zero_delay_means_every_event_due(self):
        q, _ = make_queue(max_delay=0.0)
        q.push(JobDeparted("x"))
        assert q.due()


class TestDrainAndStats:
    def test_drain_takes_everything_and_resets(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        q.push(JobDeparted("y"))
        batch = q.drain()
        assert [e.name for e in batch] == ["x", "y"]
        assert len(q) == 0 and not q.due()
        # the next push starts a fresh delay window
        clock.now = 5.0
        q.push(JobDeparted("z"))
        assert q.seconds_until_due() == pytest.approx(0.1)

    def test_stats_accumulate(self):
        q, _ = make_queue(max_delay=0.0)
        for size in (2, 3):
            for i in range(size):
                q.push(JobDeparted(f"j{size}-{i}"))
            q.drain()
        assert q.stats.batches == 2
        assert q.stats.events == 5
        assert q.stats.max_batch == 3
        assert q.stats.mean_batch == pytest.approx(2.5)
        assert q.stats.sizes == [2, 3]

    def test_empty_drain_not_counted(self):
        q, _ = make_queue()
        q.drain()
        assert q.stats.batches == 0


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CoalescingQueue(max_delay=-1.0)
        with pytest.raises(ValueError):
            CoalescingQueue(max_batch=0)


# -- net-effect folding -------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.model.job import Job  # noqa: E402
from repro.model.site import Site  # noqa: E402
from repro.service.batching import coalesce_batch  # noqa: E402
from repro.service.state import CapacityChanged, ClusterState, JobArrived  # noqa: E402

_SITES = ("a", "b")


def make_state(jobs=()):
    state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
    for job in jobs:
        state.add_job(job)
    return state


def fold(batch, state):
    return coalesce_batch(batch, has_job=state.has_job, known_sites=state.site_names)


def arrive(name, site="a"):
    return JobArrived(Job(name, {site: 1.0}))


class TestCoalesceBatch:
    def test_arrive_then_depart_vanishes(self):
        state = make_state()
        events, folded, rejections = fold([arrive("x"), JobDeparted("x")], state)
        assert events == [] and folded == 2 and rejections == []

    def test_last_capacity_wins(self):
        state = make_state()
        batch = [CapacityChanged("a", 1.0), CapacityChanged("a", 2.0), CapacityChanged("a", 3.0)]
        events, folded, _ = fold(batch, state)
        assert events == [CapacityChanged("a", 3.0)] and folded == 2

    def test_invalid_capacity_does_not_shadow_valid(self):
        state = make_state()
        batch = [CapacityChanged("a", 2.0), CapacityChanged("a", -1.0)]
        events, _, rejections = fold(batch, state)
        assert events == [CapacityChanged("a", 2.0)]
        assert rejections == ["site 'a': capacity must be positive and finite, got -1.0"]

    def test_present_job_cycle_becomes_replacement_pair(self):
        job = Job("x", {"a": 1.0})
        state = make_state([job])
        replacement = arrive("x", site="b")
        events, folded, rejections = fold([JobDeparted("x"), replacement], state)
        assert events == [JobDeparted("x"), replacement] and folded == 0 and rejections == []

    def test_duplicate_arrival_rejected_with_state_phrasing(self):
        state = make_state([Job("x", {"a": 1.0})])
        events, _, rejections = fold([arrive("x")], state)
        assert events == [] and rejections == ["job 'x' already present"]

    def test_unknown_site_arrival_rejected(self):
        state = make_state()
        events, _, rejections = fold([arrive("x", site="zz")], state)
        assert events == []
        assert rejections == ["job 'x' references unknown sites ['zz']"]

    def test_unknown_departure_rejected(self):
        state = make_state()
        _, _, rejections = fold([JobDeparted("ghost")], state)
        assert rejections == ["unknown job 'ghost'"]

    def test_unknown_capacity_site_rejected(self):
        state = make_state()
        _, _, rejections = fold([CapacityChanged("zz", 1.0)], state)
        assert rejections == ["unknown site 'zz'"]


@st.composite
def random_batches(draw):
    names = ["x", "y", "z"]
    initial = draw(st.sets(st.sampled_from(names)))
    events = []
    for _ in range(draw(st.integers(0, 12))):
        kind = draw(st.sampled_from(["arrive", "depart", "capacity"]))
        if kind == "arrive":
            name = draw(st.sampled_from(names))
            site = draw(st.sampled_from([*_SITES, "zz"]))
            events.append(JobArrived(Job(name, {site: draw(st.floats(0.1, 2.0))})))
        elif kind == "depart":
            events.append(JobDeparted(draw(st.sampled_from(names))))
        else:
            site = draw(st.sampled_from([*_SITES, "zz"]))
            cap = draw(st.sampled_from([1.0, 2.5, 0.0, -1.0, float("inf")]))
            events.append(CapacityChanged(site, cap))
    return sorted(initial), events


class TestFoldingEquivalence:
    """The folded batch must leave the state exactly where sequential
    application would — same snapshot, same rejection log."""

    @settings(max_examples=120, deadline=None)
    @given(random_batches())
    def test_net_effect_and_rejections_identical(self, script):
        initial, batch = script
        seed = [Job(n, {"a": 1.0}) for n in initial]
        sequential = make_state(seed)
        folded_state = make_state(seed)

        _, seq_rejections = sequential.apply_all(batch)
        events, folded, fold_rejections = fold(batch, folded_state)
        applied, late_rejections = folded_state.apply_all(events)

        assert late_rejections == []  # surviving events always apply cleanly
        assert fold_rejections == seq_rejections
        assert folded == len(batch) - len(events)
        assert folded_state.snapshot().fingerprint() == sequential.snapshot().fingerprint()
