"""CoalescingQueue on a fully controlled virtual clock."""

import pytest

from repro.service.batching import CoalescingQueue
from repro.service.state import JobDeparted


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_queue(**kwargs):
    clock = FakeClock()
    return CoalescingQueue(clock=clock, **kwargs), clock


class TestDueness:
    def test_empty_queue_never_due(self):
        q, _ = make_queue(max_delay=0.1)
        assert not q.due()
        assert q.seconds_until_due() is None
        assert q.drain() == []

    def test_batch_due_after_max_delay(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        assert not q.due()
        assert q.seconds_until_due() == pytest.approx(0.1)
        clock.now = 0.09
        assert not q.due()
        clock.now = 0.1
        assert q.due()
        assert q.seconds_until_due() == 0.0

    def test_age_measured_from_oldest_event(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        clock.now = 0.08
        q.push(JobDeparted("y"))  # newer event does not reset the deadline
        clock.now = 0.1
        assert q.due()

    def test_full_batch_due_immediately(self):
        q, _ = make_queue(max_delay=1e9, max_batch=3)
        for name in "abc":
            q.push(JobDeparted(name))
        assert q.due()
        assert q.seconds_until_due() == 0.0

    def test_zero_delay_means_every_event_due(self):
        q, _ = make_queue(max_delay=0.0)
        q.push(JobDeparted("x"))
        assert q.due()


class TestDrainAndStats:
    def test_drain_takes_everything_and_resets(self):
        q, clock = make_queue(max_delay=0.1)
        q.push(JobDeparted("x"))
        q.push(JobDeparted("y"))
        batch = q.drain()
        assert [e.name for e in batch] == ["x", "y"]
        assert len(q) == 0 and not q.due()
        # the next push starts a fresh delay window
        clock.now = 5.0
        q.push(JobDeparted("z"))
        assert q.seconds_until_due() == pytest.approx(0.1)

    def test_stats_accumulate(self):
        q, _ = make_queue(max_delay=0.0)
        for size in (2, 3):
            for i in range(size):
                q.push(JobDeparted(f"j{size}-{i}"))
            q.drain()
        assert q.stats.batches == 2
        assert q.stats.events == 5
        assert q.stats.max_batch == 3
        assert q.stats.mean_batch == pytest.approx(2.5)
        assert q.stats.sizes == [2, 3]

    def test_empty_drain_not_counted(self):
        q, _ = make_queue()
        q.drain()
        assert q.stats.batches == 0


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CoalescingQueue(max_delay=-1.0)
        with pytest.raises(ValueError):
            CoalescingQueue(max_batch=0)
