"""AllocationService: the full pipeline on a virtual clock."""

import numpy as np
import pytest

from repro.core.amf import solve_amf
from repro.model.job import Job
from repro.model.site import Site
from repro.service.daemon import AllocationService
from repro.service.state import CapacityChanged, ClusterState, JobArrived, JobDeparted


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_service(**kwargs):
    clock = FakeClock()
    state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
    service = AllocationService(state, clock=clock, **kwargs)
    return service, clock


class TestServing:
    def test_empty_cluster_served_without_solving(self):
        service, _ = make_service()
        served = service.allocation()
        assert served.allocation.policy == "empty"
        assert served.cached and served.seconds == 0.0
        assert service.solve_stats.solves == 0

    def test_fresh_allocation_applies_pending_events(self):
        service, _ = make_service(max_delay=1e9)  # batch never due by time
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        service.submit(JobArrived(Job("y", {"b": 1.0})))
        served = service.allocation(fresh=True)
        assert not served.cached
        assert served.allocation.policy == "amf-incremental"
        names = [j.name for j in served.allocation.cluster.jobs]
        agg = dict(zip(names, served.allocation.aggregates))
        assert agg["x"] == pytest.approx(2.0)
        assert agg["y"] == pytest.approx(3.0)

    def test_passive_read_respects_batch_delay(self):
        service, clock = make_service(max_delay=10.0)
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        served = service.allocation(fresh=False)  # batch not due yet
        assert served.allocation.cluster.n_jobs == 0
        clock.now = 10.0
        served = service.allocation(fresh=False)
        assert served.allocation.cluster.n_jobs == 1

    def test_repeat_reads_hit_the_cache(self):
        service, _ = make_service()
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        first = service.allocation()
        second = service.allocation()
        assert not first.cached and second.cached
        assert second.fingerprint == first.fingerprint
        assert service.solve_stats.solves == 1
        np.testing.assert_allclose(second.allocation.matrix, first.allocation.matrix)

    def test_matches_cold_solver(self):
        service, _ = make_service()
        jobs = [Job("x", {"a": 1.0}), Job("y", {"a": 1.0, "b": 1.0}), Job("z", {"b": 2.0})]
        service.submit_all([JobArrived(j) for j in jobs])
        served = service.allocation()
        oracle = solve_amf(served.allocation.cluster)
        np.testing.assert_allclose(served.allocation.aggregates, oracle.aggregates, atol=1e-8)

    def test_departure_and_capacity_change_resolve(self):
        service, _ = make_service()
        service.submit_all([JobArrived(Job("x", {"a": 1.0})), JobArrived(Job("y", {"a": 1.0}))])
        v1 = service.allocation().version
        service.submit(JobDeparted("x"))
        service.submit(CapacityChanged("a", 4.0))
        served = service.allocation()
        assert served.version > v1
        assert [j.name for j in served.allocation.cluster.jobs] == ["y"]
        assert served.allocation.aggregates[0] == pytest.approx(4.0)


class TestPipelineAccounting:
    def test_rejections_logged_not_fatal(self):
        service, _ = make_service()
        service.submit_all([JobArrived(Job("x", {"a": 1.0})), JobDeparted("ghost")])
        served = service.allocation()
        assert served.allocation.cluster.n_jobs == 1
        assert len(service.rejections) == 1 and "ghost" in service.rejections[0]

    def test_stats_shape(self):
        service, _ = make_service()
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        service.allocation()
        service.allocation()
        stats = service.stats()
        assert set(stats) >= {"state", "solver", "incremental", "cache", "batching", "resilience"}
        assert stats["state"]["jobs"] == 1
        assert stats["solver"]["solves"] == 1
        assert stats["incremental"]["solves"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["batching"]["batches"] == 1
        assert stats["resilience"]["fallback_activations"] == 0
        import json

        json.dumps(stats)  # must be JSON-serializable for /stats

    def test_warm_start_reuses_cuts_across_churn(self):
        service, _ = make_service()
        service.submit_all(
            [JobArrived(Job(f"j{i}", {"a": 1.0, "b": 0.5}, demand={"b": 0.5})) for i in range(4)]
        )
        service.allocation()
        cuts_before = service.incremental.stats.cuts_generated
        # churn one job in and out; the bottleneck site set persists
        service.submit(JobArrived(Job("late", {"a": 1.0})))
        service.allocation()
        service.submit(JobDeparted("late"))
        service.allocation()
        # The departure returns the cluster to an already-seen fingerprint,
        # so the third read is a cache hit, not a solve.
        assert service.incremental.stats.solves == 2
        assert service.cache.stats.hits == 1
        assert service.incremental.stats.cuts_generated <= cuts_before + 1
        assert service.incremental.stats.warm_cuts_seeded > 0

    def test_fallback_chain_engages_on_solver_failure(self):
        service, _ = make_service()

        def broken(cluster):
            raise RuntimeError("boom")

        broken.__name__ = "broken"
        service.policy._chain[0] = ("broken", broken)  # simulate a dying primary
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        served = service.allocation()
        assert served.allocation.policy == "amf"
        assert service.resilience.fallback_activations == 1


class TestValidation:
    def test_rejects_empty_state(self):
        with pytest.raises(ValueError):
            ClusterState([])


class TestAccountingRegressions:
    """Pinning tests for the PR-9 service-edge bugfix sweep."""

    def test_rejection_counter_does_not_saturate(self):
        # the bounded log caps at max_rejections, but the monotonic
        # counters must keep counting (long-running daemons used to
        # under-report rejections once the log filled)
        service, _ = make_service()
        service.max_rejections = 2
        service.submit_all([JobDeparted(f"ghost{i}") for i in range(5)])
        service.flush(force=True)
        assert service.events_rejected == 5
        assert len(service.rejections) == 2
        assert service.rejections_dropped == 3
        stats = service.stats()["state"]
        assert stats["events_rejected"] == 5
        assert stats["rejections_logged"] == 2
        assert stats["rejections_dropped"] == 3

    def test_submit_all_partial_failure_accounting(self):
        # a push raising mid-sequence must still count the events that
        # made it in (events_accepted used to come up short)
        service, _ = make_service()
        real_push = service.queue.push
        calls = {"n": 0}

        def flaky_push(event):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("queue blew up")
            return real_push(event)

        service.queue.push = flaky_push
        events = [JobArrived(Job(f"j{i}", {"a": 1.0})) for i in range(4)]
        with pytest.raises(RuntimeError, match="queue blew up"):
            service.submit_all(events)
        assert service.events_accepted == 2
        service.queue.push = real_push
        # the daemon keeps working after the failed request
        service.submit(JobArrived(Job("late", {"b": 1.0})))
        assert service.allocation().allocation.cluster.n_jobs == 3

    def test_uptime_uses_injected_clock(self):
        # uptime came from time.time() while everything else used the
        # injected clock: frozen-clock tests saw nonzero, wall-dependent
        # uptimes
        service, clock = make_service()
        assert service.stats()["uptime_seconds"] == 0.0
        clock.now = 5.0
        assert service.stats()["uptime_seconds"] == 5.0
