"""HTTP front-end: real requests against an in-process ServiceServer."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.site import Site
from repro.service.daemon import AllocationService
from repro.service.http import ServiceServer, job_from_dict
from repro.service.state import ClusterState


@pytest.fixture
def server():
    state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
    service = AllocationService(state, max_delay=0.005)
    srv = ServiceServer(service, port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def call(srv, method: str, path: str, body: dict | None = None):
    url = f"http://127.0.0.1:{srv.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestEndpoints:
    def test_health(self, server):
        status, payload = call(server, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["sites"] == 2 and payload["jobs"] == 0

    def test_allocate_round_trip(self, server):
        status, payload = call(
            server,
            "POST",
            "/allocate",
            {
                "jobs": [
                    {"name": "x", "workload": {"a": 1.0}},
                    {"name": "y", "workload": {"b": 1.0}},
                ]
            },
        )
        assert status == 200
        assert payload["queued_jobs"] == ["x", "y"]
        assert payload["policy"] == "amf-incremental"
        assert payload["jobs"]["x"]["aggregate"] == pytest.approx(2.0)
        assert payload["jobs"]["y"]["aggregate"] == pytest.approx(3.0)
        assert payload["jobs"]["x"]["shares"] == {"a": pytest.approx(2.0)}
        # an immediate repeat is served from the cache
        status, payload = call(server, "POST", "/allocate")
        assert status == 200 and payload["cached"] is True

    def test_jobs_get_reports_current_allocation(self, server):
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        status, payload = call(server, "GET", "/jobs")
        assert status == 200
        assert set(payload["jobs"]) == {"x"}

    def test_post_jobs_queues_without_solving(self, server):
        status, payload = call(server, "POST", "/jobs", {"name": "q", "workload": {"a": 1.0}})
        assert status == 202
        assert payload["queued_jobs"] == ["q"]

    def test_delete_job(self, server):
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        status, _ = call(server, "DELETE", "/jobs/x")
        assert status == 202
        status, payload = call(server, "POST", "/allocate")
        assert status == 200
        assert payload["jobs"] == {}

    def test_capacity_change(self, server):
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        status, _ = call(server, "POST", "/capacity", {"site": "a", "capacity": 4.0})
        assert status == 202
        status, payload = call(server, "POST", "/allocate")
        assert payload["jobs"]["x"]["aggregate"] == pytest.approx(4.0)

    def test_stats_counters_move(self, server):
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        call(server, "POST", "/allocate")
        status, payload = call(server, "GET", "/stats")
        assert status == 200
        assert payload["solver"]["solves"] == 1
        assert payload["cache"]["hits"] >= 1
        assert payload["state"]["events_accepted"] == 1

    def test_background_flusher_applies_batches(self, server):
        call(server, "POST", "/jobs", {"name": "bg", "workload": {"a": 1.0}})
        deadline = threading.Event()
        for _ in range(200):  # max_delay is 5 ms; poll up to ~2 s
            _, payload = call(server, "GET", "/health")
            if payload["jobs"] == 1:
                break
            deadline.wait(0.01)
        assert payload["jobs"] == 1


class TestErrors:
    def test_unknown_path_404(self, server):
        status, payload = call(server, "GET", "/nope")
        assert status == 404 and "error" in payload

    def test_malformed_job_400(self, server):
        status, payload = call(server, "POST", "/jobs", {"workload": {"a": 1.0}})
        assert status == 400 and "error" in payload

    def test_malformed_json_400(self, server):
        url = f"http://127.0.0.1:{server.port}/jobs"
        req = urllib.request.Request(url, data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_capacity_requires_fields(self, server):
        status, _ = call(server, "POST", "/capacity", {"site": "a"})
        assert status == 400


class TestWireFormat:
    def test_job_from_dict_full(self):
        job = job_from_dict(
            {"name": "j", "workload": {"a": 2}, "demand": {"a": 0.5}, "weight": 2.0, "arrival": 1.5}
        )
        assert job.name == "j" and job.workload == {"a": 2.0}
        assert job.demand == {"a": 0.5} and job.weight == 2.0 and job.arrival == 1.5

    def test_job_from_dict_requires_name_and_workload(self):
        with pytest.raises(ValueError):
            job_from_dict({"name": "j"})


class TestPassiveAllocate:
    def test_get_allocate_fresh_false_serves_last_answer(self, server):
        call(server, "POST", "/allocate", {"jobs": [{"name": "x", "workload": {"a": 1.0}}]})
        status, payload = call(server, "GET", "/v1/allocate?fresh=false")
        assert status == 200
        assert set(payload["jobs"]) == {"x"}

    def test_get_allocate_fresh_true_forces_pending_batch(self, server):
        call(server, "POST", "/jobs", {"jobs": [{"name": "x", "workload": {"a": 1.0}}]})
        status, payload = call(server, "GET", "/v1/allocate?fresh=true")
        assert status == 200
        assert set(payload["jobs"]) == {"x"}

    def test_get_allocate_rejects_bad_flag(self, server):
        status, payload = call(server, "GET", "/v1/allocate?fresh=perhaps")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"


class TestFlusherResilience:
    def test_flusher_survives_a_poisoned_flush(self, server):
        # one raising flush() must not kill the background flusher (it
        # used to die silently, stranding every future batch)
        from repro.obs.instruments import FLUSH_ERRORS
        from repro.obs.registry import REGISTRY

        service = server.service
        real_flush = service.flush
        blew = threading.Event()

        def poisoned_flush(**kwargs):
            if not blew.is_set():
                blew.set()
                raise RuntimeError("poisoned batch")
            return real_flush(**kwargs)

        was_enabled, errors_before = REGISTRY.enabled, FLUSH_ERRORS.value
        REGISTRY.enabled = True
        service.flush = poisoned_flush
        try:
            status, _ = call(server, "POST", "/jobs", {"jobs": [{"name": "x", "workload": {"a": 1.0}}]})
            assert status == 202
            assert blew.wait(timeout=5.0)
            # the flusher kept running: the queued job still lands
            deadline = 100
            while deadline:
                _, listing = call(server, "GET", "/jobs")
                if listing["pagination"]["total"] == 1:
                    break
                deadline -= 1
                threading.Event().wait(0.02)
            assert set(listing["jobs"]) == {"x"}
            assert FLUSH_ERRORS.value >= errors_before + 1
        finally:
            service.flush = real_flush
            REGISTRY.enabled = was_enabled


class TestShutdownRace:
    def test_inflight_writes_get_answer_or_503(self):
        state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
        service = AllocationService(state, max_delay=0.005)
        srv = ServiceServer(service, port=0, quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        results, errors = [], []
        start = threading.Barrier(9)

        def fire(i):
            start.wait()
            for n in range(10):
                try:
                    status, _ = call(
                        srv, "POST", "/jobs", {"jobs": [{"name": f"w{i}-{n}", "workload": {"a": 1.0}}]}
                    )
                    results.append(status)
                except (urllib.error.URLError, ConnectionError, OSError) as exc:
                    errors.append(exc)
                    return

        workers = [threading.Thread(target=fire, args=(i,)) for i in range(8)]
        for w in workers:
            w.start()
        start.wait()
        service.close()  # the serve() teardown order: service first
        srv.shutdown()
        for w in workers:
            w.join(timeout=30)
        thread.join(timeout=5)
        assert not any(w.is_alive() for w in workers)
        # a write either landed fully (202) or bounced whole (503)
        assert set(results) <= {202, 503}
        assert (
            service.events_accepted
            == service.state.version + service.events_rejected + service.queue.stats.folded
        )
