"""Resource-vector v1 surface on both HTTP edges.

Two promises under test, on the thread edge and the asyncio edge alike:

* **canonical back-compat** — a request spelled with scalars and the same
  request spelled with ``{"slots": x}`` vectors produce *byte-identical*
  ``/v1`` responses (same fingerprints, same cache keys, same JSON);
* **multi-resource serving** — vector clusters allocate end-to-end through
  ``/v1/allocate``, and resource-shape violations answer 400 with the new
  ``resource_mismatch`` / ``unknown_resource`` error codes.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.site import Site
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.service.aio import AioServiceServer
from repro.service.daemon import AllocationService
from repro.service.http import ServiceServer
from repro.service.state import ClusterState

EDGES = ("thread", "aio")


def start_server(kind: str, sites):
    service = AllocationService(ClusterState(sites), max_delay=0.005)
    if kind == "thread":
        srv = ServiceServer(service, port=0, quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()

        def stop():
            srv.shutdown()
            thread.join(timeout=5)

        return srv, stop
    srv = AioServiceServer(service, port=0, quiet=True).start()
    return srv, srv.shutdown


def scalar_sites():
    return [Site("a", 2.0), Site("b", 3.0)]


def vector_sites():
    return [Site("a", {"cpu": 8.0, "mem": 16.0}), Site("b", {"cpu": 4.0, "mem": 32.0})]


@pytest.fixture(autouse=True)
def _clean_obs():
    # The AMRF table cache is process-global; identical fixture clusters
    # across tests would otherwise serve each other's tables and make
    # per-test amrf_lps counters nondeterministic.
    from repro.multiresource import global_table_cache

    REGISTRY.reset()
    TRACER.clear()
    global_table_cache().clear()
    yield


def request_raw(srv, method: str, path: str, body: dict | None = None) -> tuple[int, bytes]:
    url = f"http://127.0.0.1:{srv.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def call(srv, method: str, path: str, body: dict | None = None):
    status, raw = request_raw(srv, method, path, body)
    return status, json.loads(raw.decode())


@pytest.mark.parametrize("kind", EDGES)
class TestCanonicalByteIdentity:
    def test_slots_spelling_is_byte_identical(self, kind):
        """Same traffic, scalar vs ``{"slots": x}`` spelling, two servers:
        every byte of the cache-hit allocation and the jobs listing match."""
        spellings = [
            {"demand": {"a": 1.5}, "capacity": 4.0},
            {"demand": {"a": {"slots": 1.5}}, "capacity": {"slots": 4.0}},
        ]
        bodies = []
        for spelled in spellings:
            srv, stop = start_server(kind, scalar_sites())
            try:
                status, _ = call(
                    srv,
                    "POST",
                    "/v1/allocate",
                    {"name": "x", "workload": {"a": 2.0, "b": 1.0}, "demand": spelled["demand"]},
                )
                assert status == 200
                status, _ = call(srv, "POST", "/v1/capacity", {"site": "b", "capacity": spelled["capacity"]})
                assert status == 202
                # absorb the capacity change, then hit the allocation
                # cache: the replayed payload has solve_ms pinned to 0,
                # so every byte is deterministic
                status, _ = call(srv, "POST", "/v1/allocate", {})
                assert status == 200
                status, hit = request_raw(srv, "POST", "/v1/allocate", {})
                assert status == 200
                assert json.loads(hit.decode())["cached"] is True
                status, jobs = request_raw(srv, "GET", "/v1/jobs")
                assert status == 200
                bodies.append((hit, jobs))
            finally:
                stop()
        assert bodies[0] == bodies[1]

    def test_explicit_slots_resources_field_is_canonical(self, kind):
        srv, stop = start_server(kind, scalar_sites())
        try:
            status, plain = call(
                srv, "POST", "/v1/allocate", {"name": "x", "workload": {"a": 1.0}}
            )
            assert status == 200
            status, _ = call(srv, "DELETE", "/v1/jobs/x")
            assert status == 202
            status, spelled = call(
                srv,
                "POST",
                "/v1/allocate",
                {"name": "x", "workload": {"a": 1.0}, "resources": {"slots": 1.0}},
            )
            assert status == 200
            assert spelled["fingerprint"] == plain["fingerprint"]
            assert spelled["jobs"] == plain["jobs"]
        finally:
            stop()


@pytest.mark.parametrize("kind", EDGES)
class TestMultiResourceServing:
    def test_vector_allocate_end_to_end(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, _ = call(
                srv,
                "POST",
                "/v1/jobs",
                {
                    "name": "j0",
                    "workload": {"a": 100.0, "b": 100.0},
                    "resources": {"cpu": 1.0, "mem": 4.0},
                },
            )
            assert status == 202
            status, payload = call(
                srv,
                "POST",
                "/v1/allocate",
                {
                    "name": "j1",
                    "workload": {"a": 100.0, "b": 100.0},
                    "resources": {"cpu": 4.0, "mem": 1.0},
                },
            )
            assert status == 200
            aggs = {name: j["aggregate"] for name, j in payload["jobs"].items()}
            assert aggs["j0"] > 0.0 and aggs["j1"] > 0.0
            status, stats = call(srv, "GET", "/v1/stats")
            assert status == 200
            assert stats["incremental"]["amrf_lps"] >= 1
        finally:
            stop()

    def test_vector_demand_converts_to_task_cap(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, payload = call(
                srv,
                "POST",
                "/v1/allocate",
                {
                    "name": "j",
                    "workload": {"a": 100.0},
                    "demand": {"a": {"cpu": 2.0, "mem": 8.0}},
                    "resources": {"cpu": 1.0, "mem": 4.0},
                },
            )
            # cap = min(2/1, 8/4) = 2 tasks; alone on site a that binds
            assert status == 200
            assert payload["jobs"]["j"]["aggregate"] == pytest.approx(2.0, abs=1e-6)
        finally:
            stop()

    def test_vector_capacity_update(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, _ = call(
                srv,
                "POST",
                "/v1/capacity",
                {"site": "a", "capacity": {"cpu": 16.0, "mem": 32.0}},
            )
            assert status == 202
            status, payload = call(
                srv,
                "POST",
                "/v1/allocate",
                {"name": "j", "workload": {"a": 100.0}, "resources": {"cpu": 1.0, "mem": 1.0}},
            )
            assert status == 200
            assert payload["jobs"]["j"]["aggregate"] == pytest.approx(16.0, abs=1e-5)
        finally:
            stop()


@pytest.mark.parametrize("kind", EDGES)
class TestResourceErrorCodes:
    def test_unknown_resource_is_400(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, payload = call(
                srv,
                "POST",
                "/v1/allocate",
                {"name": "j", "workload": {"a": 1.0}, "resources": {"gpu": 1.0}},
            )
            assert status == 400
            assert payload["error"]["code"] == "unknown_resource"
            assert "gpu" in payload["error"]["message"]
        finally:
            stop()

    def test_capacity_resource_mismatch_is_400(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, payload = call(
                srv, "POST", "/v1/capacity", {"site": "a", "capacity": {"cpu": 9.0}}
            )
            assert status == 400
            assert payload["error"]["code"] == "resource_mismatch"
        finally:
            stop()

    def test_scalar_capacity_on_vector_site_is_mismatch(self, kind):
        srv, stop = start_server(kind, vector_sites())
        try:
            status, payload = call(
                srv, "POST", "/v1/capacity", {"site": "a", "capacity": 5.0}
            )
            assert status == 400
            assert payload["error"]["code"] == "resource_mismatch"
        finally:
            stop()

    def test_demand_map_mismatch_is_400(self, kind):
        srv, stop = start_server(kind, scalar_sites())
        try:
            status, payload = call(
                srv,
                "POST",
                "/v1/allocate",
                {"name": "j", "workload": {"a": 1.0}, "demand": {"a": {"cpu": 1.0}}},
            )
            assert status == 400
            assert payload["error"]["code"] == "resource_mismatch"
        finally:
            stop()

    def test_rejected_event_never_reaches_the_journal(self, kind, tmp_path):
        """Fail-synchronous admission: the WAL stays free of doomed events."""
        from repro.service.journal import open_journal

        state, journal, _rec = open_journal(tmp_path, fallback_state=ClusterState(vector_sites()))
        service = AllocationService(state, max_delay=0.005, journal=journal)
        if kind == "thread":
            srv = ServiceServer(service, port=0, quiet=True)
            thread = threading.Thread(target=srv.serve_forever, daemon=True)
            thread.start()
            stop = lambda: (srv.shutdown(), thread.join(timeout=5))
        else:
            srv = AioServiceServer(service, port=0, quiet=True).start()
            stop = srv.shutdown
        try:
            status, _ = call(
                srv,
                "POST",
                "/v1/jobs",
                {"name": "bad", "workload": {"a": 1.0}, "resources": {"gpu": 1.0}},
            )
            assert status == 400
            text = "".join(p.read_text() for p in tmp_path.glob("*.jsonl"))
            assert "bad" not in text
        finally:
            stop()


class TestSpecAdvertisesVectors:
    def test_spec_schema_version_and_codes(self):
        srv, stop = start_server("thread", scalar_sites())
        try:
            status, spec = call(srv, "GET", "/v1/spec")
            assert status == 200
            assert spec["schema_version"] == 2
            codes = spec["error_envelope"]["codes"]
            assert "resource_mismatch" in codes
            assert "unknown_resource" in codes
            job_fields = spec["schemas"]["JobSpec"]
            assert "resources" in job_fields
            assert "resource" in job_fields["demand"]  # dual form documented
        finally:
            stop()
