"""Asyncio edge: route parity with the thread edge, admission, shutdown races."""

import json
import math
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.site import Site
from repro.service.aio import AioServiceServer
from repro.service.daemon import AllocationService
from repro.service.http import ServiceServer
from repro.service.state import ClusterState


def make_service(**kwargs):
    state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
    kwargs.setdefault("max_delay", 0.005)
    return AllocationService(state, **kwargs)


@pytest.fixture
def server():
    srv = AioServiceServer(make_service(), port=0, quiet=True).start()
    yield srv
    srv.shutdown()


def call(srv, method: str, path: str, body: dict | None = None):
    """(status, payload, headers) against a live edge."""
    url = f"http://127.0.0.1:{srv.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), dict(exc.headers)


JOBS = {"jobs": [{"name": "x", "workload": {"a": 1.0}}, {"name": "y", "workload": {"b": 1.0}}]}


def raw_request(srv, payload: bytes) -> bytes:
    """Send raw bytes, read until the server closes the connection."""
    with socket.create_connection(("127.0.0.1", srv.port), timeout=10) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                return b"".join(chunks)
            chunks.append(data)


class TestReadEndpoints:
    def test_health(self, server):
        status, payload, _ = call(server, "GET", "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["sites"] == 2 and payload["jobs"] == 0

    def test_stats_reports_edge_and_admission(self, server):
        status, payload, _ = call(server, "GET", "/v1/stats")
        assert status == 200
        assert payload["edge"] == "aio"
        adm = payload["admission"]
        assert adm["max_pending"] == 1024 and adm["shed"] == 0

    def test_passive_allocate_serves_published_view(self, server):
        status, payload, _ = call(server, "GET", "/v1/allocate?fresh=false")
        assert status == 200
        assert payload["version"] == 0 and payload["jobs"] == {}

    def test_fresh_flag_rejects_garbage(self, server):
        status, payload, _ = call(server, "GET", "/v1/allocate?fresh=sometimes")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_metrics_prometheus(self, server):
        url = f"http://127.0.0.1:{server.port}/v1/metrics"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")

    def test_legacy_alias_carries_deprecation_headers(self, server):
        status, _, headers = call(server, "GET", "/health")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert "/v1/health" in headers.get("Link", "")

    def test_spec_is_versioned_only(self, server):
        status, payload, _ = call(server, "GET", "/v1/spec")
        assert status == 200 and "routes" in payload
        status, _, _ = call(server, "GET", "/spec")
        assert status == 404

    def test_unknown_route_envelope(self, server):
        status, payload, _ = call(server, "GET", "/v1/nope")
        assert status == 404
        assert set(payload["error"]) >= {"code", "message"}


class TestWriteEndpoints:
    def test_submit_then_list_jobs(self, server):
        status, payload, _ = call(server, "POST", "/v1/jobs", JOBS)
        assert status == 202
        assert payload["pending_events"] >= 0
        assert payload["queued_jobs"] == ["x", "y"]
        # the solver publishes the post-write view before resolving the
        # future, so a follow-up read sees the jobs once flushed
        deadline = 50
        while deadline:
            _, listing, _ = call(server, "GET", "/v1/jobs")
            if listing["pagination"]["total"] == 2:
                break
            deadline -= 1
            threading.Event().wait(0.02)
        assert set(listing["jobs"]) == {"x", "y"}

    def test_allocate_round_trip(self, server):
        status, payload, _ = call(server, "POST", "/v1/allocate", JOBS)
        assert status == 200
        assert set(payload["jobs"]) == {"x", "y"}
        assert payload["queued_jobs"] == ["x", "y"]

    def test_delete_job(self, server):
        call(server, "POST", "/v1/allocate", JOBS)
        status, payload, _ = call(server, "DELETE", "/v1/jobs/x")
        assert status == 202
        status, payload, _ = call(server, "DELETE", "/v1/jobs/ghost")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_bad_body_is_400(self, server):
        status, payload, _ = call(server, "POST", "/v1/jobs", {"jobs": [{"name": "x"}]})
        assert status == 400

    def test_capacity_update(self, server):
        status, payload, _ = call(server, "POST", "/v1/capacity", {"site": "a", "capacity": 9.0})
        assert status == 202


class TestParityWithThreadEdge:
    def test_allocation_payloads_match(self):
        """Both edges compute the same answer for the same history."""
        aio = AioServiceServer(make_service(), port=0, quiet=True).start()
        thr_srv = ServiceServer(make_service(), port=0, quiet=True)
        thread = threading.Thread(target=thr_srv.serve_forever, daemon=True)
        thread.start()
        try:
            _, from_aio, _ = call(aio, "POST", "/v1/allocate", JOBS)
            _, from_thr, _ = call(thr_srv, "POST", "/v1/allocate", JOBS)
            for volatile in ("solve_ms", "cached", "queued_jobs"):
                from_aio.pop(volatile, None)
                from_thr.pop(volatile, None)
            assert from_aio == from_thr
            _, health_aio, _ = call(aio, "GET", "/v1/health")
            _, health_thr, _ = call(thr_srv, "GET", "/v1/health")
            assert health_aio == health_thr
        finally:
            aio.shutdown()
            thr_srv.shutdown()
            thread.join(timeout=5)


class TestAdmission:
    def test_full_intake_sheds_with_retry_after(self):
        srv = AioServiceServer(make_service(), port=0, max_pending=0, quiet=True).start()
        try:
            status, payload, headers = call(srv, "POST", "/v1/jobs", JOBS)
            assert status == 429
            assert payload["error"]["code"] == "too_many_requests"
            retry = payload["error"]["detail"]["retry_after_seconds"]
            assert retry > 0
            assert int(headers["Retry-After"]) == max(1, math.ceil(retry))
            # reads are never shed
            status, _, _ = call(srv, "GET", "/v1/health")
            assert status == 200
            # /v1/stats serves the published snapshot (which predates the
            # shed); the live counters update immediately
            assert srv.admission_stats()["shed"] == 1
            assert srv.admission_stats()["admitted"] == 0
        finally:
            srv.shutdown()

    def test_retry_after_floor_and_backlog_scaling(self):
        service = make_service(max_delay=0.05)
        srv = AioServiceServer(service, max_pending=0, retry_floor=0.1)
        # no published view yet: p50 falls back to the coalescing delay,
        # backlog is the single incoming request -> the floor wins
        assert srv._retry_after() == pytest.approx(0.1)
        slow = AioServiceServer(make_service(max_delay=0.5), max_pending=0, retry_floor=0.1)
        assert slow._retry_after() == pytest.approx(0.5)


class TestMalformedRequests:
    def test_malformed_content_length_is_400(self, server):
        # int('abc') must surface as a 400 envelope, not a silent drop +
        # an unhandled task exception in the event loop
        raw = raw_request(
            server,
            b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: abc\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"bad_request" in raw and b"Content-Length" in raw
        assert b"Connection: close" in raw

    def test_header_flood_is_431(self, server):
        # the threaded edge inherits http.client's 100-header cap; the
        # asyncio edge must bound header count the same way
        flood = b"".join(b"X-Flood-%d: v\r\n" % i for i in range(150))
        raw = raw_request(server, b"GET /v1/health HTTP/1.1\r\n" + flood + b"\r\n")
        assert raw.startswith(b"HTTP/1.1 431 ")
        assert b"headers_too_large" in raw

    def test_idle_keepalive_timeout_drops_connection(self):
        # idle_timeout governs the between-requests readline; the served
        # response still arrives, then the connection closes silently
        srv = AioServiceServer(
            make_service(), port=0, quiet=True, request_timeout=30.0, idle_timeout=0.1
        ).start()
        try:
            raw = raw_request(srv, b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 200 ")  # EOF followed within ~0.1s
        finally:
            srv.shutdown()


class TestShutdownRace:
    def test_inflight_writes_get_answer_or_503(self):
        """Writes racing shutdown() either land fully or bounce as 503 —
        the accounting invariant rules out partial mutation."""
        service = make_service()
        srv = AioServiceServer(service, port=0, quiet=True).start()
        results = []
        errors = []
        start = threading.Barrier(9)

        def fire(i):
            start.wait()
            for n in range(10):
                try:
                    status, _, _ = call(srv, "POST", "/v1/jobs",
                                        {"jobs": [{"name": f"w{i}-{n}", "workload": {"a": 1.0}}]})
                    results.append(status)
                except (urllib.error.URLError, ConnectionError, OSError) as exc:
                    errors.append(exc)
                    return

        workers = [threading.Thread(target=fire, args=(i,)) for i in range(8)]
        for w in workers:
            w.start()
        start.wait()
        srv.shutdown()
        for w in workers:
            w.join(timeout=30)
        assert not any(w.is_alive() for w in workers)
        assert set(results) <= {202, 503}
        # every accepted event is either applied or folded away - nothing
        # half-applied, nothing lost
        assert service.closed
        assert (
            service.events_accepted
            == service.state.version + service.events_rejected + service.queue.stats.folded
        )

    def test_shutdown_is_idempotent_and_closes_service(self, server):
        service = server.service
        server.shutdown()
        server.shutdown()
        assert service.closed
        with pytest.raises(urllib.error.URLError):
            call(server, "GET", "/v1/health")
