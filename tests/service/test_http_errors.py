"""HTTP error paths: exact status codes, liveness after failures, the
/metrics <-> /stats cross-check, and a wire-format round-trip property.

Regression suite for two service-edge bugs: non-finite numbers slipping
through validation (json.loads happily parses ``Infinity``/``NaN``
literals), and ``DELETE /jobs/<name>`` neither URL-decoding the name nor
distinguishing "unknown job" (404) from a server fault (500)."""

import http.client
import json
import threading
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.site import Site
from repro.obs.registry import REGISTRY, parse_prometheus
from repro.obs.tracing import TRACER
from repro.service.daemon import AllocationService
from repro.service.http import MAX_BODY_BYTES, ServiceServer, job_from_dict
from repro.service.state import ClusterState, StateError


@pytest.fixture
def server():
    # fresh instrument totals so /metrics can be compared against /stats
    REGISTRY.reset()
    TRACER.clear()
    state = ClusterState([Site("a", 2.0), Site("b", 3.0)])
    service = AllocationService(state, max_delay=0.005)
    srv = ServiceServer(service, port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def call(srv, method: str, path: str, body: dict | None = None, raw: bytes | None = None):
    url = f"http://127.0.0.1:{srv.port}{path}"
    data = raw if raw is not None else (json.dumps(body).encode() if body is not None else None)
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def assert_alive(srv):
    status, payload = call(srv, "GET", "/health")
    assert status == 200 and payload["status"] == "ok"


class TestMalformedBodies:
    def test_invalid_json_400(self, server):
        status, payload = call(server, "POST", "/jobs", raw=b"{not json")
        assert status == 400 and "error" in payload
        assert_alive(server)

    def test_non_object_body_400(self, server):
        status, payload = call(server, "POST", "/jobs", raw=b"[1, 2, 3]")
        assert status == 400 and "object" in payload["error"]["message"]
        assert_alive(server)

    def test_non_numeric_workload_400(self, server):
        status, payload = call(
            server, "POST", "/jobs", {"name": "j", "workload": {"a": "lots"}}
        )
        assert status == 400 and "malformed job" in payload["error"]["message"]
        assert_alive(server)

    def test_workload_not_a_mapping_400(self, server):
        status, _ = call(server, "POST", "/jobs", {"name": "j", "workload": [1.0]})
        assert status == 400
        assert_alive(server)


class TestNonFiniteInputs:
    """json.loads parses Infinity/NaN literals, so these reach the handler
    as real floats and must be rejected there -- not crash the solver."""

    @pytest.mark.parametrize("value", ["Infinity", "-Infinity", "NaN"])
    def test_non_finite_workload_400(self, server, value):
        raw = b'{"name": "j", "workload": {"a": %s}}' % value.encode()
        status, payload = call(server, "POST", "/jobs", raw=raw)
        assert status == 400 and "finite" in payload["error"]["message"]
        assert_alive(server)

    @pytest.mark.parametrize("field", ["weight", "arrival"])
    def test_non_finite_scalar_fields_400(self, server, field):
        raw = json.dumps({"name": "j", "workload": {"a": 1.0}, field: float("nan")}).encode()
        status, _ = call(server, "POST", "/jobs", raw=raw)
        assert status == 400
        assert_alive(server)

    @pytest.mark.parametrize("value", ["Infinity", "-Infinity", "NaN", "0.0", "-2.0"])
    def test_bad_capacity_400(self, server, value):
        raw = b'{"site": "a", "capacity": %s}' % value.encode()
        status, payload = call(server, "POST", "/capacity", raw=raw)
        assert status == 400 and "capacity" in payload["error"]["message"]
        assert_alive(server)
        # the bad value never reached the state
        status, payload = call(server, "GET", "/health")
        assert payload["sites"] == 2

    def test_finite_capacity_still_accepted(self, server):
        status, _ = call(server, "POST", "/capacity", {"site": "a", "capacity": 4.0})
        assert status == 202


class TestDeleteJob:
    def test_url_encoded_name_round_trip(self, server):
        """A job named "map reduce" must be deletable: the DELETE path
        arrives percent-encoded and the handler must unquote it."""
        call(server, "POST", "/allocate", {"name": "map reduce", "workload": {"a": 1.0}})
        status, _ = call(server, "DELETE", "/jobs/" + quote("map reduce"))
        assert status == 202
        status, payload = call(server, "POST", "/allocate")
        assert status == 200 and payload["jobs"] == {}

    def test_unicode_name_round_trip(self, server):
        name = "jöb/α"
        call(server, "POST", "/allocate", {"name": name, "workload": {"b": 1.0}})
        status, _ = call(server, "DELETE", "/jobs/" + quote(name, safe=""))
        assert status == 202
        status, payload = call(server, "POST", "/allocate")
        assert payload["jobs"] == {}

    def test_unknown_job_404(self, server):
        status, payload = call(server, "DELETE", "/jobs/ghost")
        assert status == 404 and "unknown job" in payload["error"]["message"]
        assert_alive(server)

    def test_queued_but_unflushed_job_is_deletable(self, server):
        # the arrival may still be in the coalescing queue when the DELETE
        # lands; has_job must see pending events, not answer 404
        call(server, "POST", "/jobs", {"name": "q", "workload": {"a": 1.0}})
        status, _ = call(server, "DELETE", "/jobs/q")
        assert status == 202

    def test_bare_jobs_path_404(self, server):
        status, _ = call(server, "DELETE", "/jobs/")
        assert status == 404
        status, _ = call(server, "DELETE", "/jobs")
        assert status == 404


class TestUnknownRoutes:
    @pytest.mark.parametrize("method,path", [
        ("GET", "/nope"),
        ("POST", "/nope"),
        ("DELETE", "/nope"),
        ("GET", "/jobs/x"),
    ])
    def test_404(self, server, method, path):
        status, payload = call(server, method, path)
        assert status == 404 and "error" in payload
        assert_alive(server)


class TestOversizedBody:
    def test_content_length_over_limit_413(self, server):
        # claim a huge body but never send it: the handler must refuse from
        # the header alone instead of stalling on a 4 MiB read
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 413
            payload = json.loads(resp.read().decode())
            assert "exceeds" in payload["error"]["message"]
            # the unread body poisons the connection; the server closes it
            assert resp.headers.get("Connection", "").lower() == "close"
        finally:
            conn.close()
        assert_alive(server)

    def test_bad_content_length_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            resp.read()
        finally:
            conn.close()
        assert_alive(server)


class TestObservabilityEndpoints:
    def test_metrics_parse_and_cross_check_stats(self, server):
        """/metrics must be valid Prometheus text and its solver counters
        must bit-match the daemon's own /stats diagnostics."""
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        call(server, "POST", "/allocate", {"name": "y", "workload": {"b": 2.0}})
        _, stats = call(server, "GET", "/stats")

        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain; version=0.0.4")
            samples = parse_prometheus(resp.read().decode())

        inc = stats["incremental"]
        assert inc["failures"] == 0
        assert samples["repro_amf_solves_total"] == inc["solves"]
        for diag_key, sample in [
            ("rounds", "repro_amf_rounds_total"),
            ("feasibility_solves", "repro_amf_feasibility_solves_total"),
            ("probes_early_accept", "repro_flow_probes_early_accept_total"),
            ("probes_cut_reject", "repro_flow_probes_cut_reject_total"),
            ("probes_warm", "repro_flow_probes_warm_total"),
            ("probes_cold", "repro_flow_probes_cold_total"),
            ("cuts_generated", "repro_amf_cuts_generated_total"),
            ("warm_cuts_seeded", "repro_amf_warm_cuts_seeded_total"),
        ]:
            assert samples[sample] == inc[diag_key], diag_key
        cache = stats["cache"]
        assert samples["repro_cache_hits_total"] == cache["hits"]
        assert samples["repro_cache_misses_total"] == cache["misses"]
        assert samples["repro_service_requests_total"] >= 3

    def test_traces_serve_chrome_json(self, server):
        call(server, "POST", "/allocate", {"name": "x", "workload": {"a": 1.0}})
        status, doc = call(server, "GET", "/traces")
        assert status == 200
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"service.allocate", "amf.solve", "flow.probe"} <= names
        probe_parents = {
            ev["args"]["parent"] for ev in doc["traceEvents"] if ev["name"] == "flow.probe"
        }
        assert probe_parents == {"amf.solve"}

    def test_errors_counted(self, server):
        call(server, "GET", "/nope")
        _, _ = call(server, "GET", "/health")
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as resp:
            samples = parse_prometheus(resp.read().decode())
        assert samples["repro_service_errors_total"] >= 1


# -- wire-format round-trip property -----------------------------------

_names = st.text(min_size=1, max_size=20).filter(lambda s: s.strip())
_values = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False)
_workloads = st.dictionaries(_names, _values, min_size=1, max_size=4)


def _wire_dict(job: Job) -> dict:
    """Serialize like repro.model.serialize.cluster_to_dict's job entries."""
    return {
        "name": job.name,
        "workload": dict(job.workload),
        **({"demand": dict(job.demand)} if job.demand else {}),
        **({"weight": job.weight} if job.weight != 1.0 else {}),
        **({"arrival": job.arrival} if job.arrival != 0.0 else {}),
    }


class TestWireRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        name=_names,
        workload=_workloads,
        weight=_values,
        arrival=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        data=st.data(),
    )
    def test_job_round_trips_through_wire_format(self, name, workload, weight, arrival, data):
        demand_sites = data.draw(st.sets(st.sampled_from(sorted(workload))))
        demand = {s: data.draw(_values) for s in sorted(demand_sites)}
        job = Job(name, workload, demand, weight=weight, arrival=arrival)
        # through JSON: exactly what POST /jobs would carry
        rebuilt = job_from_dict(json.loads(json.dumps(_wire_dict(job))))
        assert rebuilt.name == job.name
        assert dict(rebuilt.workload) == dict(job.workload)
        assert dict(rebuilt.demand) == dict(job.demand)
        assert rebuilt.weight == job.weight and rebuilt.arrival == job.arrival

    @settings(max_examples=25, deadline=None)
    @given(workload=_workloads, bad=st.sampled_from([float("inf"), float("-inf"), float("nan")]))
    def test_non_finite_workload_always_rejected(self, workload, bad):
        site = sorted(workload)[0]
        poisoned = dict(workload, **{site: bad})
        with pytest.raises((StateError, ValueError)):
            job_from_dict({"name": "j", "workload": poisoned})


class TestRequestTimeout408:
    """A client that stalls mid-body (or under-delivers its declared
    Content-Length) gets the uniform envelope with 408, on a connection
    marked close — and the server stays alive for the next client."""

    @pytest.fixture
    def fast_server(self):
        REGISTRY.reset()
        state = ClusterState([Site("a", 2.0)])
        service = AllocationService(state, max_delay=0.005, observability=False)
        srv = ServiceServer(service, port=0, quiet=True, request_timeout=0.5)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        thread.join(timeout=5)

    def _post_partial(self, srv, declared: int, sent: bytes, *, close_early: bool):
        import socket

        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=10)
        try:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {declared}\r\n\r\n".encode()
                + sent
            )
            if close_early:
                sock.shutdown(socket.SHUT_WR)
            # a 408 is always Connection: close, so EOF delimits the response
            chunks = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return chunks
                chunks += chunk
        finally:
            sock.close()

    def test_short_body_answers_408_envelope(self, fast_server):
        raw = self._post_partial(fast_server, declared=500, sent=b'{"jobs', close_early=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"408" in head.splitlines()[0]
        assert b"Connection: close" in head
        envelope = json.loads(body)
        assert envelope["error"]["code"] == "request_timeout"
        assert "incomplete request body" in envelope["error"]["message"]
        assert_alive(fast_server)

    def test_stalled_body_answers_408_after_timeout(self, fast_server):
        # never send the rest, never close: the socket timeout must fire
        raw = self._post_partial(fast_server, declared=500, sent=b'{"jo', close_early=False)
        assert b"408" in raw.splitlines()[0]
        assert b"request_timeout" in raw
        assert_alive(fast_server)

    def test_spec_documents_the_new_codes(self, fast_server):
        status, spec = call(fast_server, "GET", "/v1/spec")
        assert status == 200
        codes = spec["error_envelope"]["codes"]
        assert "request_timeout" in codes and "unavailable" in codes


class TestGracefulShutdown503:
    def test_closed_service_answers_503_envelope(self, server):
        status, payload = call(server, "POST", "/jobs", {"name": "j", "workload": {"a": 1.0}})
        assert status == 202
        server.service.close()
        assert server.service.pending() == 0  # queue drained into the state
        status, payload = call(
            server, "POST", "/jobs", {"name": "k", "workload": {"a": 1.0}}
        )
        assert status == 503
        assert payload["error"]["code"] == "unavailable"
        status, payload = call(server, "GET", "/jobs")
        assert status == 503

    def test_close_drains_queue_and_flushes_journal(self):
        state = ClusterState([Site("a", 2.0)])
        service = AllocationService(state, max_delay=60.0, observability=False)
        service.submit_all(
            [__import__("repro.service.state", fromlist=["JobArrived"]).JobArrived(
                Job(f"j{i}", {"a": 1.0})
            ) for i in range(3)]
        )
        version_before = state.version
        service.close()
        assert state.n_jobs == 3  # pending batch applied, not dropped
        assert state.touched_sites_since(version_before) == frozenset({"a"})
        service.close()  # idempotent

    def test_submit_after_close_raises(self):
        from repro.service.daemon import ServiceClosed
        from repro.service.state import JobArrived

        service = AllocationService(ClusterState([Site("a", 2.0)]), observability=False)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(JobArrived(Job("j", {"a": 1.0})))
        with pytest.raises(ServiceClosed):
            service.allocation()
