"""Write-ahead journal: durability, torn tails, bit-identical recovery."""

import json
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.site import Site
from repro.service.daemon import AllocationService
from repro.service.journal import (
    JournalError,
    WriteAheadJournal,
    event_from_json,
    event_to_json,
    open_journal,
    recover_journal,
    recover_state,
)
from repro.service.state import CapacityChanged, ClusterState, JobArrived, JobDeparted


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


SITES = [Site("a", 4.0), Site("b", 3.0), Site("c", 2.0)]
SITE_NAMES = [s.name for s in SITES]


def make_state():
    return ClusterState([Site(s.name, s.capacity) for s in SITES])


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
_floats = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False)
_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(["arrive", "depart", "capacity"]))
    t = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    if kind == "arrive":
        support = draw(st.lists(st.sampled_from(SITE_NAMES), min_size=1, max_size=3, unique=True))
        workload = {s: draw(_floats) for s in support}
        demand = {s: draw(_floats) for s in support if draw(st.booleans())}
        weight = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        return JobArrived(Job(draw(_names), workload, demand, weight=weight), t)
    if kind == "depart":
        return JobDeparted(draw(_names), t)
    return CapacityChanged(draw(st.sampled_from(SITE_NAMES)), draw(_floats), t)


class TestWireFormat:
    @given(event=events())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_exact(self, event):
        rebuilt = event_from_json(json.loads(json.dumps(event_to_json(event))))
        assert type(rebuilt) is type(event)
        assert rebuilt.time == event.time
        if isinstance(event, JobArrived):
            assert rebuilt.job.name == event.job.name
            assert dict(rebuilt.job.workload) == dict(event.job.workload)
            assert dict(rebuilt.job.demand) == dict(event.job.demand)
            assert rebuilt.job.weight == event.job.weight
        elif isinstance(event, JobDeparted):
            assert rebuilt.name == event.name
        else:
            assert rebuilt.site == event.site and rebuilt.capacity == event.capacity

    def test_unknown_kind_rejected(self):
        with pytest.raises(JournalError):
            event_from_json({"k": "mystery"})


# ----------------------------------------------------------------------
# Append side
# ----------------------------------------------------------------------
class TestAppend:
    def test_group_commit_fsync_batching(self, tmp_path):
        clock = FakeClock()
        j = WriteAheadJournal(tmp_path, fsync_batch=3, fsync_interval=100.0, clock=clock)
        j.append([CapacityChanged("a", 1.0)])
        j.append([CapacityChanged("a", 2.0)])
        assert j.stats.fsyncs == 0 and j.dirty
        j.append([CapacityChanged("a", 3.0)])  # third append crosses the batch
        assert j.stats.fsyncs == 1 and not j.dirty
        clock.now = 200.0  # interval policy kicks in even below the batch
        j.append([CapacityChanged("a", 4.0)])
        assert j.stats.fsyncs == 2
        j.close()

    def test_fsync_batch_one_is_synchronous(self, tmp_path):
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([CapacityChanged("a", 1.0)])
        assert j.stats.fsyncs == 1 and not j.dirty
        j.close()

    def test_checkpoint_compacts_old_files(self, tmp_path):
        state = make_state()
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        events = [JobArrived(Job("x", {"a": 1.0}))]
        state.apply_all(events)
        j.append(events)
        j.checkpoint(state)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["segment-000000000001.jsonl", "snapshot-000000000001.json"]
        j.close()

    def test_maybe_checkpoint_threshold(self, tmp_path):
        state = make_state()
        j = WriteAheadJournal(tmp_path, fsync_batch=1, checkpoint_every=3)
        for i in range(2):
            ev = [CapacityChanged("a", float(i + 1))]
            state.apply_all(ev)
            j.append(ev)
            assert not j.maybe_checkpoint(state)
        ev = [CapacityChanged("a", 9.0)]
        state.apply_all(ev)
        j.append(ev)
        assert j.maybe_checkpoint(state)
        assert j.stats.checkpoints == 1
        j.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        j = WriteAheadJournal(tmp_path)
        j.close()
        with pytest.raises(ValueError):
            j.append([CapacityChanged("a", 1.0)])


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_empty_directory(self, tmp_path):
        rec = recover_journal(tmp_path)
        assert rec.cluster is None and rec.events == [] and rec.seq == 0

    def test_segments_without_snapshot_replay_from_fallback(self, tmp_path):
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([JobArrived(Job("x", {"a": 1.0}))])
        j.close()
        state, rec = recover_state(tmp_path, fallback_sites=SITES)
        assert state.n_jobs == 1 and rec.seq == 1

    def test_torn_tail_discarded(self, tmp_path):
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([JobArrived(Job("x", {"a": 1.0})), JobArrived(Job("y", {"b": 1.0}))])
        j.close()
        segment = next(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 3, "k": "arrive", "jo')  # crash mid-line
        rec = recover_journal(tmp_path)
        assert len(rec.events) == 2 and rec.seq == 2
        assert rec.dropped_lines == 1

    def test_valid_lines_after_a_tear_are_dropped(self, tmp_path):
        # data after a torn line is unordered w.r.t. the tear: all dropped
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([JobArrived(Job("x", {"a": 1.0}))])
        j.close()
        segment = next(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "ab") as fh:
            fh.write(b"garbage\n")
            fh.write(json.dumps({"seq": 2, "k": "depart", "name": "x"}).encode() + b"\n")
        rec = recover_journal(tmp_path)
        assert len(rec.events) == 1 and rec.dropped_lines == 2

    def test_sequence_gap_raises(self, tmp_path):
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([JobArrived(Job("x", {"a": 1.0})), JobArrived(Job("y", {"b": 1.0}))])
        j.close()
        segment = next(tmp_path.glob("segment-*.jsonl"))
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(lines[1])  # seq 2 without seq 1
        with pytest.raises(JournalError, match="gap"):
            recover_journal(tmp_path)

    def test_open_journal_prefers_recovered_snapshot(self, tmp_path):
        state = make_state()
        state.apply_all([JobArrived(Job("x", {"a": 1.0}))])
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.checkpoint(state)
        j.close()
        fallback = ClusterState([Site("other", 9.0)])
        recovered, journal, rec = open_journal(tmp_path, fallback_state=fallback)
        assert recovered is not fallback
        assert recovered.snapshot().fingerprint() == state.snapshot().fingerprint()
        journal.close()

    def test_open_journal_empty_dir_uses_fallback_state(self, tmp_path):
        fallback = make_state()
        fallback.apply_all([JobArrived(Job("x", {"a": 1.0}))])
        state, journal, rec = open_journal(tmp_path, fallback_state=fallback)
        assert state is fallback
        # the boot checkpoint makes the fallback durable immediately
        journal.close()
        recovered, _ = recover_state(tmp_path)
        assert recovered.snapshot().fingerprint() == fallback.snapshot().fingerprint()

    def test_open_journal_empty_dir_without_fallback_raises(self, tmp_path):
        with pytest.raises(JournalError):
            open_journal(tmp_path)

    def test_boot_checkpoint_truncates_torn_head_of_reused_segment(self, tmp_path):
        # crash tears the FIRST line of a fresh post-checkpoint segment:
        # the segment base equals the recovered seq, so the next boot
        # reuses the very same path instead of renaming it away — the boot
        # checkpoint must truncate the tear, or every event the new
        # incarnation journals sits behind it and the NEXT recovery drops
        # them all as data-after-a-torn-line
        state = make_state()
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        ev = [JobArrived(Job("x", {"a": 1.0}))]
        state.apply_all(ev)
        j.append(ev)
        j.checkpoint(state)  # fresh, empty segment-...001
        j.close()
        segment = tmp_path / "segment-000000000001.jsonl"
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 2, "k": "arr')  # crash mid-write of line 1
        booted, journal, rec = open_journal(tmp_path, fallback_sites=SITES)
        assert rec.dropped_lines == 1 and booted.n_jobs == 1
        follow_up = [JobArrived(Job("y", {"b": 1.0}))]
        journal.append(follow_up)
        booted.apply_all(follow_up)
        journal.close()
        final, rec2 = recover_state(tmp_path)
        assert rec2.dropped_lines == 0
        assert final.n_jobs == 2
        assert final.snapshot().fingerprint() == booted.snapshot().fingerprint()

    def test_boot_checkpoint_shields_torn_tail_from_new_segments(self, tmp_path):
        # crash leaves a torn line; the next incarnation boots, writes new
        # events, and a second recovery must see only the new history
        j = WriteAheadJournal(tmp_path, fsync_batch=1)
        j.append([JobArrived(Job("x", {"a": 1.0}))])
        j.close()
        segment = next(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 2, "k": "arr')
        state, journal, rec = open_journal(tmp_path, fallback_sites=SITES)
        assert rec.dropped_lines == 1 and state.n_jobs == 1
        journal.append([JobArrived(Job("y", {"b": 1.0}))])
        state.apply_all([JobArrived(Job("y", {"b": 1.0}))])
        journal.close()
        final, rec2 = recover_state(tmp_path)
        assert rec2.dropped_lines == 0
        assert final.snapshot().fingerprint() == state.snapshot().fingerprint()


# ----------------------------------------------------------------------
# Replay bit-identity (the acceptance criterion)
# ----------------------------------------------------------------------
class TestReplayEquivalence:
    @given(stream=st.lists(events(), min_size=1, max_size=40), flush_every=st.integers(1, 7))
    @settings(max_examples=30, deadline=None)
    def test_recovery_reproduces_live_fingerprint(self, tmp_path_factory, stream, flush_every):
        """A journaled daemon's final state == sequential replay of its log.

        The stream deliberately includes rejectable events (departures of
        unknown jobs, duplicate arrivals): live best-effort apply and
        replay must agree on those too.
        """
        tmp_path = tmp_path_factory.mktemp("journal")
        clock = FakeClock()
        state, journal, _ = open_journal(
            tmp_path, fallback_sites=SITES, fsync_batch=1, clock=clock
        )
        service = AllocationService(state, journal=journal, clock=clock, observability=False)
        for i, event in enumerate(stream):
            service.submit(event)
            if (i + 1) % flush_every == 0:
                service.flush(force=True)
        # simulate a crash: no close(), no final checkpoint — recovery
        # must replay the journaled tail
        live_fp = None
        service.flush(force=True)
        live_fp = service.state.snapshot().fingerprint()
        recovered, rec = recover_state(tmp_path)
        assert recovered.snapshot().fingerprint() == live_fp

    def test_unflushed_events_survive_via_journal(self, tmp_path):
        """Write-ahead ordering: an acknowledged-but-unflushed event is on
        disk and lands in the recovered state even though the live state
        never saw it (the crash window the journal exists for)."""
        clock = FakeClock()
        state, journal, _ = open_journal(tmp_path, fallback_sites=SITES, fsync_batch=1, clock=clock)
        service = AllocationService(
            state, journal=journal, clock=clock, max_delay=1e9, observability=False
        )
        service.submit(JobArrived(Job("x", {"a": 1.0})))
        assert service.state.n_jobs == 0  # still coalescing — crash now
        recovered, rec = recover_state(tmp_path)
        assert recovered.n_jobs == 1
        assert len(rec.events) == 1


# ----------------------------------------------------------------------
# SIGKILL crash (in-process daemons can't be killed harder than this)
# ----------------------------------------------------------------------
_CRASH_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys
    from repro.model.job import Job
    from repro.model.site import Site
    from repro.service.daemon import AllocationService
    from repro.service.journal import open_journal
    from repro.service.state import CapacityChanged, JobArrived, JobDeparted

    directory = sys.argv[1]
    sites = [Site("a", 4.0), Site("b", 3.0)]
    state, journal, _ = open_journal(directory, fallback_sites=sites, fsync_batch=1)
    service = AllocationService(state, journal=journal, observability=False)
    for i in range(25):
        service.submit(JobArrived(Job(f"j{i}", {"a": 1.0 + i % 3, "b": 1.0})))
        if i % 4 == 3:
            service.submit(JobDeparted(f"j{i - 2}"))
        if i % 7 == 6:
            service.submit(CapacityChanged("b", 3.0 + i))
        if i % 5 == 4:
            service.flush(force=True)
    service.flush(force=True)
    print(json.dumps({"fingerprint": state.snapshot().fingerprint()}), flush=True)
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no atexit, nothing
    """
)


class TestSigkill:
    def test_sigkill_recovery_matches_pre_crash_fingerprint(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        pre_crash = json.loads(proc.stdout.strip().splitlines()[-1])["fingerprint"]
        recovered, rec = recover_state(tmp_path)
        assert recovered.snapshot().fingerprint() == pre_crash
