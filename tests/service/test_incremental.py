"""Warm-started incremental AMF == cold AMF, on arbitrary event sequences.

This is the service's central correctness claim (docs/service.md): the
persisted cut basis is *purely* an accelerator.  Hypothesis drives random
clusters through random churn (arrivals, departures, capacity changes) and
checks the warm solver's aggregates against a cold :func:`solve_amf` on
every intermediate snapshot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ABS_TOL
from repro.core.amf import AmfDiagnostics, CutBasis, amf_levels, solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.service.solver import IncrementalAmfSolver
from repro.service.state import CapacityChanged, ClusterState, JobArrived, JobDeparted


@st.composite
def churn_scripts(draw):
    """A starting state plus a sequence of mutation events."""
    m = draw(st.integers(1, 3))
    sites = [Site(f"s{j}", draw(st.floats(0.5, 4.0))) for j in range(m)]

    def fresh_job(tag: str) -> Job:
        support = sorted(draw(st.sets(st.integers(0, m - 1), min_size=1, max_size=m)))
        workload = {f"s{j}": draw(st.floats(0.1, 3.0)) for j in support}
        demand = {
            f"s{j}": draw(st.floats(0.05, 2.0))
            for j in support
            if draw(st.booleans())
        }
        return Job(tag, workload, demand, weight=draw(st.floats(0.5, 2.0)))

    jobs = [fresh_job(f"j{i}") for i in range(draw(st.integers(1, 4)))]
    events = []
    alive = [j.name for j in jobs]
    for step in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["arrive", "depart", "capacity"]))
        if kind == "arrive":
            job = fresh_job(f"n{step}")
            events.append(JobArrived(job))
            alive.append(job.name)
        elif kind == "depart" and alive:
            name = draw(st.sampled_from(alive))
            alive.remove(name)
            events.append(JobDeparted(name))
        else:
            site = draw(st.sampled_from([s.name for s in sites]))
            events.append(CapacityChanged(site, draw(st.floats(0.5, 4.0))))
    return sites, jobs, events


class TestIncrementalEqualsCold:
    @given(churn_scripts())
    @settings(max_examples=60, deadline=None)
    def test_warm_solution_matches_cold_oracle(self, script):
        sites, jobs, events = script
        state = ClusterState(sites, jobs)
        solver = IncrementalAmfSolver()
        for event in [None, *events]:
            if event is not None:
                state.apply(event)
            cluster = state.snapshot()
            if cluster.n_jobs == 0:
                continue
            warm = solver(cluster)
            cold = solve_amf(cluster)
            np.testing.assert_allclose(
                warm.aggregates, cold.aggregates, atol=ABS_TOL * 10, rtol=1e-9
            )

    @given(churn_scripts())
    @settings(max_examples=30, deadline=None)
    def test_basis_seeding_never_changes_levels(self, script):
        """amf_levels with a pre-populated basis == without, exactly."""
        sites, jobs, events = script
        state = ClusterState(sites, jobs)
        basis = CutBasis()
        snapshots = []
        for event in [None, *events]:
            if event is not None:
                state.apply(event)
            if state.n_jobs:
                snapshots.append(state.snapshot())
        for cluster in snapshots:
            amf_levels(cluster, basis=basis)  # populate/rotate the basis
        for cluster in snapshots:
            warm = amf_levels(cluster, basis=basis)
            cold = amf_levels(cluster)
            np.testing.assert_allclose(warm, cold, atol=ABS_TOL * 10, rtol=1e-9)


class TestSolverBehaviour:
    def make_cluster(self) -> Cluster:
        # Site "a" is the bottleneck; "y" can offload at most 0.1 onto "b",
        # so progressive filling must discover the site cut {a}.
        sites = [Site("a", 1.0), Site("b", 10.0)]
        jobs = [Job("x", {"a": 1.0}), Job("y", {"a": 1.0, "b": 1.0}, demand={"b": 0.1})]
        return Cluster(sites, jobs)

    def test_repeat_solve_skips_rediscovery(self):
        cluster = self.make_cluster()
        solver = IncrementalAmfSolver()
        solver(cluster)
        first_cuts = solver.stats.cuts_generated
        first_feas = solver.stats.feasibility_solves
        solver(cluster)
        assert solver.stats.cuts_generated == first_cuts  # nothing rediscovered
        assert solver.stats.feasibility_solves - first_feas <= first_feas
        assert solver.stats.warm_cuts_seeded > 0

    def test_failure_clears_basis_and_reraises(self, monkeypatch):
        cluster = self.make_cluster()
        solver = IncrementalAmfSolver()
        solver(cluster)
        assert len(solver.basis) > 0

        import repro.service.solver as solver_mod

        def poisoned(*args, **kwargs):
            raise RuntimeError("poisoned")

        monkeypatch.setattr(solver_mod, "solve_amf", poisoned)
        with pytest.raises(RuntimeError, match="poisoned"):
            solver(cluster)
        monkeypatch.undo()
        assert len(solver.basis) == 0
        assert solver.stats.failures == 1
        solver(cluster)  # recovers cold

    def test_non_persistent_mode_is_cold(self):
        cluster = self.make_cluster()
        solver = IncrementalAmfSolver(persistent=False)
        assert solver.__name__ == "amf-cold"
        diag = AmfDiagnostics()
        amf_levels(cluster, diagnostics=diag)
        cold_feas = diag.feasibility_solves
        solver(cluster)
        solver(cluster)
        # identical probe count both times: no warm carry-over
        assert solver.stats.feasibility_solves == 2 * cold_feas
        assert solver.stats.warm_cuts_seeded == 0


class TestCutBasis:
    def test_lru_bound(self):
        basis = CutBasis(max_cuts=2)
        for name in ("a", "b", "c"):
            basis.record(frozenset({name}))
        assert len(basis) == 2

    def test_record_refreshes_recency(self):
        basis = CutBasis(max_cuts=2)
        basis.record(frozenset({"a"}))
        basis.record(frozenset({"b"}))
        basis.record(frozenset({"a"}))  # touch
        basis.record(frozenset({"c"}))  # evicts b
        sites = [Site(n, 1.0) for n in ("a", "b", "c")]
        cluster = Cluster(sites, [Job("j", {"a": 1.0})])
        instantiated = basis.instantiate(cluster)
        assert frozenset({0}) in instantiated  # site a survived
        assert frozenset({1}) not in instantiated

    def test_vanished_sites_dropped(self):
        basis = CutBasis()
        basis.record(frozenset({"gone", "a"}))
        cluster = Cluster([Site("a", 1.0)], [Job("j", {"a": 1.0})])
        assert basis.instantiate(cluster) == [frozenset({0})]

    def test_fully_vanished_cut_skipped(self):
        basis = CutBasis()
        basis.record(frozenset({"gone"}))
        cluster = Cluster([Site("a", 1.0)], [Job("j", {"a": 1.0})])
        assert basis.instantiate(cluster) == []


class TestShardedSolver:
    """IncrementalAmfSolver(sharded=True): same answers, per-shard caching."""

    def two_block_cluster(self) -> Cluster:
        sites = [Site("a", 1.0), Site("b", 10.0), Site("c", 2.0)]
        jobs = [
            Job("x", {"a": 1.0}),
            Job("y", {"a": 1.0, "b": 1.0}, demand={"b": 0.1}),
            Job("z", {"c": 1.0}),
        ]
        return Cluster(sites, jobs)

    @given(churn_scripts())
    @settings(max_examples=40, deadline=None)
    def test_sharded_matches_cold_oracle(self, script):
        sites, jobs, events = script
        state = ClusterState(sites, jobs)
        solver = IncrementalAmfSolver(sharded=True)
        for event in [None, *events]:
            if event is not None:
                state.apply(event)
            cluster = state.snapshot()
            if cluster.n_jobs == 0:
                continue
            warm = solver(cluster)
            cold = solve_amf(cluster)
            np.testing.assert_allclose(
                warm.aggregates, cold.aggregates, atol=ABS_TOL * 10, rtol=1e-9
            )

    def test_repeat_solve_hits_shard_cache(self):
        cluster = self.two_block_cluster()
        solver = IncrementalAmfSolver(sharded=True)
        first = solver(cluster)
        assert solver.stats.last_shards == 2
        assert solver.stats.shard_solves == 2
        assert solver.stats.shard_cache_misses == 2
        second = solver(cluster)
        assert solver.stats.shard_cache_hits == 2
        assert solver.stats.shard_solves == 2  # nothing re-solved
        np.testing.assert_array_equal(first.matrix, second.matrix)

    def test_delta_resolves_only_touched_shard(self):
        cluster = self.two_block_cluster()
        solver = IncrementalAmfSolver(sharded=True)
        solver(cluster)
        # grow job z's block only: the {a, b} shard must replay from cache
        touched = Cluster(
            cluster.sites,
            (*cluster.jobs, Job("w", {"c": 1.0})),
        )
        solver(touched)
        assert solver.stats.shard_cache_hits == 1  # the untouched {a, b} block
        assert solver.stats.shard_solves == 3  # 2 cold + 1 re-solve of {c}

    def test_failure_clears_shard_state(self, monkeypatch):
        cluster = self.two_block_cluster()
        solver = IncrementalAmfSolver(sharded=True)
        solver(cluster)
        assert solver.shard_cache_entries == 2 and len(solver.bases) == 2

        import repro.service.solver as solver_mod

        def poisoned(*args, **kwargs):
            raise RuntimeError("poisoned")

        monkeypatch.setattr(solver_mod, "solve_shards", poisoned)
        with pytest.raises(RuntimeError, match="poisoned"):
            solver(cluster)
        monkeypatch.undo()
        assert solver.shard_cache_entries == 0 and len(solver.bases) == 0
        assert solver.stats.failures == 1
        solver(cluster)  # recovers cold

    def test_shard_cache_lru_bound(self):
        solver = IncrementalAmfSolver(sharded=True, shard_cache_size=2)
        for cap in (1.0, 2.0, 3.0):
            solver(Cluster([Site("a", cap), Site("b", 1.0)], [Job("x", {"a": 1.0}), Job("z", {"b": 1.0})]))
        assert solver.shard_cache_entries == 2

    def test_non_persistent_sharded_stays_cold(self):
        cluster = self.two_block_cluster()
        solver = IncrementalAmfSolver(persistent=False, sharded=True)
        solver(cluster)
        solver(cluster)
        assert solver.stats.shard_cache_hits == 0
        assert solver.stats.warm_cuts_seeded == 0
