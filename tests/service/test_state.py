"""ClusterState: delta application, rejection semantics, snapshot caching."""

import pytest

from repro.model.job import Job
from repro.model.site import Site
from repro.service.state import (
    CapacityChanged,
    ClusterState,
    JobArrived,
    JobDeparted,
    StateError,
    events_from_schedule,
)


def make_state() -> ClusterState:
    return ClusterState([Site("a", 2.0), Site("b", 3.0)])


class TestDeltas:
    def test_add_remove_job(self):
        st = make_state()
        st.add_job(Job("x", {"a": 1.0}))
        assert st.has_job("x") and st.n_jobs == 1
        removed = st.remove_job("x")
        assert removed.name == "x" and st.n_jobs == 0

    def test_duplicate_job_rejected(self):
        st = make_state()
        st.add_job(Job("x", {"a": 1.0}))
        with pytest.raises(StateError, match="already present"):
            st.add_job(Job("x", {"b": 1.0}))

    def test_unknown_site_rejected(self):
        st = make_state()
        with pytest.raises(StateError, match="unknown sites"):
            st.add_job(Job("x", {"nope": 1.0}))

    def test_remove_unknown_job_rejected(self):
        with pytest.raises(StateError, match="unknown job"):
            make_state().remove_job("ghost")

    def test_set_capacity(self):
        st = make_state()
        st.set_capacity("a", 5.0)
        assert st.snapshot().capacities[0] == 5.0

    def test_capacity_must_stay_positive(self):
        st = make_state()
        with pytest.raises(StateError, match="positive"):
            st.set_capacity("a", 0.0)
        with pytest.raises(StateError, match="unknown site"):
            st.set_capacity("zz", 1.0)

    def test_apply_dispatches(self):
        st = make_state()
        st.apply(JobArrived(Job("x", {"a": 1.0})))
        st.apply(CapacityChanged("b", 7.0))
        st.apply(JobDeparted("x"))
        assert st.n_jobs == 0 and st.snapshot().capacities[1] == 7.0

    def test_apply_all_is_best_effort(self):
        st = make_state()
        applied, rejected = st.apply_all(
            [
                JobArrived(Job("x", {"a": 1.0})),
                JobDeparted("ghost"),  # rejected, not fatal
                JobArrived(Job("y", {"b": 1.0})),
            ]
        )
        assert applied == 2
        assert len(rejected) == 1 and "ghost" in rejected[0]
        assert st.job_names == ["x", "y"]


class TestVersioningAndSnapshots:
    def test_version_increments_only_on_success(self):
        st = make_state()
        v0 = st.version
        st.add_job(Job("x", {"a": 1.0}))
        assert st.version == v0 + 1
        with pytest.raises(StateError):
            st.remove_job("ghost")
        assert st.version == v0 + 1

    def test_snapshot_cached_until_mutation(self):
        st = make_state()
        st.add_job(Job("x", {"a": 1.0}))
        s1 = st.snapshot()
        assert st.snapshot() is s1  # same object => same fingerprint, free reads
        st.set_capacity("a", 4.0)
        s2 = st.snapshot()
        assert s2 is not s1
        assert s2.fingerprint() != s1.fingerprint()

    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError):
            ClusterState([])


class TestScheduleAdapter:
    def test_events_from_schedule(self):
        job = Job("x", {"a": 1.0})
        events = events_from_schedule(
            [(0.0, "arrive", job), (1.0, "depart", "x"), (2.0, "capacity", ("a", 5.0))]
        )
        assert isinstance(events[0], JobArrived) and events[0].job is job
        assert isinstance(events[1], JobDeparted) and events[1].name == "x"
        assert isinstance(events[2], CapacityChanged)
        assert events[2].site == "a" and events[2].capacity == 5.0
        assert [e.time for e in events] == [0.0, 1.0, 2.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(StateError, match="unknown schedule kind"):
            events_from_schedule([(0.0, "explode", None)])
