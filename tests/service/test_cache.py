"""AllocationCache: fingerprint keying, LRU bounds, revalidation on the way out."""

import numpy as np
import pytest

from repro.core.amf import solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.service.cache import AllocationCache


def cluster_with_capacity(cap_a: float) -> Cluster:
    sites = [Site("a", cap_a), Site("b", 3.0)]
    jobs = [Job("x", {"a": 1.0}), Job("y", {"a": 1.0, "b": 1.0})]
    return Cluster(sites, jobs)


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = AllocationCache()
        c = cluster_with_capacity(2.0)
        assert cache.get(c) is None
        cache.put(c, solve_amf(c))
        hit = cache.get(c)
        assert hit is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_equal_clusters_share_entries(self):
        cache = AllocationCache()
        cache.put(cluster_with_capacity(2.0), solve_amf(cluster_with_capacity(2.0)))
        # a freshly built but identical cluster hits (fingerprint keying)
        assert cache.get(cluster_with_capacity(2.0)) is not None

    def test_different_clusters_do_not_collide(self):
        cache = AllocationCache()
        cache.put(cluster_with_capacity(2.0), solve_amf(cluster_with_capacity(2.0)))
        assert cache.get(cluster_with_capacity(2.5)) is None

    def test_hit_rebinds_to_callers_cluster(self):
        cache = AllocationCache()
        c1 = cluster_with_capacity(2.0)
        cache.put(c1, solve_amf(c1))
        c2 = cluster_with_capacity(2.0)
        hit = cache.get(c2)
        assert hit.cluster is c2
        np.testing.assert_allclose(hit.aggregates, solve_amf(c2).aggregates)

    def test_get_fingerprints_once_per_lookup(self):
        # fingerprint() hashes the whole instance; a hit used to pay it
        # twice (lookup + LRU touch)
        cache = AllocationCache()
        c = cluster_with_capacity(2.0)
        cache.put(c, solve_amf(c))
        calls = 0
        real = type(c).fingerprint

        class Counting(type(c)):
            def fingerprint(self):
                nonlocal calls
                calls += 1
                return real(self)

        counting = Counting(list(c.sites), list(c.jobs))
        assert cache.get(counting) is not None
        assert calls == 1

    def test_returned_matrix_is_a_copy(self):
        cache = AllocationCache()
        c = cluster_with_capacity(2.0)
        stored = solve_amf(c)
        cache.put(c, stored)
        first = cache.get(c)
        second = cache.get(c)
        # Each hit materializes its own matrix: no aliasing between hits or
        # with the stored entry, so a caller can never corrupt the cache.
        assert not np.shares_memory(first.matrix, second.matrix)
        assert not np.shares_memory(first.matrix, stored.matrix)
        np.testing.assert_allclose(first.matrix, stored.matrix)


class TestLru:
    def test_eviction_order_and_counters(self):
        cache = AllocationCache(max_entries=2)
        caps = [2.0, 2.5, 3.5]
        for cap in caps:
            c = cluster_with_capacity(cap)
            cache.put(c, solve_amf(c))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(cluster_with_capacity(2.0)) is None  # oldest evicted
        assert cache.get(cluster_with_capacity(3.5)) is not None

    def test_get_refreshes_recency(self):
        cache = AllocationCache(max_entries=2)
        for cap in (2.0, 2.5):
            c = cluster_with_capacity(cap)
            cache.put(c, solve_amf(c))
        cache.get(cluster_with_capacity(2.0))  # touch the older entry
        c = cluster_with_capacity(3.5)
        cache.put(c, solve_amf(c))  # evicts 2.5, not the touched 2.0
        assert cache.get(cluster_with_capacity(2.0)) is not None
        assert cache.get(cluster_with_capacity(2.5)) is None

    def test_clear(self):
        cache = AllocationCache()
        c = cluster_with_capacity(2.0)
        cache.put(c, solve_amf(c))
        cache.clear()
        assert len(cache) == 0 and cache.get(c) is None

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            AllocationCache(max_entries=0)
