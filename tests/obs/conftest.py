"""Shared fixtures: the obs layer is process-global, so every test here
saves the REGISTRY/TRACER enabled state, starts from zeroed instruments
and an empty ring, and restores the prior state on the way out."""

import pytest

from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER


@pytest.fixture(autouse=True)
def clean_obs():
    reg_on, trc_on = REGISTRY.enabled, TRACER.enabled
    REGISTRY.reset()
    TRACER.clear()
    yield
    REGISTRY.enabled, TRACER.enabled = reg_on, trc_on
    REGISTRY.reset()
    TRACER.clear()
