"""Instrument fold-ins: the registry must bit-match the solver's own
diagnostics, spans must nest amf.solve -> flow.probe -> flow.max_flow,
and everything must stay silent while observability is off."""

import dataclasses

import pytest

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect, solve_amf
from repro.model.cluster import Cluster
from repro.obs import instruments
from repro.obs.registry import REGISTRY
from repro.obs.simobs import SimObserver
from repro.obs.tracing import TRACER
from repro.service.cache import AllocationCache


def small_cluster(cap_a: float = 2.0) -> Cluster:
    return Cluster.from_matrices(
        [cap_a, 3.0, 1.0],
        [[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 1.0]],
    )


class TestAmfBitMatch:
    def test_counters_match_diagnostics_over_a_solve_sequence(self):
        """The ISSUE acceptance criterion: registry probe counters equal the
        sum of AmfDiagnostics over the same solve sequence, bit for bit."""
        REGISTRY.enable()
        diag = AmfDiagnostics()
        c = small_cluster()
        # one shared mutable diag across three solver entries, like bench_pr3
        amf_levels(c, diagnostics=diag)
        amf_levels_bisect(c, diagnostics=diag)
        solve_amf(small_cluster(2.5), diagnostics=diag)
        for field, counter in instruments._AMF_COUNTERS.items():
            assert counter.value == getattr(diag, field), field
        assert instruments.AMF_SOLVES.value == 3

    def test_shared_diag_not_double_counted(self):
        """Delta recording: re-using one diag object across entries must not
        fold earlier solves' counts in again."""
        REGISTRY.enable()
        diag = AmfDiagnostics()
        c = small_cluster()
        amf_levels(c, diagnostics=diag)
        first = dataclasses.replace(diag)
        rounds_after_first = instruments._AMF_COUNTERS["rounds"].value
        assert rounds_after_first == first.rounds > 0
        amf_levels(c, diagnostics=diag)
        # the diag doubled; the counter tracked it exactly (no re-fold)
        assert diag.rounds == 2 * first.rounds
        assert instruments._AMF_COUNTERS["rounds"].value == diag.rounds

    def test_default_diag_still_recorded(self):
        REGISTRY.enable()
        amf_levels(small_cluster())
        assert instruments.AMF_SOLVES.value == 1
        assert instruments._AMF_COUNTERS["rounds"].value > 0

    def test_disabled_registry_records_nothing(self):
        assert not REGISTRY.enabled
        diag = AmfDiagnostics()
        amf_levels(small_cluster(), diagnostics=diag)
        assert diag.rounds > 0  # the solver's own record still fills
        assert instruments.AMF_SOLVES.value == 0
        assert all(c.value == 0 for c in instruments._AMF_COUNTERS.values())


class TestSpanNesting:
    def test_solve_emits_nested_spans(self):
        """amf.solve -> flow.probe -> flow.max_flow, as chrome://tracing
        would show them."""
        TRACER.enable()
        solve_amf(small_cluster())
        events = TRACER.events()
        names = {ev["name"] for ev in events}
        assert {"amf.solve", "flow.probe", "flow.max_flow"} <= names
        probe_parents = {ev["parent"] for ev in events if ev["name"] == "flow.probe"}
        assert probe_parents == {"amf.solve"}
        flow_parents = {ev["parent"] for ev in events if ev["name"] == "flow.max_flow"}
        assert flow_parents == {"flow.probe"}

    def test_solve_span_carries_problem_shape(self):
        TRACER.enable()
        amf_levels(small_cluster())
        (solve,) = [ev for ev in TRACER.events() if ev["name"] == "amf.solve"]
        assert solve["args"]["variant"] == "levels"
        assert solve["args"]["jobs"] == 4 and solve["args"]["sites"] == 3

    def test_probe_span_labels_mode_and_feasibility(self):
        TRACER.enable()
        amf_levels(small_cluster())
        probes = [ev for ev in TRACER.events() if ev["name"] == "flow.probe"]
        assert probes
        for ev in probes:
            assert ev["args"]["mode"] in {"early-accept", "cut-reject", "flow-warm", "flow-cold"}
            assert isinstance(ev["args"]["feasible"], bool)

    def test_disabled_tracer_emits_nothing(self):
        assert not TRACER.enabled
        solve_amf(small_cluster())
        assert TRACER.events() == []


class TestCacheInstruments:
    def test_hit_miss_eviction_counters(self):
        REGISTRY.enable()
        cache = AllocationCache(max_entries=1)
        a, b = small_cluster(2.0), small_cluster(2.5)
        assert cache.get(a) is None
        cache.put(a, solve_amf(a))
        assert cache.get(a) is not None
        cache.put(b, solve_amf(b))  # evicts a
        assert instruments.CACHE_MISSES.value == 1
        assert instruments.CACHE_HITS.value == 1
        assert instruments.CACHE_EVICTIONS.value == 1


class TestSimObserver:
    class _Snap:
        n_jobs = 2

    def test_observe_feeds_registry(self):
        REGISTRY.enable()
        obs = SimObserver()
        obs.observe(0.0, 0.5, self._Snap(), None)
        obs.observe(0.5, 0.25, self._Snap(), None)
        assert instruments.SIM_STEPS.value == 2
        assert instruments.SIM_SIM_TIME_SECONDS.value == pytest.approx(0.75)
        assert instruments.SIM_ACTIVE_JOBS.value == 2
        # wall gap only measurable from the second interval on
        assert instruments.SIM_STEP_SECONDS.count == 1
        summary = obs.summary()
        assert summary["steps"] == 2 and summary["simulated_time"] == pytest.approx(0.75)

    def test_noop_when_disabled(self):
        obs = SimObserver()
        obs.observe(0.0, 0.5, self._Snap(), None)
        assert obs.steps == 0
        assert instruments.SIM_STEPS.value == 0
