"""Tracer: nesting, ring bound, Chrome export, the disabled no-op path."""

import json

from repro.obs.tracing import _NOOP, TRACER, Tracer, span, traced


class TestSpanRecording:
    def test_single_span(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", n=3):
            pass
        (ev,) = tracer.events()
        assert ev["name"] == "work"
        assert ev["args"] == {"n": 3}
        assert ev["parent"] is None and ev["depth"] == 0
        assert ev["dur"] >= 0.0

    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()  # inner completes first
        assert inner["name"] == "inner" and inner["parent"] == "outer" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["parent"] is None and outer["depth"] == 0

    def test_args_mutable_inside_span(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work") as sp:
            sp.args["result"] = 42
        (ev,) = tracer.events()
        assert ev["args"]["result"] == 42

    def test_ring_is_bounded(self):
        tracer = Tracer(max_events=4)
        tracer.enable()
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [ev["name"] for ev in tracer.events()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_clear(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        tracer.clear()
        assert tracer.events() == []

    def test_span_records_even_on_exception(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (ev,) = tracer.events()
        assert ev["name"] == "boom"
        # the stack unwound: a following span is top-level again
        with tracer.span("after"):
            pass
        assert tracer.events()[-1]["depth"] == 0


class TestChromeExport:
    def test_shape(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
        inner = next(ev for ev in doc["traceEvents"] if ev["name"] == "inner")
        assert inner["args"]["parent"] == "outer" and inner["args"]["depth"] == 1

    def test_category_is_name_prefix(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("flow.probe"):
            pass
        (ev,) = tracer.to_chrome()["traceEvents"]
        assert ev["cat"] == "flow"

    def test_export_writes_loadable_json(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        assert tracer.export(path) == 1
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "work"

    def test_inner_span_contained_in_outer(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3


class TestDisabledPath:
    def test_module_span_returns_noop_when_disabled(self):
        assert not TRACER.enabled
        assert span("anything", k=1) is _NOOP

    def test_noop_span_absorbs_args(self):
        with span("anything") as sp:
            sp.args["k"] = 1  # dropped, not an error
        assert TRACER.events() == []

    def test_module_span_records_when_enabled(self):
        TRACER.enable()
        with span("live"):
            pass
        assert [ev["name"] for ev in TRACER.events()] == ["live"]


class TestTraced:
    def test_decorator_records_when_enabled(self):
        TRACER.enable()

        @traced("fn.call")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert [ev["name"] for ev in TRACER.events()] == ["fn.call"]

    def test_decorator_free_when_disabled(self):
        @traced("fn.call")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert TRACER.events() == []
