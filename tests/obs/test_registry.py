"""MetricsRegistry: instrument semantics, exposition format, fast path."""

import math

import pytest

from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_inc(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_render(self):
        c = Counter("c_total")
        c.inc(3)
        assert c.render() == ["c_total 3"]

    def test_reset(self):
        c = Counter("c_total")
        c.inc()
        c.reset()
        assert c.value == 0.0

    def test_rejects_bad_names(self):
        for bad in ("", "9lives", "has space", "dash-ed", "émetric"):
            with pytest.raises(ValueError, match="invalid metric name"):
                Counter(bad)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_render_float(self):
        g = Gauge("g")
        g.set(1.5)
        assert g.render() == ["g 1.5"]


class TestHistogram:
    def test_log_bucket_edges(self):
        h = Histogram("h_seconds", start=1e-3, factor=10.0, buckets=3)
        assert h.bounds == pytest.approx([1e-3, 1e-2, 1e-1])

    def test_observations_land_in_first_covering_bucket(self):
        h = Histogram("h_seconds", start=1.0, factor=2.0, buckets=3)  # edges 1, 2, 4
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # raw (non-cumulative) counts: <=1 gets 0.5 and 1.0; <=2 gets 1.5;
        # <=4 gets 4.0; +Inf gets 100.0
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)

    def test_render_is_cumulative(self):
        h = Histogram("h_seconds", start=1.0, factor=2.0, buckets=2)
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.render() == [
            'h_seconds_bucket{le="1"} 1',
            'h_seconds_bucket{le="2"} 2',
            'h_seconds_bucket{le="+Inf"} 3',
            "h_seconds_sum 11",
            "h_seconds_count 3",
        ]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Histogram("h", start=0.0)
        with pytest.raises(ValueError):
            Histogram("h", factor=1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False

    def test_enable_disable(self):
        reg = MetricsRegistry()
        reg.enable()
        assert reg.enabled
        reg.disable()
        assert not reg.enabled

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(7)
        reg.reset()
        assert reg.counter("x_total") is c and c.value == 0.0

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.gauge("a")
        assert reg.names() == ["a", "b_total"]

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.histogram("h_seconds", buckets=2).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"] == 2.0
        assert snap["h_seconds"]["count"] == 1 and "buckets" in snap["h_seconds"]


class TestExposition:
    def test_render_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        reg.gauge("g", "a gauge").set(1.25)
        reg.histogram("h_seconds", "a histogram", start=1.0, factor=2.0, buckets=2).observe(1.5)
        samples = parse_prometheus(reg.render_prometheus())
        assert samples["c_total"] == 3.0
        assert samples["g"] == 1.25
        assert samples['h_seconds_bucket{le="2"}'] == 1.0
        assert samples['h_seconds_bucket{le="+Inf"}'] == 1.0
        assert samples["h_seconds_count"] == 1.0

    def test_render_has_type_and_help_lines(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "what it counts")
        text = reg.render_prometheus()
        assert "# HELP c_total what it counts\n" in text
        assert "# TYPE c_total counter\n" in text

    def test_render_empty_registry(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError, match="not a sample"):
            parse_prometheus("justoneword")
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus("name notanumber")
        with pytest.raises(ValueError, match="invalid metric name"):
            parse_prometheus("bad-name 1")

    def test_parse_handles_inf(self):
        assert parse_prometheus('b{le="+Inf"} 4')['b{le="+Inf"}'] == 4.0


class TestGlobalRegistry:
    def test_global_default_instruments_registered(self):
        # importing the catalog binds every built-in instrument globally
        import repro.obs.instruments  # noqa: F401

        assert "repro_amf_rounds_total" in REGISTRY.names()
        assert "repro_service_request_seconds" in REGISTRY.names()

    def test_global_render_validates(self):
        import repro.obs.instruments  # noqa: F401

        samples = parse_prometheus(REGISTRY.render_prometheus())
        assert all(math.isfinite(v) or v == math.inf for v in samples.values())
