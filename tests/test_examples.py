"""Every example script must run end-to-end (examples are part of the API)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4, "the README promises a quickstart plus at least three scenarios"
