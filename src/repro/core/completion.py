"""Completion-time add-on: optimize job completion times *under* AMF.

AMF pins each job's aggregate ``A_i`` but leaves the split across sites
free; with a static allocation, job ``i`` finishes at
``T_i = max_j w_ij / a_ij``, so the split matters enormously when workload
distributions are skewed.  This module implements the paper's add-on
("an add-on to optimize the job completion times under AMF") as a family of
split optimizers over the *same* aggregate vector:

``stretch`` (default)
    Lexicographically minimize the sorted vector of per-job *stretches*
    ``T_i / (W_i / A_i)`` — minimize the worst slowdown relative to each
    job's ideal time, pin the critical jobs, recurse.  This is the natural
    completion-time analogue of max-min fairness and is robust to
    heterogeneous job sizes.

``makespan``
    Minimize the absolute makespan ``max_i T_i`` only (single round).

``lexicographic``
    Lexicographically minimize absolute completion times (min the makespan,
    pin critical jobs, recurse).

``proportional_split``
    The naive comparator: split ``a_ij ∝ w_ij`` and scale down at
    over-committed sites.  Loses aggregate mass at hot sites, which is
    exactly the behaviour the add-on exists to avoid (ablation T3).

Feasibility of a completion-time target vector reduces to a circulation:
``SRC -> job_i`` pinned to ``[A_i, A_i]``, support edges carrying lower
bounds ``w_ij / T_i`` and caps ``d_ij``, sites capped by ``c_j``
(:func:`repro.flownet.lower_bounds.feasible_flow_with_lower_bounds`).

The lexicographic engine prunes criticality probes with a *witness*: a job
whose realized completion time at the optimum is already strictly below the
bound is witnessed non-critical, so only boundary jobs pay a probe flow.
"""

from __future__ import annotations

import numpy as np

from repro._util import ABS_TOL, require
from repro.core.allocation import Allocation, scrub_matrix
from repro.flownet.bipartite import SNK, SRC, job_key, site_key
from repro.flownet.lower_bounds import BoundedEdge, feasible_flow_with_lower_bounds
from repro.model.cluster import Cluster

__all__ = ["optimize_completion_times", "proportional_split", "minimal_stretch"]

#: Relative precision of the binary searches on stretch / makespan.
CT_SEARCH_RTOL = 1e-7


# ----------------------------------------------------------------------
# Feasibility of deadline vectors
# ----------------------------------------------------------------------


def _edges_for_targets(
    cluster: Cluster,
    levels: np.ndarray,
    deadlines: np.ndarray,
) -> list[BoundedEdge] | None:
    """Bounded-edge list for: aggregates pinned to ``levels``, job ``i`` done by ``deadlines[i]``.

    Returns ``None`` when a deadline is locally impossible (lower bounds
    exceed an edge cap or the job's aggregate), letting the caller treat the
    target as infeasible without running a flow.
    """
    W = cluster.workloads
    caps = cluster.demand_caps
    edges: list[BoundedEdge] = []
    for i in range(cluster.n_jobs):
        if levels[i] <= ABS_TOL:
            continue  # job receives nothing; it has no split to optimize
        edges.append(BoundedEdge(SRC, job_key(i), float(levels[i]), float(levels[i])))
        lower_sum = 0.0
        for j in np.flatnonzero(cluster.support[i]):
            lower = 0.0
            if np.isfinite(deadlines[i]) and W[i, j] > 0.0:
                lower = W[i, j] / deadlines[i]
                if lower > caps[i, j] * (1 + 1e-12) + ABS_TOL:
                    return None
                lower = min(lower, float(caps[i, j]))
            lower_sum += lower
            edges.append(BoundedEdge(job_key(i), site_key(int(j)), lower, float(caps[i, j])))
        if lower_sum > levels[i] * (1 + 1e-9) + ABS_TOL:
            return None
    for j in range(cluster.n_sites):
        edges.append(BoundedEdge(site_key(j), SNK, 0.0, float(cluster.capacities[j])))
    return edges


def _solve_targets(cluster: Cluster, levels: np.ndarray, deadlines: np.ndarray) -> np.ndarray | None:
    """Allocation matrix meeting ``deadlines`` with aggregates ``levels``, or ``None``."""
    edges = _edges_for_targets(cluster, levels, deadlines)
    if edges is None:
        return None
    flows = feasible_flow_with_lower_bounds(edges, SRC, SNK)
    if flows is None:
        return None
    matrix = np.zeros((cluster.n_jobs, cluster.n_sites))
    for i in range(cluster.n_jobs):
        for j in np.flatnonzero(cluster.support[i]):
            matrix[i, j] = flows.get((job_key(i), site_key(int(j))), 0.0)
    return scrub_matrix(cluster, matrix)


def _ideal_times(cluster: Cluster, levels: np.ndarray) -> np.ndarray:
    """Per-job lower bound ``W_i / A_i`` (inf for unallocated jobs)."""
    total = cluster.workloads.sum(axis=1)
    with np.errstate(divide="ignore"):
        ideal = np.where(levels > ABS_TOL, total / np.maximum(levels, ABS_TOL), np.inf)
    return ideal


# ----------------------------------------------------------------------
# Lexicographic min-max engine over scaled deadlines
# ----------------------------------------------------------------------


def _scaled_lower_bound(cluster: Cluster, levels: np.ndarray, ref: np.ndarray, active: np.ndarray) -> float:
    """Smallest conceivable scale ``t``: per-job aggregate + per-edge cap bounds."""
    W = cluster.workloads
    caps = cluster.demand_caps
    W_tot = W.sum(axis=1)
    lo = 0.0
    for i in np.flatnonzero(active):
        lo = max(lo, (W_tot[i] / levels[i]) / ref[i])
        for j in np.flatnonzero(cluster.support[i]):
            if W[i, j] > 0.0:
                need = np.inf if caps[i, j] <= ABS_TOL else W[i, j] / caps[i, j]
                lo = max(lo, need / ref[i])
    require(
        np.isfinite(lo),
        "a job has positive work at a site with zero demand cap: unbounded completion time",
    )
    return lo


def _minimize_scaled(
    cluster: Cluster,
    levels: np.ndarray,
    fixed_deadlines: np.ndarray,
    active: np.ndarray,
    ref: np.ndarray,
    rtol: float = CT_SEARCH_RTOL,
) -> tuple[float, np.ndarray]:
    """Minimize ``t`` such that active jobs finish by ``t * ref_i`` (others keep fixed deadlines)."""

    def deadlines(t: float) -> np.ndarray:
        d = fixed_deadlines.copy()
        d[active] = t * ref[active]
        return d

    lo = _scaled_lower_bound(cluster, levels, ref, active)
    hi = max(lo, 1.0)
    matrix = _solve_targets(cluster, levels, deadlines(hi))
    guard = 0
    while matrix is None:
        guard += 1
        require(guard <= 80, "no feasible deadline scale found — are the levels feasible?")
        hi *= 2.0
        matrix = _solve_targets(cluster, levels, deadlines(hi))
    best_t, best = hi, matrix
    lo_t = lo
    while best_t - lo_t > rtol * best_t:
        mid = 0.5 * (lo_t + best_t)
        m = _solve_targets(cluster, levels, deadlines(mid))
        if m is None:
            lo_t = mid
        else:
            best_t, best = mid, m
    return best_t, best


def _completion_of(cluster: Cluster, matrix: np.ndarray) -> np.ndarray:
    """Completion times of a raw matrix (inf where a work edge is starved)."""
    W = cluster.workloads
    with np.errstate(divide="ignore", invalid="ignore"):
        per_edge = np.where(W > 0.0, W / np.maximum(matrix, 1e-300), 0.0)
    return per_edge.max(axis=1)


def _lex_engine(
    cluster: Cluster,
    levels: np.ndarray,
    ref: np.ndarray,
    *,
    rounds: int | None = None,
    rtol: float = CT_SEARCH_RTOL,
) -> np.ndarray:
    """Lexicographically minimize sorted ``T_i / ref_i``; ``rounds`` limits stages.

    ``rounds=1`` reduces to plain min-max of the scaled deadline.
    """
    n = cluster.n_jobs
    active = (levels > ABS_TOL) & np.isfinite(ref) & (ref > 0.0)
    fixed_deadlines = np.full(n, np.inf)
    matrix = np.zeros((n, cluster.n_sites))
    stage = 0
    while active.any():
        stage += 1
        require(stage <= n + 2, "lexicographic CT optimization failed to converge")
        t_star, matrix = _minimize_scaled(cluster, levels, fixed_deadlines, active, ref, rtol=rtol)
        if rounds is not None and stage >= rounds:
            fixed_deadlines[active] = t_star * ref[active]
            active[:] = False
            break
        # Witness pruning: jobs already strictly inside the bound in the
        # realized matrix can individually beat t_star, hence non-critical.
        realized = _completion_of(cluster, matrix)
        boundary = active & (realized >= t_star * ref * (1.0 - 1e-4))
        critical = np.zeros(n, dtype=bool)
        probe_scale = 1.0 - 100.0 * CT_SEARCH_RTOL
        for i in np.flatnonzero(boundary):
            d = fixed_deadlines.copy()
            d[active] = t_star * ref[active]
            d[i] = t_star * ref[i] * probe_scale
            if _solve_targets(cluster, levels, d) is None:
                critical[i] = True
        if not critical.any():
            # Degenerate tie (every boundary job can individually improve,
            # but not jointly): pin the whole boundary to guarantee progress.
            critical = boundary if boundary.any() else active.copy()
        fixed_deadlines[critical] = t_star * ref[critical]
        active &= ~critical
    final = _solve_targets(cluster, levels, fixed_deadlines)
    return final if final is not None else matrix


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def minimal_stretch(cluster: Cluster, levels: np.ndarray) -> tuple[float, np.ndarray]:
    """Smallest uniform stretch ``sigma`` with a feasible split, and that split.

    Every job with a positive aggregate finishes by ``sigma * W_i / A_i``.
    ``sigma = 1`` means a perfectly proportional split is simultaneously
    feasible for everyone; site contention can force ``sigma > 1``.  (The
    full ``stretch`` mode continues lexicographically below the critical
    jobs; this helper exposes just the first-stage optimum.)
    """
    levels = np.asarray(levels, dtype=float)
    ideal = _ideal_times(cluster, levels)
    active = (levels > ABS_TOL) & np.isfinite(ideal)
    if not active.any():
        return 1.0, np.zeros((cluster.n_jobs, cluster.n_sites))
    fixed = np.full(cluster.n_jobs, np.inf)
    sigma, matrix = _minimize_scaled(cluster, levels, fixed, active, ideal)
    return sigma, matrix


def optimize_completion_times(
    cluster: Cluster,
    levels: np.ndarray,
    mode: str = "stretch",
    *,
    policy_suffix: str = "+ct",
) -> Allocation:
    """Re-split aggregate ``levels`` to optimize static completion times.

    Parameters
    ----------
    cluster, levels:
        The instance and a feasible aggregate vector (typically from
        :func:`repro.core.amf.amf_levels`).
    mode:
        ``"stretch"`` (default), ``"makespan"`` or ``"lexicographic"`` —
        see the module docstring.

    Returns an :class:`~repro.core.allocation.Allocation` with the same
    aggregates (up to flow tolerance) and optimized completion times.
    """
    levels = np.asarray(levels, dtype=float)
    require(levels.shape == (cluster.n_jobs,), "levels must have one entry per job")
    ideal = _ideal_times(cluster, levels)
    if mode == "stretch":
        matrix = _lex_engine(cluster, levels, ideal)
    elif mode == "stretch1":
        # Single min-max-stretch round at a loose search tolerance: much
        # cheaper, used per-event by the dynamic simulator where the
        # allocation is recomputed constantly and 0.1% precision is noise.
        matrix = _lex_engine(cluster, levels, ideal, rounds=1, rtol=1e-3)
    elif mode == "makespan":
        matrix = _lex_engine(cluster, levels, np.ones(cluster.n_jobs), rounds=1)
    elif mode == "lexicographic":
        matrix = _lex_engine(cluster, levels, np.ones(cluster.n_jobs))
    else:
        raise ValueError(f"unknown completion-time mode {mode!r}")
    return Allocation(cluster, matrix, policy=f"amf{policy_suffix}:{mode}")


def proportional_split(cluster: Cluster, levels: np.ndarray) -> Allocation:
    """Naive comparator: ``a_ij ∝ w_ij``, clipped to caps, scaled down at hot sites.

    Unlike the flow-based optimizers this may *under-deliver* aggregates at
    contended sites — it is included to quantify what the add-on buys
    (benchmark T3), not as a real policy.
    """
    levels = np.asarray(levels, dtype=float)
    W = cluster.workloads
    totals = W.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(totals[:, None] > 0, W / np.maximum(totals[:, None], ABS_TOL), 0.0)
    matrix = np.minimum(levels[:, None] * frac, cluster.demand_caps)
    usage = matrix.sum(axis=0)
    over = usage > cluster.capacities
    for j in np.flatnonzero(over):
        matrix[:, j] *= cluster.capacities[j] / usage[j]
    return Allocation(cluster, matrix, policy="amf+proportional")
