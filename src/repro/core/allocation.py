"""Allocation: a concrete job-site resource assignment plus derived views."""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro._util import ABS_TOL, fle, require
from repro.model.cluster import Cluster


def scrub_matrix(cluster: Cluster, matrix: np.ndarray) -> np.ndarray:
    """Scrub flow-tolerance residue so the strict Allocation invariants hold.

    Solvers reconstruct matrices from float flows (and sometimes rescale
    rows to hit exact aggregates), which can overshoot a demand cap or a
    site capacity by the flow tolerance.  Clip to caps and rescale
    over-committed site columns; the relative change is bounded by that
    same tolerance, far below anything the experiments can see.
    """
    matrix = np.minimum(matrix, cluster.demand_caps)
    if cluster.is_multiresource:
        # Per-site *per-resource* usage: rescale a column by the tightest
        # resource it overshoots.
        usage = matrix.T @ cluster.job_resource_matrix  # (m, R)
        caps = cluster.site_resource_matrix
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(usage > caps, caps / usage, 1.0)
        shrink = np.nanmin(np.where(np.isfinite(ratio), ratio, 1.0), axis=1)
        for j in np.flatnonzero(shrink < 1.0):
            matrix[:, j] *= shrink[j]
        return matrix
    usage = matrix.sum(axis=0)
    for j in np.flatnonzero(usage > cluster.capacities):
        matrix[:, j] *= cluster.capacities[j] / usage[j]
    return matrix


class Allocation:
    """An ``(n, m)`` allocation matrix bound to its cluster.

    Invariants enforced on construction (up to library tolerance):

    * non-negative entries,
    * zero outside each job's support,
    * per-edge demand caps respected,
    * per-site capacities respected.

    The matrix is defensively copied and frozen; policies return new
    ``Allocation`` objects rather than mutating.
    """

    def __init__(self, cluster: Cluster, matrix: np.ndarray, *, policy: str = "custom"):
        matrix = np.array(matrix, dtype=float)
        require(
            matrix.shape == (cluster.n_jobs, cluster.n_sites),
            f"allocation shape {matrix.shape} != ({cluster.n_jobs}, {cluster.n_sites})",
        )
        require(bool(np.isfinite(matrix).all()), "allocation must be finite")
        require(float(matrix.min(initial=0.0)) >= -ABS_TOL, "allocation must be non-negative")
        matrix = np.maximum(matrix, 0.0)
        off_support = matrix[~cluster.support]
        require(
            off_support.size == 0 or float(off_support.max()) <= ABS_TOL,
            "allocation must be zero outside each job's workload support",
        )
        matrix[~cluster.support] = 0.0
        scale = max(1.0, float(cluster.n_jobs))
        over_cap = matrix - cluster.demand_caps
        require(
            float(over_cap.max(initial=0.0)) <= ABS_TOL * scale,
            f"allocation exceeds a demand cap by {float(over_cap.max(initial=0.0)):g}",
        )
        if cluster.is_multiresource:
            usage = matrix.T @ cluster.job_resource_matrix  # (m, R)
            res_caps = cluster.site_resource_matrix
            for j in range(cluster.n_sites):
                for r, res in enumerate(cluster.resource_names):
                    require(
                        fle(float(usage[j, r]), float(res_caps[j, r]), scale=scale),
                        f"site {cluster.sites[j].name!r} over-allocated on {res!r}: "
                        f"{float(usage[j, r]):g} > {float(res_caps[j, r]):g}",
                    )
        else:
            per_site = matrix.sum(axis=0)
            for j, used in enumerate(per_site):
                require(
                    fle(used, cluster.capacities[j], scale=scale),
                    f"site {cluster.sites[j].name!r} over-allocated: {used:g} > {cluster.capacities[j]:g}",
                )
        matrix.flags.writeable = False
        self.cluster = cluster
        self.matrix = matrix
        self.policy = policy

    # ------------------------------------------------------------------
    @cached_property
    def aggregates(self) -> np.ndarray:
        """``(n,)`` aggregate allocation ``A_i = sum_j a_ij``."""
        arr = self.matrix.sum(axis=1)
        arr.flags.writeable = False
        return arr

    @cached_property
    def site_usage(self) -> np.ndarray:
        """``(m,)`` total allocation per site."""
        arr = self.matrix.sum(axis=0)
        arr.flags.writeable = False
        return arr

    @property
    def utilization(self) -> float:
        """Fraction of total capacity allocated."""
        return float(self.site_usage.sum() / self.cluster.total_capacity)

    def aggregate_of(self, job_name: str) -> float:
        return float(self.aggregates[self.cluster.job_index(job_name)])

    # ------------------------------------------------------------------
    def completion_times(self) -> np.ndarray:
        """``(n,)`` static completion times ``T_i = max_j w_ij / a_ij``.

        A job with positive work at a site but zero allocation there never
        finishes (``inf``).  This is the fluid model of DESIGN.md §1; the
        dynamic simulator in :mod:`repro.sim` refines it with reallocation
        at every event.
        """
        W = self.cluster.workloads
        out = np.zeros(self.cluster.n_jobs)
        for i in range(self.cluster.n_jobs):
            worst = 0.0
            for j in np.flatnonzero(W[i] > 0.0):
                a = self.matrix[i, j]
                if a <= ABS_TOL:
                    worst = np.inf
                    break
                worst = max(worst, W[i, j] / a)
            out[i] = worst
        return out

    def normalized_aggregates(self) -> np.ndarray:
        """Aggregates divided by fairness weights (the quantity AMF equalizes)."""
        return self.aggregates / self.cluster.weights

    def with_matrix(self, matrix: np.ndarray, *, policy: str | None = None) -> "Allocation":
        """A new allocation on the same cluster (used by the CT add-on)."""
        return Allocation(self.cluster, matrix, policy=policy or self.policy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ags = self.aggregates
        return (
            f"Allocation(policy={self.policy!r}, jobs={self.cluster.n_jobs}, "
            f"min={ags.min():.4g}, max={ags.max():.4g}, util={self.utilization:.3f})"
        )

    def pretty(self, max_rows: int = 12) -> str:
        """Small human-readable table (used by examples and the CLI)."""
        lines = [f"policy={self.policy} utilization={self.utilization:.3f}"]
        header = "job".ljust(12) + "".join(s.name.rjust(10) for s in self.cluster.sites[:8]) + "  aggregate"
        lines.append(header)
        for i, job in enumerate(self.cluster.jobs[:max_rows]):
            row = job.name.ljust(12)
            row += "".join(f"{self.matrix[i, j]:10.3f}" for j in range(min(8, self.cluster.n_sites)))
            row += f"  {self.aggregates[i]:9.3f}"
            lines.append(row)
        if self.cluster.n_jobs > max_rows:
            lines.append(f"... ({self.cluster.n_jobs - max_rows} more jobs)")
        return "\n".join(lines)
