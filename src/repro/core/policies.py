"""Policy registry: name -> solver, shared by the simulator, CLI and benchmarks.

Every policy is a callable ``Cluster -> Allocation``.  The registry names
match the labels used in EXPERIMENTS.md:

* ``psmf`` — the paper's baseline (per-site max-min fairness),
* ``amf`` — Aggregate Max-min Fairness (max-flow split),
* ``amf-e`` — enhanced AMF (sharing-incentive floors),
* ``amf-ct`` — AMF + completion-time add-on (uniform-stretch split),
* ``amf-ct-makespan`` / ``amf-ct-lex`` — add-on variants (ablation T3),
* ``amf-prop`` — AMF aggregates with the naive proportional split.
"""

from __future__ import annotations

from typing import Callable

from repro.core.allocation import Allocation
from repro.core.amf import amf_levels, solve_amf
from repro.core.completion import optimize_completion_times, proportional_split
from repro.core.enhanced import sharing_incentive_floors, solve_amf_enhanced
from repro.core.persite import solve_psmf
from repro.model.cluster import Cluster

PolicyFn = Callable[[Cluster], Allocation]


def _amf_ct(mode: str) -> PolicyFn:
    def solve(cluster: Cluster) -> Allocation:
        levels = amf_levels(cluster)
        return optimize_completion_times(cluster, levels, mode=mode)

    solve.__name__ = f"solve_amf_ct_{mode}"
    return solve


def _amf_e_ct(cluster: Cluster) -> Allocation:
    levels = amf_levels(cluster, floors=sharing_incentive_floors(cluster))
    return optimize_completion_times(cluster, levels, mode="stretch", policy_suffix="-e+ct")


def _amf_prop(cluster: Cluster) -> Allocation:
    return proportional_split(cluster, amf_levels(cluster))


POLICIES: dict[str, PolicyFn] = {
    "psmf": solve_psmf,
    "amf": solve_amf,
    "amf-e": solve_amf_enhanced,
    "amf-ct": _amf_ct("stretch"),
    "amf-ct-quick": _amf_ct("stretch1"),
    "amf-ct-makespan": _amf_ct("makespan"),
    "amf-ct-lex": _amf_ct("lexicographic"),
    "amf-e-ct": _amf_e_ct,
    "amf-prop": _amf_prop,
}


def get_policy(name: str) -> PolicyFn:
    """Look up a policy by registry name (raises ``KeyError`` with choices)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; choices: {sorted(POLICIES)}") from None
