"""Policy registry: name -> solver, shared by the simulator, CLI and benchmarks.

Every policy is a callable ``Cluster -> Allocation``.  The registry names
match the labels used in EXPERIMENTS.md:

* ``psmf`` — the paper's baseline (per-site max-min fairness),
* ``amf`` — Aggregate Max-min Fairness (max-flow split),
* ``amf-e`` — enhanced AMF (sharing-incentive floors),
* ``amf-ct`` — AMF + completion-time add-on (uniform-stretch split),
* ``amf-ct-makespan`` / ``amf-ct-lex`` — add-on variants (ablation T3),
* ``amf-prop`` — AMF aggregates with the naive proportional split,
* ``amf-resilient`` — AMF behind the solver fallback chain
  (:class:`ResilientPolicy`: AMF -> per-site max-min -> proportional).

The module also owns the **allocation-error taxonomy** and the
**fallback chain** of the fault-tolerance subsystem (docs/robustness.md):
:func:`validate_allocation` turns a bad solve — a raise, a NaN matrix, an
over-committed site — into a typed :class:`AllocationError` instead of
silent NaN propagation, and :class:`ResilientPolicy` catches those errors
and falls back to progressively simpler (but infallible) policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro._util import ABS_TOL, require
from repro.core.allocation import Allocation, scrub_matrix
from repro.core.amf import amf_levels, solve_amf
from repro.core.completion import optimize_completion_times, proportional_split
from repro.core.enhanced import sharing_incentive_floors, solve_amf_enhanced
from repro.core.persite import solve_psmf
from repro.model.cluster import Cluster

PolicyFn = Callable[[Cluster], Allocation]


# ----------------------------------------------------------------------
# Allocation-error taxonomy
# ----------------------------------------------------------------------


class AllocationError(ValueError):
    """Base of the allocation-failure taxonomy (a solve that cannot be used)."""


class SolverError(AllocationError):
    """The solver raised (or returned something that is not an allocation);
    the original exception, if any, is chained as ``__cause__``."""


class NonFiniteAllocationError(AllocationError):
    """The returned matrix contains NaN or infinite entries."""


class NegativeAllocationError(AllocationError):
    """The returned matrix has entries below zero beyond tolerance."""


class SupportViolationError(AllocationError):
    """Resource was allocated outside a job's workload support."""


class DemandViolationError(AllocationError):
    """A job-site entry exceeds its effective demand cap beyond tolerance."""


class CapacityViolationError(AllocationError):
    """A site's column sum exceeds its capacity beyond tolerance."""


def validate_allocation(cluster: Cluster, alloc) -> Allocation:
    """Check ``alloc`` against the cluster invariants; return it as an
    :class:`~repro.core.allocation.Allocation`.

    Accepts any object with a ``matrix`` attribute (so broken third-party
    policies can be diagnosed), raising the matching
    :class:`AllocationError` subclass on the first violated invariant.
    Violations within the library float tolerance are *not* errors — they
    are scrubbed exactly like :class:`Allocation` itself does.
    """
    matrix = getattr(alloc, "matrix", None)
    if matrix is None:
        raise SolverError(f"policy returned {type(alloc).__name__!r}, not an allocation")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (cluster.n_jobs, cluster.n_sites):
        raise SolverError(
            f"allocation shape {matrix.shape} != ({cluster.n_jobs}, {cluster.n_sites})"
        )
    if not bool(np.isfinite(matrix).all()):
        raise NonFiniteAllocationError("allocation contains NaN or infinite entries")
    scale = max(1.0, float(cluster.n_jobs))
    lowest = float(matrix.min(initial=0.0))
    if lowest < -ABS_TOL * scale:
        raise NegativeAllocationError(f"allocation has negative entry {lowest:g}")
    off_support = matrix[~cluster.support]
    if off_support.size and float(off_support.max()) > ABS_TOL * scale:
        raise SupportViolationError(
            f"allocation of {float(off_support.max()):g} outside a job's workload support"
        )
    over_demand = float((matrix - cluster.demand_caps).max(initial=0.0))
    if over_demand > ABS_TOL * scale:
        raise DemandViolationError(f"allocation exceeds a demand cap by {over_demand:g}")
    usage = matrix.sum(axis=0)
    for j in np.flatnonzero(usage > cluster.capacities * (1.0 + ABS_TOL) + ABS_TOL * scale):
        raise CapacityViolationError(
            f"site {cluster.sites[j].name!r} over-allocated: {float(usage[j]):g} > {float(cluster.capacities[j]):g}"
        )
    if isinstance(alloc, Allocation) and alloc.cluster is cluster:
        return alloc
    return Allocation(
        cluster,
        scrub_matrix(cluster, np.maximum(matrix, 0.0)),
        policy=str(getattr(alloc, "policy", "custom")),
    )


# ----------------------------------------------------------------------
# Plain policies
# ----------------------------------------------------------------------


def _amf_ct(mode: str) -> PolicyFn:
    def solve(cluster: Cluster) -> Allocation:
        levels = amf_levels(cluster)
        return optimize_completion_times(cluster, levels, mode=mode)

    solve.__name__ = f"solve_amf_ct_{mode}"
    return solve


def _amf_e_ct(cluster: Cluster) -> Allocation:
    levels = amf_levels(cluster, floors=sharing_incentive_floors(cluster))
    return optimize_completion_times(cluster, levels, mode="stretch", policy_suffix="-e+ct")


def _amf_prop(cluster: Cluster) -> Allocation:
    return proportional_split(cluster, amf_levels(cluster))


def proportional_fallback(cluster: Cluster) -> Allocation:
    """Last-resort degraded-mode allocation that cannot fail.

    Each site is split among the jobs with work there in proportion to
    their fairness weights, capped by demand; no flows, no iteration, no
    feasibility search.  It is neither max-min fair nor work-maximizing —
    it exists so :class:`ResilientPolicy` always has a floor to stand on.
    """
    matrix = np.zeros((cluster.n_jobs, cluster.n_sites))
    caps = cluster.demand_caps
    weights = cluster.weights
    for j in range(cluster.n_sites):
        present = np.flatnonzero(cluster.support[:, j])
        if present.size == 0:
            continue
        w = weights[present]
        share = float(cluster.capacities[j]) * w / w.sum()
        matrix[present, j] = np.minimum(share, caps[present, j])
    return Allocation(cluster, scrub_matrix(cluster, matrix), policy="proportional-fallback")


POLICIES: dict[str, PolicyFn] = {
    "psmf": solve_psmf,
    "amf": solve_amf,
    "amf-e": solve_amf_enhanced,
    "amf-ct": _amf_ct("stretch"),
    "amf-ct-quick": _amf_ct("stretch1"),
    "amf-ct-makespan": _amf_ct("makespan"),
    "amf-ct-lex": _amf_ct("lexicographic"),
    "amf-e-ct": _amf_e_ct,
    "amf-prop": _amf_prop,
}


def get_policy(name: str) -> PolicyFn:
    """Look up a policy by registry name (raises ``KeyError`` with choices)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; choices: {sorted(POLICIES)}") from None


# ----------------------------------------------------------------------
# Solver fallback chain
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ResilienceStats:
    """Counters accumulated by a :class:`ResilientPolicy` across solves."""

    solves: int = 0
    fallback_activations: int = 0  # solves the primary policy did not serve
    served_by: dict[str, int] = field(default_factory=dict)  # policy -> solves served
    errors: list[str] = field(default_factory=list)  # bounded log of failures
    max_errors: int = 200

    def record_error(self, policy: str, exc: BaseException) -> None:
        if len(self.errors) < self.max_errors:
            self.errors.append(f"{policy}: {type(exc).__name__}: {exc}")

    def record_served(self, policy: str, *, fallback: bool) -> None:
        self.served_by[policy] = self.served_by.get(policy, 0) + 1
        if fallback:
            self.fallback_activations += 1


class ResilientPolicy:
    """Wrap a policy so a bad solve degrades instead of crashing the run.

    Each solve walks the chain ``primary -> *fallbacks -> proportional``:
    a policy that raises, or whose result fails
    :func:`validate_allocation` (NaN levels, an over-committed site, ...),
    is recorded in :attr:`stats` and the next link is tried.  The final
    :func:`proportional_fallback` is closed-form and cannot fail, so the
    chain always returns a valid :class:`Allocation` — this is the
    degraded-mode guarantee the dynamic simulator relies on.

    The default chain is the one from docs/robustness.md:
    AMF -> per-site max-min (``psmf``) -> proportional split.
    """

    def __init__(
        self,
        primary: str | PolicyFn = "amf",
        fallbacks: Sequence[str | PolicyFn] = ("psmf",),
        *,
        stats: ResilienceStats | None = None,
    ):
        def resolve(p: str | PolicyFn) -> tuple[str, PolicyFn]:
            if isinstance(p, str):
                return p, get_policy(p)
            return getattr(p, "__name__", "custom"), p

        self._chain: list[tuple[str, PolicyFn]] = [resolve(primary)]
        self._chain.extend(resolve(p) for p in fallbacks)
        require(len(self._chain) >= 1, "need at least a primary policy")
        self.stats = stats if stats is not None else ResilienceStats()
        self.__name__ = f"resilient:{self._chain[0][0]}"

    def __call__(self, cluster: Cluster) -> Allocation:
        self.stats.solves += 1
        for idx, (name, fn) in enumerate(self._chain):
            try:
                alloc = validate_allocation(cluster, fn(cluster))
            except Exception as exc:  # noqa: BLE001 - recorded, then degraded
                self.stats.record_error(name, exc)
                continue
            self.stats.record_served(name, fallback=idx > 0)
            return alloc
        self.stats.record_served("proportional-fallback", fallback=True)
        return proportional_fallback(cluster)


POLICIES["amf-resilient"] = ResilientPolicy("amf", ("psmf",))
