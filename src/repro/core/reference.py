"""Slow, independent reference solver used as a test oracle.

This module recomputes max-min fair aggregates with *none* of the machinery
the production solver uses: feasibility is decided by ``scipy.optimize.linprog``
on the raw edge variables (not by our Dinic max-flow), stage levels are
located by bisection (not by cutting planes), and freezing is decided by
per-job "can it exceed the level?" LPs (not by min cuts).  Agreement between
:func:`repro.core.amf.amf_levels` and :func:`reference_levels` on randomized
instances is therefore strong evidence both are right.

Complexity is ruinous (O(stages * (probes + n) LPs)); keep instances small.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro._util import require
from repro.model.cluster import Cluster

__all__ = ["reference_levels", "reference_feasible"]


class _EdgeLP:
    """LP scaffolding over the support edges of a cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.edges = [(i, j) for i in range(cluster.n_jobs) for j in range(cluster.n_sites) if cluster.support[i, j]]
        self.n_edges = len(self.edges)
        caps = cluster.demand_caps
        self.bounds = [(0.0, float(caps[i, j])) for (i, j) in self.edges]
        # Site capacity rows: sum of edges into site j <= c_j
        self.site_rows = np.zeros((cluster.n_sites, self.n_edges))
        # Job aggregate rows: sum of edges of job i
        self.job_rows = np.zeros((cluster.n_jobs, self.n_edges))
        for e, (i, j) in enumerate(self.edges):
            self.site_rows[j, e] = 1.0
            self.job_rows[i, e] = 1.0

    def solve(self, requirements: np.ndarray, objective: np.ndarray | None = None):
        """Feasibility / optimization with per-job aggregate lower bounds.

        Returns the ``scipy`` result; ``success`` is False when infeasible.
        """
        A_ub = np.vstack([self.site_rows, -self.job_rows])
        b_ub = np.concatenate([self.cluster.capacities, -np.asarray(requirements, dtype=float)])
        c = np.zeros(self.n_edges) if objective is None else objective
        return linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=self.bounds, method="highs")

    def max_aggregate_of(self, i: int, requirements: np.ndarray):
        """Maximize job ``i``'s aggregate subject to everyone's requirements."""
        c = -self.job_rows[i]
        return self.solve(requirements, objective=c)


def reference_feasible(cluster: Cluster, targets: np.ndarray) -> bool:
    """LP oracle for: do aggregate lower bounds ``targets`` admit an allocation?"""
    return bool(_EdgeLP(cluster).solve(np.asarray(targets, dtype=float)).success)


def reference_levels(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    tol: float = 1e-10,
) -> np.ndarray:
    """Max-min fair aggregates by LP bisection + per-job freezing probes.

    Matches the semantics of :func:`repro.core.amf.amf_levels` (weighted,
    demand-capped, optional floors) to within ``~sqrt(tol)`` per level.
    """
    n = cluster.n_jobs
    if n == 0:
        return np.zeros(0)
    lp = _EdgeLP(cluster)
    caps = cluster.aggregate_demand
    weights = cluster.weights
    if floors is None:
        floors = np.zeros(n)
    floors = np.minimum(np.asarray(floors, dtype=float), caps)
    require(bool(lp.solve(floors).success), "floors are infeasible")

    frozen = np.zeros(n, dtype=bool)
    levels = np.zeros(n)

    def requirements(t: float) -> np.ndarray:
        req = np.clip(t * weights, floors, caps)
        req[frozen] = levels[frozen]
        return req

    t_lo = 0.0
    stage_guard = 0
    while not frozen.all():
        stage_guard += 1
        if stage_guard > n + 2:  # pragma: no cover - defensive
            raise RuntimeError("reference solver failed to converge")
        hi = float(np.max(caps[~frozen] / weights[~frozen], initial=0.0)) + 1.0
        if lp.solve(requirements(hi)).success:
            levels[~frozen] = np.clip(hi * weights, floors, caps)[~frozen]
            break
        lo = t_lo
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if lp.solve(requirements(mid)).success:
                lo = mid
            else:
                hi = mid
        t_star = lo
        req = requirements(t_star)
        # Freeze every active job that cannot rise above its requirement.
        probe_tol = max(1e-7, 100.0 * tol)
        newly = []
        for i in np.flatnonzero(~frozen):
            res = lp.max_aggregate_of(i, req)
            best = -res.fun if res.success else req[i]
            if best <= req[i] + probe_tol * max(1.0, req[i]):
                newly.append(i)
        if not newly:
            # Numeric corner: freeze the closest-to-binding job to guarantee progress.
            newly = [int(np.flatnonzero(~frozen)[0])]
        for i in newly:
            levels[i] = req[i]
            frozen[i] = True
        t_lo = t_star
    return levels
