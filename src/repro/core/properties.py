"""Fairness-property checkers (Pareto, max-min, envy, SI, strategy-proofness).

The paper proves that AMF satisfies Pareto efficiency, envy-freeness and
strategy-proofness but not sharing incentive, and that enhanced AMF restores
sharing incentive.  This module provides *decision procedures* for those
properties so the claims become testable artifacts:

* Pareto efficiency and max-min fairness are decided **exactly** via
  residual-graph augmentation on the job-site network (no sampling).
* Envy-freeness and sharing incentive are direct arithmetic on the
  allocation.
* Strategy-proofness is probed by randomized manipulation attempts (the
  paper proves it; we try to falsify it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro._util import ABS_TOL, flt
from repro.core.allocation import Allocation
from repro.flownet.bipartite import SNK, SRC, build_network, job_key
from repro.flownet.dinic import Dinic
from repro.model.cluster import Cluster
from repro.model.job import Job

#: Relative slack used by all property predicates; fairness violations below
#: this are considered numerical noise.
PROPERTY_TOL = 1e-6


# ----------------------------------------------------------------------
# Pareto efficiency and max-min fairness (exact, flow-based)
# ----------------------------------------------------------------------


def pareto_headroom(alloc: Allocation) -> float:
    """Total aggregate increase available without decreasing any job.

    Returns 0 for Pareto-efficient allocations.  Exact: installs the current
    aggregates as saturated source edges, opens parallel source edges up to
    each job's aggregate demand, and measures the extra max-flow.
    """
    cluster = alloc.cluster
    network = build_network(cluster, alloc.aggregates)
    outcome = network.solve()
    if not outcome.feasible:  # pragma: no cover - Allocation invariants prevent this
        raise ValueError("allocation aggregates are not feasible?")
    extra = cluster.aggregate_demand - alloc.aggregates
    for i in range(cluster.n_jobs):
        if extra[i] > ABS_TOL:
            network.graph.add_edge(SRC, job_key(i), float(extra[i]))
    more = Dinic(network.graph).max_flow(SRC, SNK)
    return float(more.value)


def is_pareto_efficient(alloc: Allocation, tol: float = PROPERTY_TOL) -> bool:
    """Whether no job's aggregate can rise with all others held fixed."""
    scale = max(1.0, alloc.cluster.total_capacity)
    return pareto_headroom(alloc) <= tol * scale


def max_min_violations(alloc: Allocation, tol: float = PROPERTY_TOL) -> list[tuple[str, float]]:
    """Jobs whose aggregate could rise at the expense of only richer jobs.

    For each job ``i``, jobs at a (weighted) level <= ``i``'s are *protected*
    at their current aggregates; richer jobs are released entirely.  If the
    network then admits extra flow into ``i``, the allocation is not max-min
    fair and ``i`` is reported with its available headroom.
    """
    cluster = alloc.cluster
    levels = alloc.normalized_aggregates()
    out: list[tuple[str, float]] = []
    scale = max(1.0, cluster.total_capacity)
    for i in range(cluster.n_jobs):
        if alloc.aggregates[i] >= cluster.aggregate_demand[i] - ABS_TOL * scale:
            continue  # demand-saturated jobs are trivially at their max-min level
        protected = levels <= levels[i] * (1 + PROPERTY_TOL) + PROPERTY_TOL
        targets = np.where(protected, alloc.aggregates, 0.0)
        network = build_network(cluster, targets)
        outcome = network.solve()
        if not outcome.feasible:  # pragma: no cover
            raise ValueError("protected aggregates are not feasible?")
        headroom = cluster.aggregate_demand[i] - alloc.aggregates[i]
        network.graph.add_edge(SRC, job_key(i), float(headroom))
        gain = Dinic(network.graph).max_flow(SRC, SNK).value
        if gain > tol * scale:
            out.append((cluster.jobs[i].name, float(gain)))
    return out


def is_max_min_fair(alloc: Allocation, tol: float = PROPERTY_TOL) -> bool:
    """Whether the aggregate vector is (weighted) max-min fair."""
    return not max_min_violations(alloc, tol=tol)


# ----------------------------------------------------------------------
# Envy-freeness
# ----------------------------------------------------------------------


def usable_value(cluster: Cluster, i: int, bundle: np.ndarray) -> float:
    """Value of an arbitrary site bundle *to job i*: clipped to its support and caps."""
    caps = cluster.demand_caps[i]
    return float(np.minimum(bundle, caps).sum())


def envy_matrix(alloc: Allocation) -> np.ndarray:
    """``(n, n)`` matrix: ``envy[i, k] = usable_i(bundle_k * w_i / w_k) - A_i``.

    Positive entries mean job ``i`` strictly prefers (a weight-scaled copy
    of) job ``k``'s bundle over its own.
    """
    cluster = alloc.cluster
    n = cluster.n_jobs
    w = cluster.weights
    out = np.zeros((n, n))
    for i in range(n):
        for k in range(n):
            if i == k:
                continue
            scaled = alloc.matrix[k] * (w[i] / w[k])
            out[i, k] = usable_value(cluster, i, scaled) - alloc.aggregates[i]
    return out


def envy_violations(alloc: Allocation, tol: float = PROPERTY_TOL) -> list[tuple[str, str, float]]:
    """Pairs ``(envious, envied, amount)`` with envy beyond tolerance."""
    cluster = alloc.cluster
    scale = max(1.0, cluster.total_capacity)
    env = envy_matrix(alloc)
    out = []
    for i in range(cluster.n_jobs):
        for k in range(cluster.n_jobs):
            if env[i, k] > tol * scale:
                out.append((cluster.jobs[i].name, cluster.jobs[k].name, float(env[i, k])))
    return out


def is_envy_free(alloc: Allocation, tol: float = PROPERTY_TOL) -> bool:
    return not envy_violations(alloc, tol=tol)


# ----------------------------------------------------------------------
# Sharing incentive
# ----------------------------------------------------------------------


def sharing_incentive_violations(alloc: Allocation, tol: float = PROPERTY_TOL) -> list[tuple[str, float]]:
    """Jobs whose aggregate is below their equal-partition entitlement.

    Returns ``(job, shortfall)`` pairs; empty means the sharing-incentive
    property holds on this instance.
    """
    cluster = alloc.cluster
    entitlements = np.minimum(cluster.equal_partition_entitlements(), cluster.aggregate_demand)
    scale = max(1.0, cluster.total_capacity)
    short = entitlements - alloc.aggregates
    return [
        (cluster.jobs[i].name, float(short[i]))
        for i in range(cluster.n_jobs)
        if short[i] > tol * scale
    ]


def satisfies_sharing_incentive(alloc: Allocation, tol: float = PROPERTY_TOL) -> bool:
    return not sharing_incentive_violations(alloc, tol=tol)


# ----------------------------------------------------------------------
# Strategy-proofness (randomized falsification probe)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ManipulationResult:
    """One manipulation attempt: which job lied, how, and what it gained."""

    job: str
    kind: str
    truthful_utility: float
    manipulated_utility: float

    @property
    def gain(self) -> float:
        return self.manipulated_utility - self.truthful_utility


def _true_utility(cluster: Cluster, i: int, matrix_row: np.ndarray) -> float:
    """Utility of an allocated row measured against the job's *true* report."""
    return usable_value(cluster, i, matrix_row)


def _manipulations(job: Job, sites: Sequence[str], rng: np.random.Generator) -> list[tuple[str, Job]]:
    """Candidate misreports of ``job``: cap inflation/deflation, hiding and faking sites, skewing."""
    out: list[tuple[str, Job]] = []
    support = sorted(job.workload)
    # inflate every demand cap (claim more parallelism)
    out.append(("inflate-caps", job.with_workload(dict(job.workload), demand={})))
    # deflate caps at a random site
    s = support[int(rng.integers(len(support)))]
    deflated = dict(job.demand)
    deflated[s] = 0.5 * min(job.demand_at(s), max(job.workload[s], 1.0))
    out.append(("deflate-cap", job.with_workload(dict(job.workload), demand=deflated)))
    # hide a site (only if >= 2 in support)
    if len(support) >= 2:
        hidden = dict(job.workload)
        hidden.pop(s)
        demand = {k: v for k, v in job.demand.items() if k != s}
        out.append(("hide-site", job.with_workload(hidden, demand=demand)))
    # claim fake work at a site outside the support
    extra = [x for x in sites if x not in job.workload]
    if extra:
        fake = dict(job.workload)
        fake[extra[int(rng.integers(len(extra)))]] = float(job.total_work)
        out.append(("fake-site", job.with_workload(fake, demand=dict(job.demand))))
    # skew the reported workload distribution (affects CT add-on splits)
    skewed = {k: v * float(rng.uniform(0.2, 5.0)) for k, v in job.workload.items()}
    out.append(("skew-workload", job.with_workload(skewed, demand=dict(job.demand))))
    return out


def strategy_proofness_probe(
    cluster: Cluster,
    solver: Callable[[Cluster], Allocation],
    rng: np.random.Generator,
    attempts: int = 20,
    tol: float = PROPERTY_TOL,
) -> list[ManipulationResult]:
    """Try to find a profitable misreport under ``solver``.

    For each attempt a random job misreports (caps, support or workload
    skew); the resulting allocation is valued against the job's *true*
    support and caps.  Returns the successful manipulations (beyond
    tolerance) — expected empty for AMF / AMF-E / PSMF.
    """
    truthful = solver(cluster)
    scale = max(1.0, cluster.total_capacity)
    results: list[ManipulationResult] = []
    site_names = [s.name for s in cluster.sites]
    for _ in range(attempts):
        i = int(rng.integers(cluster.n_jobs))
        job = cluster.jobs[i]
        for kind, lie in _manipulations(job, site_names, rng):
            manipulated = solver(cluster.replace_job(lie))
            row = manipulated.matrix[manipulated.cluster.job_index(job.name)]
            # Map the manipulated row back onto the true cluster's site axis
            # (site order is preserved by replace_job).
            util = _true_utility(cluster, i, row)
            base = _true_utility(cluster, i, truthful.matrix[i])
            if flt(base + tol * scale, util):
                results.append(ManipulationResult(job.name, kind, base, util))
    return results


# ----------------------------------------------------------------------
# Monotonicity axioms (classic in this literature; probes, not proofs)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class MonotonicityBreach:
    """One observed monotonicity failure."""

    kind: str  # "population" or "resource"
    trigger: str  # departing job / grown site
    victim: str  # job whose aggregate decreased
    before: float
    after: float


def population_monotonicity_probe(
    cluster: Cluster,
    solver: Callable[[Cluster], Allocation],
    tol: float = PROPERTY_TOL,
) -> list[MonotonicityBreach]:
    """Does any job *lose* when another job departs?

    Population monotonicity says freeing a competitor's resources should
    never hurt the remaining jobs.  Max-min style policies usually satisfy
    it, but cross-site compensation makes it non-obvious for AMF — hence a
    probe over every single-job departure.
    """
    base = solver(cluster)
    scale = max(1.0, cluster.total_capacity)
    out: list[MonotonicityBreach] = []
    if cluster.n_jobs < 2:
        return out
    for departing in [j.name for j in cluster.jobs]:
        reduced = solver(cluster.without_job(departing))
        for job in reduced.cluster.jobs:
            before = base.aggregate_of(job.name)
            after = reduced.aggregate_of(job.name)
            if after < before - tol * scale:
                out.append(MonotonicityBreach("population", departing, job.name, before, after))
    return out


def resource_monotonicity_probe(
    cluster: Cluster,
    solver: Callable[[Cluster], Allocation],
    factor: float = 1.5,
    tol: float = PROPERTY_TOL,
) -> list[MonotonicityBreach]:
    """Does any job *lose* when a site's capacity grows?

    Resource monotonicity is known to be violable by constrained max-min
    fairness in networks; the probe grows each site by ``factor`` in turn
    and reports any job whose aggregate drops.  Finding breaches is an
    *informative* outcome, not a bug — T1's companion text discusses it.
    """
    from repro.model.cluster import Cluster as _Cluster

    base = solver(cluster)
    scale = max(1.0, cluster.total_capacity)
    out: list[MonotonicityBreach] = []
    for grown in cluster.sites:
        new_sites = [s.scaled(factor) if s.name == grown.name else s for s in cluster.sites]
        bigger = solver(_Cluster(new_sites, cluster.jobs))
        for job in cluster.jobs:
            before = base.aggregate_of(job.name)
            after = bigger.aggregate_of(job.name)
            if after < before - tol * scale:
                out.append(MonotonicityBreach("resource", grown.name, job.name, before, after))
    return out


# ----------------------------------------------------------------------
# Consolidated report (benchmark T1)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class PropertyReport:
    """Property satisfaction evidence for one allocation."""

    policy: str
    pareto: bool
    max_min: bool
    envy_free: bool
    sharing_incentive: bool
    pareto_headroom: float = 0.0
    si_shortfall: float = 0.0
    details: dict = field(default_factory=dict)


def check_all(alloc: Allocation, *, expect_max_min: bool = True) -> PropertyReport:
    """Run every static property check against an allocation."""
    headroom = pareto_headroom(alloc)
    si = sharing_incentive_violations(alloc)
    scale = max(1.0, alloc.cluster.total_capacity)
    return PropertyReport(
        policy=alloc.policy,
        pareto=headroom <= PROPERTY_TOL * scale,
        max_min=is_max_min_fair(alloc) if expect_max_min else False,
        envy_free=is_envy_free(alloc),
        sharing_incentive=not si,
        pareto_headroom=headroom,
        si_shortfall=max((v for _, v in si), default=0.0),
        details={"si_violations": si},
    )
