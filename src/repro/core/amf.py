"""Aggregate Max-min Fairness (AMF) — the paper's core contribution.

AMF requires the vector of *aggregate* allocations ``A_i = sum_j a_ij`` to be
(weighted) max-min fair over the feasible region cut out by site capacities,
per-edge demand caps and locality support.  The feasible aggregates form a
polymatroid-like region whose facets are min cuts of the job-site network,
which suggests the exact algorithm implemented here:

**Progressive filling with cutting-plane bottleneck detection.**  Jobs start
*active* at a common normalized level ``lam`` (job ``i`` targets
``clip(lam * weight_i, floor_i, cap_i)``).  Each round finds the largest
``lam`` feasible together with the already-frozen jobs:

1. Maintain a pool of *valid site-cut constraints*: for a site set ``S``,
   ``sum_i max(0, A_i - cross_i(S)) <= cap(S)`` where ``cross_i(S)`` is
   job ``i``'s demand cap out of ``S`` (seeded with ``S`` = all sites,
   i.e. the total-capacity cut).
2. Propose ``lam = min_S max{lam : LHS_S(lam) <= cap(S)}`` — exact via the
   piecewise-linear :class:`SiteCutFill` (no binary search).
3. Check feasibility at the proposal with one max-flow.  Feasible: the
   proposal is this round's max-min level, because any larger ``lam``
   violates a recorded cut.  Infeasible: the min cut yields a *new violated
   constraint*; add it and repeat (``lam`` strictly decreases, so the loop
   adds each cut at most once).
4. Freeze every active job that is demand-saturated or sits in a binding
   cut; the rest continue into the next round.

The result is exact up to flow tolerance (no level is located by search) and
is verified max-min by :mod:`repro.core.properties` in the test suite, with
:mod:`repro.core.reference` as an independent oracle.

``floors`` implement the enhanced AMF of the paper (sharing-incentive
guarantees, :mod:`repro.core.enhanced`): progressive filling then runs
*above* per-job guaranteed aggregates.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro._util import ABS_TOL, feq, require
from repro.core.allocation import Allocation, scrub_matrix
from repro.flownet.bipartite import build_network
from repro.flownet.parametric import ParametricFeasibility
from repro.model.cluster import Cluster
from repro.obs.instruments import record_amf, record_ggt_sweep_depth
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER, span

__all__ = [
    "solve_amf",
    "amf_levels",
    "amf_levels_bisect",
    "AmfDiagnostics",
    "PiecewiseFill",
    "SiteCutFill",
    "CutBasis",
]


@dataclass(slots=True)
class AmfDiagnostics:
    """Solver instrumentation (reported by the scalability benchmark F8).

    ``feasibility_solves`` counts every probe the solver *asked*;
    the ``probes_*`` fields break down how the parametric oracle *answered*
    them (all zero on the legacy backend), so warm-reuse is observable all
    the way up to the service ``/stats`` endpoint.
    """

    rounds: int = 0
    feasibility_solves: int = 0
    cuts_generated: int = 0
    frozen_by_cap: int = 0
    frozen_by_cut: int = 0
    warm_cuts_seeded: int = 0  # valid cuts replayed from a CutBasis
    probes_early_accept: int = 0  # probes answered by feasible-dominance
    probes_cut_reject: int = 0  # probes answered by a stored site cut
    probes_warm: int = 0  # flow solves continuing from existing flow
    probes_cold: int = 0  # flow solves starting from zero flow
    probe_rollbacks: int = 0  # probes that cancelled flow before solving
    jobs_folded: int = 0  # degree-1 jobs folded out of the flow network
    # GGT one-shot sweep (all zero unless oracle="ggt")
    ggt_sweeps: int = 0  # parametric sweeps run
    ggt_sweep_flows: int = 0  # flow solves paid by sweeps (incl. contracted)
    ggt_contractions: int = 0  # contracted subgraph views built
    ggt_breakpoints: int = 0  # leximin breakpoints recovered by sweeps
    ggt_flows_avoided: int = 0  # post-sweep probes answered without a flow
    # AMRF multi-resource engine (all zero on scalar / reduced solves)
    amrf_rounds: int = 0  # progressive-filling rounds (max-t LPs)
    amrf_lps: int = 0  # LP solves paid (incl. warm-basis re-solves)
    amrf_probes: int = 0  # per-job freezing probes actually run
    amrf_probes_skipped: int = 0  # probes answered by the max-t vertex witness
    amrf_basis_rows_reused: int = 0  # binding rows seeded from an AmrfBasis
    amrf_table_hits: int = 0  # solves served whole from the table cache

    @property
    def probes_reused(self) -> int:
        """Probes that avoided a cold flow solve (the warm-reuse headline)."""
        return self.probes_early_accept + self.probes_cut_reject + self.probes_warm


class CutBasis:
    """Persistent cutting-plane state, reusable across *related* solves.

    For a site set ``S``, max-flow duality (Gale–Hoffman) gives the
    *tightest* valid inequality induced by ``S`` on **any** cluster:

    ``sum_i max(0, A_i - cross_i(S))  <=  cap(S)``  with
    ``cross_i(S) = sum_{j not in S} d_ij``.

    The classic job-set cut ``sum_{i in J} A_i <= cap(S) + sum_{i in J,
    j not in S} d_ij`` is the relaxation obtained by freezing one job set
    ``J`` into that inequality; under churn a stored ``J`` goes stale (new
    arrivals are missing from it, so the replayed cut is valid but loose
    and buys no feasibility probes).  The site-cut form re-derives the
    maximizing job set ``J = { i : A_i > cross_i(S) }`` at every fill
    level for whatever jobs the next cluster has, so a bottleneck site set
    stays *tight* as jobs come and go.  The basis therefore stores only
    site-*name* sets and re-instantiates ``cross``/``cap`` against the
    current cluster (vanished sites are dropped; the inequality stays
    valid).

    Seeding a solve with these cuts cannot change its result — feasibility
    is still certified by max-flow every round — it only lets the solver
    skip re-discovering bottlenecks it has already seen, which is what makes
    the online service's warm-started re-solves cheap
    (:class:`repro.service.solver.IncrementalAmfSolver`).

    The pool is a bounded LRU (``max_cuts``): recently re-recorded cuts
    survive, stale ones age out, so long-lived daemons don't accrete
    constraints from clusters that no longer resemble the present one.
    """

    __slots__ = ("_cuts", "max_cuts")

    def __init__(self, max_cuts: int = 64):
        require(max_cuts >= 1, "max_cuts must be at least 1")
        self.max_cuts = max_cuts
        self._cuts: OrderedDict[frozenset[str], None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._cuts)

    def clear(self) -> None:
        self._cuts.clear()

    def record(self, site_names: frozenset[str]) -> None:
        """Remember one site set ``S`` (refreshes LRU position if known)."""
        key = frozenset(site_names)
        if key in self._cuts:
            self._cuts.move_to_end(key)
            return
        self._cuts[key] = None
        while len(self._cuts) > self.max_cuts:
            self._cuts.popitem(last=False)

    def sets(self) -> tuple[frozenset[str], ...]:
        """Stored site-name sets, LRU order (oldest first).

        The shard layer uses this to clone a basis into a fork-pool worker
        and to fold a worker's discoveries back into the pooled basis
        (:mod:`repro.core.sharding`).
        """
        return tuple(self._cuts)

    def instantiate(self, cluster: Cluster) -> list[frozenset[int]]:
        """Stored site sets as index sets on ``cluster`` (empty sets dropped)."""
        site_idx = {s.name: j for j, s in enumerate(cluster.sites)}
        out: list[frozenset[int]] = []
        for sites in self._cuts:
            idx = frozenset(site_idx[n] for n in sites if n in site_idx)
            if idx:
                out.append(idx)
        return out


class _PiecewiseEvaluator:
    """Segment-sweep machinery shared by :class:`PiecewiseFill` and
    :class:`SiteCutFill`: a continuous, non-decreasing piecewise-linear
    function built from ``(level, const_jump, slope_jump)`` event rows.
    """

    __slots__ = ("base", "levels", "consts", "slopes", "total_cap", "top_level")

    def _build(self, events: np.ndarray, base: float, total_cap: float, top_level: float) -> None:
        order = np.argsort(events[:, 0], kind="stable")
        events = events[order]
        self.base = base  # value before any breakpoint
        self.levels = events[:, 0]
        self.consts = base + np.cumsum(events[:, 1])
        self.slopes = np.cumsum(events[:, 2])
        self.total_cap = total_cap  # sup of the function (value as lam -> inf)
        self.top_level = top_level

    def value(self, lam: float) -> float:
        """Evaluate the function at ``lam`` (``lam`` must be >= 0)."""
        k = int(np.searchsorted(self.levels, lam, side="right")) - 1
        if k < 0:
            return self.base
        return float(self.consts[k] + self.slopes[k] * lam)

    def max_level(self, rhs: float) -> float:
        """``sup { lam >= 0 : value(lam) <= rhs }`` (``inf`` when never binding; 0 when even the base exceeds ``rhs``)."""
        tol = ABS_TOL * max(1.0, abs(rhs))
        if self.total_cap <= rhs + tol:
            return np.inf
        # values at each segment's *start* (== end of previous segment, by continuity):
        seg_start_vals = self.consts + self.slopes * self.levels
        # first segment whose start value exceeds rhs — with float slack: a
        # constraint frozen exactly tight in an earlier round can have its
        # base land an ulp above rhs, and must read as a plateau, not as
        # "already violated at lam = 0".
        idx = int(np.searchsorted(seg_start_vals, rhs + tol, side="right"))
        if idx == 0:
            # even the base value is above rhs (only possible with infeasible
            # floors, which the solver rejects up front) — degenerate answer.
            return 0.0
        k = idx - 1  # value(segment start of k) <= rhs + tol < value(segment start of k+1)
        c, s = self.consts[k], self.slopes[k]
        if s <= 0.0:
            # Plateau sitting at ~rhs: the sup is where the function finally
            # climbs past it, i.e. the next breakpoint.
            return float(self.levels[idx]) if idx < len(self.levels) else np.inf
        return float((rhs - c) / s)


class PiecewiseFill(_PiecewiseEvaluator):
    """Exact evaluator for ``G(lam) = sum_i clip(lam * w_i, f_i, c_i)``.

    ``G`` is continuous, non-decreasing and piecewise linear; this class
    precomputes its segment structure (event sweep over the per-job
    breakpoints ``f_i / w_i`` and ``c_i / w_i``) so that

    * :meth:`value` evaluates ``G`` in ``O(log n)``, and
    * :meth:`max_level` solves ``sup { lam : G(lam) <= rhs }`` exactly.

    Frozen jobs are modelled by ``f_i = c_i = level_i`` (constant terms).
    """

    __slots__ = ()

    def __init__(self, floors: np.ndarray, caps: np.ndarray, weights: np.ndarray):
        caps = np.asarray(caps, dtype=float)
        floors = np.minimum(np.asarray(floors, dtype=float), caps)
        weights = np.asarray(weights, dtype=float)
        require(bool((weights > 0).all()), "weights must be positive")
        require(bool(np.isfinite(caps).all()), "caps must be finite (clip to site capacity first)")
        starts = floors / weights
        ends = caps / weights
        # Event sweep: +w slope when a job starts rising, -w / +c when it caps.
        events = np.concatenate(
            [
                np.stack([starts, -floors, weights], axis=1),
                np.stack([ends, caps, -weights], axis=1),
            ]
        )
        self._build(events, float(floors.sum()), float(caps.sum()), float(ends.max(initial=0.0)))


class SiteCutFill(_PiecewiseEvaluator):
    """Exact evaluator for the site-cut constraint LHS

    ``H(lam) = sum_i max(0, clip(lam * w_i, f_i, c_i) - x_i)``

    where ``x_i`` is job ``i``'s *crossing capacity* out of a site set
    ``S`` (its demand caps to sites outside ``S``).  ``H(lam) <= cap(S)``
    is the tightest valid inequality induced by ``S`` (Gale–Hoffman): the
    maximizing job set ``J = { i : t_i(lam) > x_i }`` is implied at every
    level rather than frozen in, which is what lets :class:`CutBasis`
    persist bottleneck *site sets* across job churn.

    Sweep identity: ``max(0, t - x) = clip(lam*w, f, c) -
    clip(lam*w, min(f, x), min(c, x))`` — a difference of two
    :class:`PiecewiseFill`-style terms, i.e. four events per job.  With
    ``x = 0`` this degenerates to :class:`PiecewiseFill` exactly.
    """

    __slots__ = ()

    def __init__(self, floors: np.ndarray, caps: np.ndarray, weights: np.ndarray, cross: np.ndarray):
        caps = np.asarray(caps, dtype=float)
        floors = np.minimum(np.asarray(floors, dtype=float), caps)
        weights = np.asarray(weights, dtype=float)
        cross = np.asarray(cross, dtype=float)
        require(bool((weights > 0).all()), "weights must be positive")
        require(bool(np.isfinite(caps).all()), "caps must be finite (clip to site capacity first)")
        require(bool((cross >= 0).all()), "crossing capacities must be non-negative")
        m_floors = np.minimum(floors, cross)
        m_caps = np.minimum(caps, cross)
        events = np.concatenate(
            [
                np.stack([floors / weights, -floors, weights], axis=1),
                np.stack([caps / weights, caps, -weights], axis=1),
                np.stack([m_floors / weights, m_floors, -weights], axis=1),
                np.stack([m_caps / weights, -m_caps, weights], axis=1),
            ]
        )
        self._build(
            events,
            float((floors - m_floors).sum()),
            float((caps - m_caps).sum()),
            float((caps / weights).max(initial=0.0)),
        )


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------


class _RoundPool:
    """All site-cut constraints of one round, built and proposed *batched*.

    Semantically K independent :class:`SiteCutFill` evaluators (one per
    pooled cut), but constructed as a single ``(K, 4n)`` event sweep so a
    warm-started solve carrying many persisted cuts does not pay K
    Python-level constructions per round — that overhead would eat the
    very feasibility-probe savings the warm start buys.
    """

    __slots__ = ("crosses", "rhs", "levels", "consts", "slopes", "total_cap", "top_level")

    def __init__(
        self,
        floors: np.ndarray,
        caps: np.ndarray,
        weights: np.ndarray,
        crosses: np.ndarray,
        rhs: np.ndarray,
    ):
        k, n = crosses.shape
        floors = np.minimum(floors, caps)
        m_floors = np.minimum(floors, crosses)  # (K, n)
        m_caps = np.minimum(caps, crosses)
        f_b = np.broadcast_to(floors, (k, n))
        c_b = np.broadcast_to(caps, (k, n))
        w_b = np.broadcast_to(weights, (k, n))
        levels = np.concatenate([f_b / w_b, c_b / w_b, m_floors / w_b, m_caps / w_b], axis=1)
        consts = np.concatenate([-f_b, c_b, m_floors, -m_caps], axis=1)
        slopes = np.concatenate([w_b, -w_b, -w_b, w_b], axis=1)
        order = np.argsort(levels, axis=1, kind="stable")
        self.levels = np.take_along_axis(levels, order, axis=1)
        base = (f_b - m_floors).sum(axis=1)
        self.consts = base[:, None] + np.cumsum(np.take_along_axis(consts, order, axis=1), axis=1)
        self.slopes = np.cumsum(np.take_along_axis(slopes, order, axis=1), axis=1)
        self.total_cap = (c_b - m_caps).sum(axis=1)
        self.top_level = float((caps / weights).max(initial=0.0))
        self.crosses = crosses
        self.rhs = rhs

    def max_levels(self) -> np.ndarray:
        """Per-cut ``sup { lam >= 0 : H_k(lam) <= rhs_k }`` — the vectorized
        twin of :meth:`_PiecewiseEvaluator.max_level` (same tolerance, same
        degenerate/plateau handling)."""
        k_cuts, n_events = self.levels.shape
        tol = ABS_TOL * np.maximum(1.0, np.abs(self.rhs))
        thr = self.rhs + tol
        seg_start_vals = self.consts + self.slopes * self.levels
        # rows are non-decreasing, so the count of starts <= thr is the
        # searchsorted(side="right") index:
        idx = (seg_start_vals <= thr[:, None]).sum(axis=1)
        k = np.maximum(idx - 1, 0)
        c = np.take_along_axis(self.consts, k[:, None], axis=1)[:, 0]
        s = np.take_along_axis(self.slopes, k[:, None], axis=1)[:, 0]
        with np.errstate(divide="ignore", invalid="ignore"):
            crossing = (self.rhs - c) / s
        nxt = np.minimum(idx, n_events - 1)
        plateau_end = np.take_along_axis(self.levels, nxt[:, None], axis=1)[:, 0]
        per = np.where(s > 0.0, crossing, np.where(idx < n_events, plateau_end, np.inf))
        per = np.where(idx == 0, 0.0, per)
        return np.where(self.total_cap <= thr, np.inf, per)

    def propose(self) -> tuple[float, np.ndarray]:
        """Largest lam satisfying all constraints, plus indices of binding ones."""
        per = self.max_levels()
        lam = float(per.min())
        binding = np.nonzero(per <= lam * (1 + 1e-12) + ABS_TOL)[0]
        return lam, binding


def _site_cross(cluster: Cluster, sites: frozenset[int]) -> np.ndarray:
    """Per-job crossing capacity out of site set ``sites`` (demand caps to the complement)."""
    outside = np.ones(cluster.n_sites, dtype=bool)
    outside[list(sites)] = False
    return cluster.demand_caps[:, outside].sum(axis=1)


class _FeasibilityAdapter:
    """The shared probe state of :func:`amf_levels` and
    :func:`amf_levels_bisect`: the λ→targets map plus the feasibility oracle
    behind one interface (both solver variants used to carry near-identical
    ``targets_at`` / ``feasible`` closures).

    ``backend`` selects the warm :class:`ParametricFeasibility` engine
    (``"parametric"``, the default), the GGT one-shot sweep oracle
    (``"ggt"``, :class:`~repro.flownet.ggt.GgtFeasibility` — same verdicts,
    but the whole breakpoint schedule is recovered up front so feasible
    probes stop paying flow solves), or the original cold-restart
    :class:`~repro.flownet.bipartite.FeasibilityNetwork` (``"legacy"``,
    kept as the control arm for benchmarks and A/B tests).
    """

    __slots__ = (
        "cluster",
        "floors",
        "caps",
        "weights",
        "levels",
        "frozen",
        "diag",
        "oracle",
        "network",
        "_finished",
    )

    def __init__(
        self,
        cluster: Cluster,
        floors: np.ndarray,
        caps: np.ndarray,
        diag: AmfDiagnostics,
        *,
        basis: CutBasis | None = None,
        backend: str = "parametric",
    ):
        require(backend in ("parametric", "legacy", "ggt"), f"unknown feasibility backend {backend!r}")
        self.cluster = cluster
        self.floors = floors
        self.caps = caps
        self.weights = cluster.weights
        self.levels = floors.copy()  # frozen jobs keep their entry; active entries are provisional
        self.frozen = np.zeros(cluster.n_jobs, dtype=bool)
        self.diag = diag
        self._finished = False
        if backend == "ggt":
            from repro.flownet.ggt import GgtFeasibility  # lazy: ggt imports this module

            cut_sets = basis.instantiate(cluster) if basis is not None else ()
            self.oracle = GgtFeasibility(cluster, cut_sets, floors=floors)
            self.network = None
        elif backend == "parametric":
            cut_sets = basis.instantiate(cluster) if basis is not None else ()
            self.oracle = ParametricFeasibility(cluster, cut_sets)
            self.network = None
        else:
            self.oracle = None
            self.network = build_network(cluster)

    def targets_at(self, lam: float) -> np.ndarray:
        t = np.clip(lam * self.weights, self.floors, self.caps)
        t[self.frozen] = self.levels[self.frozen]
        return t

    def feasible(
        self, targets: np.ndarray, *, need_cut: bool = False
    ) -> tuple[bool, frozenset[int], frozenset[int]]:
        """One feasibility probe.  ``need_cut`` forces an infeasible verdict
        to carry a genuinely new min cut (see :meth:`ParametricFeasibility.probe`)."""
        self.diag.feasibility_solves += 1
        if self.oracle is not None:
            out = self.oracle.probe(targets, need_cut=need_cut)
            return out.feasible, out.cut_jobs, out.cut_sites
        self.network.set_targets(targets)
        outcome = self.network.solve()
        return outcome.feasible, outcome.cut_jobs, outcome.cut_sites

    def finish(self) -> None:
        """Fold the oracle's reuse counters into the diagnostics record.

        Idempotent: the fill loops call it from ``finally`` blocks so the
        warm oracle's counters are never leaked on an error path, and a
        happy-path call followed by the ``finally`` one must not
        double-count.
        """
        if self.oracle is None or self._finished:
            return
        self._finished = True
        st = self.oracle.stats
        self.diag.probes_early_accept += st.early_accepts
        self.diag.probes_cut_reject += st.cut_rejects
        self.diag.probes_warm += st.warm_solves
        self.diag.probes_cold += st.cold_solves
        self.diag.probe_rollbacks += st.rollbacks
        self.diag.jobs_folded += st.folded_jobs
        gg = getattr(self.oracle, "ggt", None)
        if gg is not None:
            self.diag.ggt_sweeps += gg.sweeps
            self.diag.ggt_sweep_flows += gg.sweep_flows
            self.diag.ggt_contractions += gg.contractions
            self.diag.ggt_breakpoints += gg.breakpoints
            self.diag.ggt_flows_avoided += gg.flows_avoided
            if gg.sweeps:
                record_ggt_sweep_depth(gg.max_depth)

    def realize(self, levels: np.ndarray) -> np.ndarray | None:
        """The flow already carried by the oracle as a ``(n, m)`` split, when
        it matches ``levels`` — saves :func:`solve_amf` a cold re-solve."""
        if self.oracle is None:
            return None
        return self.oracle.allocation_matrix(levels)


@contextmanager
def _observed_solve(variant: str, cluster: Cluster, diag: AmfDiagnostics):
    """Span + diagnostics-delta recording around one solver entry.

    The registry folds in the *delta* of ``diag`` over this entry (one
    mutable diagnostics record is commonly shared across consecutive
    solver calls), so registry totals bit-match the diagnostics no matter
    how callers batch them.  Disabled observability costs two attribute
    reads.
    """
    if not (REGISTRY.enabled or TRACER.enabled):
        yield
        return
    before = dataclasses.replace(diag)
    with span("amf.solve", variant=variant, jobs=cluster.n_jobs, sites=cluster.n_sites):
        yield
    record_amf(diag, since=before)


def amf_levels(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
    basis: CutBasis | None = None,
    oracle: str = "parametric",
) -> np.ndarray:
    """Compute the AMF aggregate vector ``(A_1..A_n)`` for ``cluster``.

    Parameters
    ----------
    cluster:
        The instance.
    floors:
        Optional per-job guaranteed aggregates (enhanced AMF).  Must be
        jointly feasible; :class:`ValueError` is raised otherwise.
    diagnostics:
        Optional mutable instrumentation record.
    basis:
        Optional :class:`CutBasis` to warm-start from.  Its cuts are seeded
        into the constraint pool before the first round, and every cut this
        solve discovers is recorded back, so consecutive solves on similar
        clusters converge with fewer max-flow feasibility checks.  Purely an
        accelerator: the result is identical with or without it.
    oracle:
        Feasibility backend: ``"parametric"`` (default; warm-started probes
        on one residual graph, see :mod:`repro.flownet.parametric`),
        ``"ggt"`` (one GGT divide-and-conquer sweep recovers the full
        λ→breakpoint schedule up front, then freezing replays the schedule
        analytically — feasible probes stop paying flow solves, see
        :mod:`repro.flownet.ggt`), or ``"legacy"`` (cold-restart
        :class:`FeasibilityNetwork`).  All return identical verdicts; the
        choice only affects speed.

    Returns
    -------
    ``(n,)`` aggregates of the (weighted, floor-respecting) max-min fair
    allocation.  Use :func:`solve_amf` for a realized job-site matrix.

    Multi-resource clusters are accepted when they reduce exactly to the
    scalar problem (R=1 or one globally dominant resource); the returned
    levels are then in reduced units ``k_i * A_i`` with ``k_i`` the job's
    dominant-resource demand (``k_i = 1`` for unit-demand jobs, making the
    reduction a pure resource rename).  Irreducible vector clusters have
    no scalar level semantics — use :func:`solve_amf`.
    """
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if cluster.is_multiresource:
        from repro.multiresource.engine import scalar_reduction

        red = scalar_reduction(cluster)
        require(
            red is not None,
            "amf_levels needs a scalar-reducible cluster; use solve_amf for general resource vectors",
        )
        scalar, k = red
        scaled = None if floors is None else np.asarray(floors, dtype=float) * k
        return amf_levels(scalar, scaled, diag, basis, oracle)
    with _observed_solve("levels", cluster, diag):
        levels, _ = _fill_levels(cluster, floors, diag, basis, oracle)
    return levels


def _fill_levels(
    cluster: Cluster,
    floors: np.ndarray | None,
    diag: AmfDiagnostics,
    basis: CutBasis | None,
    backend: str,
) -> tuple[np.ndarray, _FeasibilityAdapter | None]:
    """Progressive filling; returns the levels plus the (warm) adapter so
    :func:`solve_amf` can realize the matrix from the oracle's final flow."""
    n = cluster.n_jobs
    if n == 0:
        return np.zeros(0), None
    caps = cluster.aggregate_demand.copy()
    weights = cluster.weights
    if floors is None:
        floors = np.zeros(n)
    else:
        floors = np.minimum(np.asarray(floors, dtype=float), caps)
        require(floors.shape == (n,), "floors must have one entry per job")
        require(float(floors.min(initial=0.0)) >= -ABS_TOL, "floors must be non-negative")
        floors = np.maximum(floors, 0.0)

    adapter = _FeasibilityAdapter(cluster, floors, caps, diag, basis=basis, backend=backend)
    try:
        return _fill_levels_inner(cluster, floors, caps, weights, diag, basis, adapter)
    finally:
        # every exit — including the guard-loop RuntimeErrors — must fold
        # the warm oracle's probe counters into the diagnostics record
        adapter.finish()


def _fill_levels_inner(
    cluster: Cluster,
    floors: np.ndarray,
    caps: np.ndarray,
    weights: np.ndarray,
    diag: AmfDiagnostics,
    basis: CutBasis | None,
    adapter: _FeasibilityAdapter,
) -> tuple[np.ndarray, _FeasibilityAdapter]:
    n = cluster.n_jobs
    targets_at = adapter.targets_at
    feasible = adapter.feasible
    levels = adapter.levels
    frozen = adapter.frozen

    ok, _, _ = feasible(targets_at(0.0))
    if not ok:
        raise ValueError("floors are infeasible for this cluster")

    # Cut constraints are valid for the whole solve (their cross/RHS depend
    # only on the cluster), so the pool persists across rounds; only the
    # piecewise LHS structure is rebuilt as jobs freeze.  Each cut is a site
    # set S enforced in its tightest (Gale–Hoffman) form — the seed S = all
    # sites has zero crossing capacity, i.e. the plain total-capacity fill.
    all_sites = frozenset(range(cluster.n_sites))
    cut_crosses: list[np.ndarray] = [np.zeros(n)]
    cut_rhs: list[float] = [cluster.total_capacity]
    seen_sites = {all_sites}
    if basis is not None:
        for sites in basis.instantiate(cluster):
            if sites in seen_sites:
                continue
            seen_sites.add(sites)
            cut_crosses.append(_site_cross(cluster, sites))
            cut_rhs.append(float(cluster.capacities[sorted(sites)].sum()))
            diag.warm_cuts_seeded += 1

    lam_done = 0.0
    while not frozen.all():
        diag.rounds += 1
        # Effective piecewise parameters: frozen jobs contribute constants.
        f_eff = np.where(frozen, levels, floors)
        c_eff = np.where(frozen, levels, caps)

        guard = 0
        while True:
            guard += 1
            if guard > 10 * (n + cluster.n_sites) + 100:  # pragma: no cover
                raise RuntimeError("AMF cutting-plane loop failed to converge (numeric breakdown)")
            pool = _RoundPool(f_eff, c_eff, weights, np.stack(cut_crosses), np.array(cut_rhs))
            lam, binding = pool.propose()
            lam_eval = min(lam, max(pool.top_level, lam_done))
            lam_eval = max(lam_eval, lam_done)
            targets = targets_at(lam_eval)
            # need_cut: an infeasible proposal must yield a *new* site set
            # (the pool already enforces every seen one analytically).
            ok, cut_jobs, cut_sites = feasible(targets, need_cut=True)
            if ok:
                break
            require(len(cut_sites) > 0, "infeasible cut without source-side sites (numeric breakdown)")
            sites = frozenset(int(j) for j in cut_sites)
            # The pool already enforces every seen S at its tightest, so a
            # violated min cut must expose a *new* site set; a repeat means
            # the analytic LHS and the flow check disagree beyond tolerance.
            require(sites not in seen_sites, "rediscovered site cut (numeric breakdown)")
            seen_sites.add(sites)
            cut_crosses.append(_site_cross(cluster, sites))
            cut_rhs.append(float(cluster.capacities[sorted(sites)].sum()))
            diag.cuts_generated += 1
            if basis is not None:
                basis.record(frozenset(cluster.sites[j].name for j in sites))

        lam_star = lam_eval
        new_levels = targets_at(lam_star)
        to_freeze = np.zeros(n, dtype=bool)
        # demand-saturated actives
        cap_sat = (~frozen) & (new_levels >= caps - ABS_TOL * np.maximum(1.0, caps))
        to_freeze |= cap_sat
        diag.frozen_by_cap += int(cap_sat.sum())
        # members of binding cuts: a tight site cut pins exactly the jobs
        # whose target meets or exceeds their crossing capacity (raising one
        # would raise the cut LHS above cap(S)).
        if not np.isinf(lam):
            for k in binding:
                cross = pool.crosses[k]
                in_cut = new_levels >= cross - ABS_TOL * np.maximum(1.0, cross)
                cut_new = in_cut & ~frozen & ~to_freeze
                diag.frozen_by_cut += int(cut_new.sum())
                to_freeze |= in_cut & ~frozen
        if np.isinf(lam):
            # no constraint ever binds: everyone saturates at caps
            to_freeze |= ~frozen
        if not to_freeze.any():
            # Safety valve: should be unreachable; freeze everything at the
            # verified-feasible targets rather than looping forever.
            to_freeze = ~frozen
        levels[to_freeze & ~frozen] = new_levels[to_freeze & ~frozen]
        frozen |= to_freeze
        lam_done = lam_star

    ok, _, _ = feasible(levels)
    if not ok:  # pragma: no cover - guarded by construction
        raise RuntimeError("AMF solver produced infeasible levels")
    return levels, adapter


def solve_amf(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
    basis: CutBasis | None = None,
    oracle: str = "parametric",
    *,
    shards: bool = False,
    workers: int | None = None,
) -> Allocation:
    """Compute an AMF allocation (aggregates via :func:`amf_levels`, split via max-flow).

    The returned split is *an* AMF allocation; the completion-time add-on
    (:func:`repro.core.completion.optimize_completion_times`) re-splits the
    same aggregates to optimize job completion times.  ``basis`` warm-starts
    the cutting-plane pool across related solves (see :class:`CutBasis`);
    ``oracle`` selects the feasibility backend (see :func:`amf_levels`).

    ``shards=True`` solves each connected component of the job-site graph
    independently and stitches the blocks — the same allocation at
    component-local cost, optionally fanned out over ``workers`` processes
    (see :mod:`repro.core.sharding`).  A monolithic ``basis`` does not
    apply there; use :class:`repro.core.sharding.ShardBasisPool` via
    :func:`~repro.core.sharding.solve_amf_sharded` for warm sharded solves.

    With the parametric oracle the realization is usually free: the final
    verification probe leaves the oracle's residual graph carrying a max
    flow at exactly ``levels``, so the matrix is read off that flow instead
    of re-solving a fresh network.
    """
    if cluster.is_multiresource:
        from repro.multiresource.engine import solve_multiresource

        return solve_multiresource(
            cluster, floors, diagnostics, basis, oracle, shards=shards, workers=workers
        )
    if shards:
        require(basis is None, "shards=True takes a ShardBasisPool via solve_amf_sharded, not basis=")
        from repro.core.sharding import solve_amf_sharded

        return solve_amf_sharded(cluster, floors, diagnostics, oracle=oracle, workers=workers)
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    with _observed_solve("solve", cluster, diag):
        levels, adapter = _fill_levels(cluster, floors, diag, basis, oracle)
    matrix = adapter.realize(levels) if adapter is not None else None
    if matrix is not None:
        matrix = _finalize_matrix(cluster, levels, matrix)
    else:
        matrix = _realize(cluster, levels)
    return Allocation(cluster, matrix, policy="amf" if floors is None else "amf+floors")


def _realize(cluster: Cluster, levels: np.ndarray) -> np.ndarray:
    """Realize aggregate ``levels`` as a feasible job-site matrix via max-flow."""
    network = build_network(cluster, levels)
    outcome = network.solve()
    require(outcome.feasible, "levels are not feasible on this cluster")
    return _finalize_matrix(cluster, levels, network.allocation_matrix())


def _finalize_matrix(cluster: Cluster, levels: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Rescale rows so each sums to its level exactly, then scrub the
    rescaling residue (a row scaled up by the flow-tolerance deficit can
    overshoot a demand cap by the same hair)."""
    sums = matrix.sum(axis=1)
    for i in range(cluster.n_jobs):
        if sums[i] > 0.0 and not feq(sums[i], levels[i]):
            matrix[i] *= levels[i] / sums[i]
    return scrub_matrix(cluster, matrix)


def amf_levels_bisect(
    cluster: Cluster,
    tol: float = 1e-9,
    diagnostics: AmfDiagnostics | None = None,
    oracle: str = "parametric",
) -> np.ndarray:
    """Ablation variant: progressive filling with pure binary search.

    Identical freezing rule, but each round's level is located by bisection
    to ``tol`` instead of the exact cutting-plane proposal.  Kept for the F8
    ablation ("bottleneck snapping vs binary search") and as an extra
    cross-check in tests.  Shares the λ→targets/probe machinery with
    :func:`amf_levels` via :class:`_FeasibilityAdapter`; bisection is the
    workload the parametric oracle accelerates hardest (descending probes
    are answered by rollback or stored-cut screening instead of a rebuild).
    """
    n = cluster.n_jobs
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if n == 0:
        return np.zeros(0)
    with _observed_solve("bisect", cluster, diag):
        return _bisect_levels(cluster, tol, diag, oracle)


def _bisect_levels(cluster: Cluster, tol: float, diag: AmfDiagnostics, oracle: str) -> np.ndarray:
    n = cluster.n_jobs
    caps = cluster.aggregate_demand.copy()
    weights = cluster.weights
    adapter = _FeasibilityAdapter(cluster, np.zeros(n), caps, diag, backend=oracle)
    try:
        return _bisect_levels_inner(cluster, tol, diag, adapter, caps, weights)
    finally:
        adapter.finish()


def _bisect_levels_inner(
    cluster: Cluster,
    tol: float,
    diag: AmfDiagnostics,
    adapter: _FeasibilityAdapter,
    caps: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    n = cluster.n_jobs
    targets_at = adapter.targets_at
    levels = adapter.levels
    frozen = adapter.frozen

    def feasible(targets: np.ndarray, *, need_cut: bool = False) -> tuple[bool, frozenset[int]]:
        ok, cut_jobs, _ = adapter.feasible(targets, need_cut=need_cut)
        return ok, cut_jobs

    lam_lo = 0.0
    while not frozen.all():
        diag.rounds += 1
        hi = float(np.max(caps[~frozen] / weights[~frozen], initial=0.0))
        ok, _ = feasible(targets_at(hi))
        if ok:
            levels[~frozen] = np.minimum(hi * weights, caps)[~frozen]
            break
        lo = lam_lo
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            ok, _ = feasible(targets_at(mid))
            if ok:
                lo = mid
            else:
                hi = mid
        # the cut that pins this round's bottleneck must come from a real
        # flow solve (screening replays would not name the minimal cut)
        _, cut_jobs = feasible(targets_at(hi), need_cut=True)
        member = np.array(sorted(cut_jobs), dtype=int)
        freeze = np.zeros(n, dtype=bool)
        freeze[member] = True
        freeze |= (~frozen) & (lo * weights >= caps - ABS_TOL)
        freeze &= ~frozen
        if not freeze.any():
            freeze = ~frozen
        new = targets_at(lo)
        levels[freeze] = new[freeze]
        frozen |= freeze
        lam_lo = lo
    return levels
