"""Aggregate Max-min Fairness (AMF) — the paper's core contribution.

AMF requires the vector of *aggregate* allocations ``A_i = sum_j a_ij`` to be
(weighted) max-min fair over the feasible region cut out by site capacities,
per-edge demand caps and locality support.  The feasible aggregates form a
polymatroid-like region whose facets are min cuts of the job-site network,
which suggests the exact algorithm implemented here:

**Progressive filling with cutting-plane bottleneck detection.**  Jobs start
*active* at a common normalized level ``lam`` (job ``i`` targets
``clip(lam * weight_i, floor_i, cap_i)``).  Each round finds the largest
``lam`` feasible together with the already-frozen jobs:

1. Maintain a set of *valid cut constraints* ``sum_{i in J} A_i <= rhs``
   (seeded with the total-capacity cut over all jobs and sites).
2. Propose ``lam = min_c max{lam : LHS_c(lam) <= rhs_c}`` — exact via the
   piecewise-linear :class:`PiecewiseFill` (no binary search).
3. Check feasibility at the proposal with one max-flow.  Feasible: the
   proposal is this round's max-min level, because any larger ``lam``
   violates a recorded cut.  Infeasible: the min cut yields a *new violated
   constraint*; add it and repeat (``lam`` strictly decreases, so the loop
   adds each cut at most once).
4. Freeze every active job that is demand-saturated or sits in a binding
   cut; the rest continue into the next round.

The result is exact up to flow tolerance (no level is located by search) and
is verified max-min by :mod:`repro.core.properties` in the test suite, with
:mod:`repro.core.reference` as an independent oracle.

``floors`` implement the enhanced AMF of the paper (sharing-incentive
guarantees, :mod:`repro.core.enhanced`): progressive filling then runs
*above* per-job guaranteed aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import ABS_TOL, feq, require
from repro.core.allocation import Allocation, scrub_matrix
from repro.flownet.bipartite import build_network
from repro.model.cluster import Cluster

__all__ = ["solve_amf", "amf_levels", "amf_levels_bisect", "AmfDiagnostics", "PiecewiseFill"]


@dataclass(slots=True)
class AmfDiagnostics:
    """Solver instrumentation (reported by the scalability benchmark F8)."""

    rounds: int = 0
    feasibility_solves: int = 0
    cuts_generated: int = 0
    frozen_by_cap: int = 0
    frozen_by_cut: int = 0


class PiecewiseFill:
    """Exact evaluator for ``G(lam) = sum_i clip(lam * w_i, f_i, c_i)``.

    ``G`` is continuous, non-decreasing and piecewise linear; this class
    precomputes its segment structure (event sweep over the per-job
    breakpoints ``f_i / w_i`` and ``c_i / w_i``) so that

    * :meth:`value` evaluates ``G`` in ``O(log n)``, and
    * :meth:`max_level` solves ``sup { lam : G(lam) <= rhs }`` exactly.

    Frozen jobs are modelled by ``f_i = c_i = level_i`` (constant terms).
    """

    __slots__ = ("base", "levels", "consts", "slopes", "total_cap", "top_level")

    def __init__(self, floors: np.ndarray, caps: np.ndarray, weights: np.ndarray):
        caps = np.asarray(caps, dtype=float)
        floors = np.minimum(np.asarray(floors, dtype=float), caps)
        weights = np.asarray(weights, dtype=float)
        require(bool((weights > 0).all()), "weights must be positive")
        require(bool(np.isfinite(caps).all()), "caps must be finite (clip to site capacity first)")
        starts = floors / weights
        ends = caps / weights
        # Event sweep: +w slope when a job starts rising, -w / +c when it caps.
        events = np.concatenate(
            [
                np.stack([starts, -floors, weights], axis=1),
                np.stack([ends, caps, -weights], axis=1),
            ]
        )
        order = np.argsort(events[:, 0], kind="stable")
        events = events[order]
        self.base = float(floors.sum())  # G before any job starts rising
        self.levels = events[:, 0]
        self.consts = self.base + np.cumsum(events[:, 1])
        self.slopes = np.cumsum(events[:, 2])
        self.total_cap = float(caps.sum())
        self.top_level = float(ends.max(initial=0.0))

    def value(self, lam: float) -> float:
        """Evaluate ``G(lam)`` (``lam`` must be >= 0)."""
        k = int(np.searchsorted(self.levels, lam, side="right")) - 1
        if k < 0:
            return self.base
        return float(self.consts[k] + self.slopes[k] * lam)

    def max_level(self, rhs: float) -> float:
        """``sup { lam >= 0 : G(lam) <= rhs }`` (``inf`` when never binding; 0 when even the floors exceed ``rhs``)."""
        if self.total_cap <= rhs + ABS_TOL:
            return np.inf
        # values at each segment's *start* (== end of previous segment, by continuity):
        seg_start_vals = self.consts + self.slopes * self.levels
        # first segment whose start value exceeds rhs:
        idx = int(np.searchsorted(seg_start_vals, rhs, side="right"))
        if idx == 0:
            # even the floor sum is above rhs (only possible with infeasible
            # floors, which the solver rejects up front) — degenerate answer.
            return 0.0
        k = idx - 1  # G(segment start of k) <= rhs < G(segment start of k+1)
        c, s = self.consts[k], self.slopes[k]
        if s <= 0.0:
            # Defensive: continuity makes a zero-slope crossing impossible.
            return float(self.levels[idx]) if idx < len(self.levels) else np.inf
        return float((rhs - c) / s)


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------


@dataclass(slots=True)
class _Round:
    """Constraint pool for one progressive-filling round."""

    members: list[np.ndarray] = field(default_factory=list)  # job index arrays
    fills: list[PiecewiseFill] = field(default_factory=list)
    rhs: list[float] = field(default_factory=list)

    def add(self, jobs: np.ndarray, fill: PiecewiseFill, rhs: float) -> None:
        self.members.append(jobs)
        self.fills.append(fill)
        self.rhs.append(rhs)

    def propose(self) -> tuple[float, list[int]]:
        """Largest lam satisfying all constraints, plus indices of binding ones."""
        lam = np.inf
        per = [f.max_level(r) for f, r in zip(self.fills, self.rhs)]
        lam = min(per)
        binding = [k for k, v in enumerate(per) if v <= lam * (1 + 1e-12) + ABS_TOL]
        return lam, binding


def _cut_rhs(cluster: Cluster, cut_jobs: np.ndarray, cut_sites: frozenset[int]) -> float:
    """RHS of the cut constraint: source-side site capacity + crossing demand caps."""
    caps = cluster.demand_caps
    rhs = float(sum(cluster.capacities[j] for j in cut_sites))
    sink_sites = np.array([j for j in range(cluster.n_sites) if j not in cut_sites], dtype=int)
    if sink_sites.size and cut_jobs.size:
        rhs += float(caps[np.ix_(cut_jobs, sink_sites)].sum())
    return rhs


def amf_levels(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
) -> np.ndarray:
    """Compute the AMF aggregate vector ``(A_1..A_n)`` for ``cluster``.

    Parameters
    ----------
    cluster:
        The instance.
    floors:
        Optional per-job guaranteed aggregates (enhanced AMF).  Must be
        jointly feasible; :class:`ValueError` is raised otherwise.
    diagnostics:
        Optional mutable instrumentation record.

    Returns
    -------
    ``(n,)`` aggregates of the (weighted, floor-respecting) max-min fair
    allocation.  Use :func:`solve_amf` for a realized job-site matrix.
    """
    n = cluster.n_jobs
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if n == 0:
        return np.zeros(0)
    caps = cluster.aggregate_demand.copy()
    weights = cluster.weights
    if floors is None:
        floors = np.zeros(n)
    else:
        floors = np.minimum(np.asarray(floors, dtype=float), caps)
        require(floors.shape == (n,), "floors must have one entry per job")
        require(float(floors.min(initial=0.0)) >= -ABS_TOL, "floors must be non-negative")
        floors = np.maximum(floors, 0.0)

    network = build_network(cluster)
    levels = floors.copy()  # frozen jobs keep their entry; active entries are provisional
    frozen = np.zeros(n, dtype=bool)

    def targets_at(lam: float) -> np.ndarray:
        t = np.clip(lam * weights, floors, caps)
        t[frozen] = levels[frozen]
        return t

    def feasible(targets: np.ndarray) -> tuple[bool, frozenset[int], frozenset[int]]:
        diag.feasibility_solves += 1
        network.set_targets(targets)
        outcome = network.solve()
        return outcome.feasible, outcome.cut_jobs, outcome.cut_sites

    ok, _, _ = feasible(targets_at(0.0))
    if not ok:
        raise ValueError("floors are infeasible for this cluster")

    # Cut constraints are valid for the whole solve (their RHS depends only
    # on the cluster), so the pool persists across rounds; only the
    # piecewise LHS structure is rebuilt as jobs freeze.
    all_jobs = np.arange(n)
    known_cuts: list[tuple[np.ndarray, float]] = [(all_jobs, cluster.total_capacity)]

    lam_done = 0.0
    while not frozen.all():
        diag.rounds += 1
        # Effective piecewise parameters: frozen jobs contribute constants.
        f_eff = np.where(frozen, levels, floors)
        c_eff = np.where(frozen, levels, caps)
        pool = _Round()
        for member, rhs in known_cuts:
            pool.add(member, PiecewiseFill(f_eff[member], c_eff[member], weights[member]), rhs)

        guard = 0
        while True:
            guard += 1
            if guard > 10 * (n + cluster.n_sites) + 100:  # pragma: no cover
                raise RuntimeError("AMF cutting-plane loop failed to converge (numeric breakdown)")
            lam, binding = pool.propose()
            lam_eval = min(lam, max(pool.fills[0].top_level, lam_done))
            lam_eval = max(lam_eval, lam_done)
            targets = targets_at(lam_eval)
            ok, cut_jobs, cut_sites = feasible(targets)
            if ok:
                break
            member = np.array(sorted(cut_jobs), dtype=int)
            rhs = _cut_rhs(cluster, member, cut_sites)
            require(member.size > 0, "infeasible cut without source-side jobs (numeric breakdown)")
            pool.add(member, PiecewiseFill(f_eff[member], c_eff[member], weights[member]), rhs)
            known_cuts.append((member, rhs))
            diag.cuts_generated += 1

        lam_star = lam_eval
        new_levels = targets_at(lam_star)
        to_freeze = np.zeros(n, dtype=bool)
        # demand-saturated actives
        cap_sat = (~frozen) & (new_levels >= caps - ABS_TOL * np.maximum(1.0, caps))
        to_freeze |= cap_sat
        diag.frozen_by_cap += int(cap_sat.sum())
        # members of binding cuts
        if not np.isinf(lam):
            for k in binding:
                mem = pool.members[k]
                in_cut = np.zeros(n, dtype=bool)
                in_cut[mem] = True
                cut_new = in_cut & ~frozen & ~to_freeze
                diag.frozen_by_cut += int(cut_new.sum())
                to_freeze |= in_cut & ~frozen
        if np.isinf(lam):
            # no constraint ever binds: everyone saturates at caps
            to_freeze |= ~frozen
        if not to_freeze.any():
            # Safety valve: should be unreachable; freeze everything at the
            # verified-feasible targets rather than looping forever.
            to_freeze = ~frozen
        levels[to_freeze & ~frozen] = new_levels[to_freeze & ~frozen]
        frozen |= to_freeze
        lam_done = lam_star

    ok, _, _ = feasible(levels)
    if not ok:  # pragma: no cover - guarded by construction
        raise RuntimeError("AMF solver produced infeasible levels")
    return levels


def solve_amf(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
) -> Allocation:
    """Compute an AMF allocation (aggregates via :func:`amf_levels`, split via max-flow).

    The returned split is *an* AMF allocation; the completion-time add-on
    (:func:`repro.core.completion.optimize_completion_times`) re-splits the
    same aggregates to optimize job completion times.
    """
    levels = amf_levels(cluster, floors=floors, diagnostics=diagnostics)
    matrix = _realize(cluster, levels)
    return Allocation(cluster, matrix, policy="amf" if floors is None else "amf+floors")


def _realize(cluster: Cluster, levels: np.ndarray) -> np.ndarray:
    """Realize aggregate ``levels`` as a feasible job-site matrix via max-flow."""
    network = build_network(cluster, levels)
    outcome = network.solve()
    require(outcome.feasible, "levels are not feasible on this cluster")
    matrix = network.allocation_matrix()
    # Rescale rows so each sums to its level exactly, then scrub the
    # rescaling residue (a row scaled up by the flow-tolerance deficit can
    # overshoot a demand cap by the same hair).
    sums = matrix.sum(axis=1)
    for i in range(cluster.n_jobs):
        if sums[i] > 0.0 and not feq(sums[i], levels[i]):
            matrix[i] *= levels[i] / sums[i]
    return scrub_matrix(cluster, matrix)


def amf_levels_bisect(
    cluster: Cluster,
    tol: float = 1e-9,
    diagnostics: AmfDiagnostics | None = None,
) -> np.ndarray:
    """Ablation variant: progressive filling with pure binary search.

    Identical freezing rule, but each round's level is located by bisection
    to ``tol`` instead of the exact cutting-plane proposal.  Kept for the F8
    ablation ("bottleneck snapping vs binary search") and as an extra
    cross-check in tests.
    """
    n = cluster.n_jobs
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if n == 0:
        return np.zeros(0)
    caps = cluster.aggregate_demand.copy()
    weights = cluster.weights
    network = build_network(cluster)
    levels = np.zeros(n)
    frozen = np.zeros(n, dtype=bool)

    def targets_at(lam: float) -> np.ndarray:
        t = np.minimum(lam * weights, caps)
        t[frozen] = levels[frozen]
        return t

    def feasible(targets: np.ndarray) -> tuple[bool, frozenset[int]]:
        diag.feasibility_solves += 1
        network.set_targets(targets)
        outcome = network.solve()
        return outcome.feasible, outcome.cut_jobs

    lam_lo = 0.0
    while not frozen.all():
        diag.rounds += 1
        hi = float(np.max(caps[~frozen] / weights[~frozen], initial=0.0))
        ok, _ = feasible(targets_at(hi))
        if ok:
            levels[~frozen] = np.minimum(hi * weights, caps)[~frozen]
            break
        lo = lam_lo
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            ok, _ = feasible(targets_at(mid))
            if ok:
                lo = mid
            else:
                hi = mid
        _, cut_jobs = feasible(targets_at(hi))
        member = np.array(sorted(cut_jobs), dtype=int)
        freeze = np.zeros(n, dtype=bool)
        freeze[member] = True
        freeze |= (~frozen) & (lo * weights >= caps - ABS_TOL)
        freeze &= ~frozen
        if not freeze.any():
            freeze = ~frozen
        new = targets_at(lo)
        levels[freeze] = new[freeze]
        frozen |= freeze
        lam_lo = lo
    return levels
