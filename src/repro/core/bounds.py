"""Reference bounds: what locality costs and what isolation guarantees.

Two idealized references bracket every real policy:

* :func:`locality_oblivious_levels` — the max-min fair allocation of one
  *pooled* resource of size ``Σ_j c_j``, as if work could run anywhere.
  This relaxes every cut constraint of the real system, so its common
  water level upper-bounds the minimum level any feasible policy (AMF
  included) can reach.  The gap between it and AMF is the **price of
  locality** (extension experiment X4).
* :func:`isolation_levels` — the static equal-partition outcome
  (the sharing-incentive floors): what every job is guaranteed with no
  sharing at all.  Any policy with the sharing-incentive property sits
  pointwise above it.
"""

from __future__ import annotations

import numpy as np

from repro.core.enhanced import sharing_incentive_floors
from repro.core.waterfilling import water_fill
from repro.model.cluster import Cluster

__all__ = ["locality_oblivious_levels", "isolation_levels", "price_of_locality"]


def locality_oblivious_levels(cluster: Cluster) -> np.ndarray:
    """Max-min fair aggregates if all capacity were one fungible pool.

    Demand caps still apply (a job cannot use more than its aggregate
    demand), but locality support and per-site capacities are relaxed into
    ``Σ_j c_j``.  The result is the classic single-resource water-filling
    vector — an idealized upper reference, not a feasible allocation.
    """
    return water_fill(cluster.total_capacity, cluster.aggregate_demand, cluster.weights)


def isolation_levels(cluster: Cluster) -> np.ndarray:
    """Aggregates under a static equal partition of every site (no sharing)."""
    return sharing_incentive_floors(cluster)


def price_of_locality(cluster: Cluster, levels: np.ndarray) -> float:
    """How much locality costs the poorest job under ``levels``.

    Ratio of the locality-oblivious minimum weighted level to the measured
    minimum weighted level; 1.0 means locality was free, larger means the
    poorest job pays for its data placement.  ``inf`` when some job is
    fully starved.
    """
    oblivious = locality_oblivious_levels(cluster) / cluster.weights
    measured = np.asarray(levels, dtype=float) / cluster.weights
    lo = float(measured.min())
    hi = float(oblivious.min())
    if lo <= 0.0:
        return np.inf if hi > 0.0 else 1.0
    return max(hi / lo, 1.0)
