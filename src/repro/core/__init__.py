"""Core contribution: fairness policies over multi-site clusters.

* :func:`~repro.core.persite.solve_psmf` — the paper's baseline
  (independent per-site max-min fairness).
* :func:`~repro.core.amf.solve_amf` — Aggregate Max-min Fairness.
* :func:`~repro.core.enhanced.solve_amf_enhanced` — AMF with
  sharing-incentive floors.
* :func:`~repro.core.completion.optimize_completion_times` — the
  completion-time add-on (split optimization under fixed aggregates).
* :mod:`~repro.core.properties` — Pareto / envy-freeness /
  strategy-proofness / sharing-incentive checkers.
* :mod:`~repro.core.reference` — slow, independent oracle used by tests.
"""

from repro.core.allocation import Allocation
from repro.core.waterfilling import water_fill
from repro.core.persite import solve_psmf
from repro.core.amf import solve_amf, amf_levels
from repro.core.sharding import ShardBasisPool, decompose, solve_amf_sharded
from repro.core.enhanced import solve_amf_enhanced
from repro.core.completion import optimize_completion_times, proportional_split
from repro.core.policies import POLICIES, get_policy
from repro.core import properties

__all__ = [
    "Allocation",
    "water_fill",
    "solve_psmf",
    "solve_amf",
    "amf_levels",
    "solve_amf_sharded",
    "decompose",
    "ShardBasisPool",
    "solve_amf_enhanced",
    "optimize_completion_times",
    "proportional_split",
    "POLICIES",
    "get_policy",
    "properties",
]
