"""Single-resource weighted max-min fairness (water-filling).

The classic building block: divide one capacity among agents with demand
caps so that the capped-share vector is max-min fair.  Exact (closed-form
per round, no search): sort agents by ``cap / weight`` and peel off the ones
that saturate below the common level.

Used directly by the per-site baseline (:mod:`repro.core.persite`) and as
the piecewise-linear "solve for the level" primitive inside the AMF solver.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_float_array, require


def water_fill(
    capacity: float,
    caps: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Max-min fair split of ``capacity`` under ``caps`` and ``weights``.

    Returns the allocation vector ``a`` with ``a_i = min(level * w_i, cap_i)``
    where ``level`` is the water level: the unique value making
    ``sum(a) = min(capacity, sum(caps))``.

    Parameters
    ----------
    capacity:
        Non-negative amount to divide.
    caps:
        Per-agent demand caps (non-negative; ``inf`` allowed, meaning the
        agent can absorb anything).
    weights:
        Optional positive fairness weights (default: all ones).  The
        max-min ordering is on ``a_i / w_i``.
    """
    require(capacity >= 0.0, f"capacity must be non-negative, got {capacity}")
    caps = np.asarray(caps, dtype=float)
    require(caps.ndim == 1, "caps must be a vector")
    require(not bool(np.isnan(caps).any()), "caps must not contain NaN")
    require(float(np.where(np.isinf(caps), 0.0, caps).min(initial=0.0)) >= 0.0, "caps must be non-negative")
    n = caps.size
    if n == 0:
        return np.zeros(0)
    if weights is None:
        weights = np.ones(n)
    else:
        weights = as_float_array(weights, "weights")
        require(weights.shape == caps.shape, "weights shape mismatch")
        require(float(weights.min()) > 0.0, "weights must be positive")
    level = fill_level(capacity, caps, weights)
    return np.minimum(level * weights, caps)


def fill_level(capacity: float, caps: np.ndarray, weights: np.ndarray) -> float:
    """The water level ``level`` such that ``sum(min(level * w, cap)) = min(capacity, sum(caps))``.

    When every agent saturates below ``capacity`` the level is ``inf``
    conceptually; we return the largest finite level actually needed
    (``max(cap / w)``), which yields the same allocation.
    """
    total_cap = float(np.where(np.isinf(caps), np.inf, caps).sum())
    if total_cap <= capacity:
        # Everyone saturates; if someone has an infinite cap this branch is
        # unreachable (total_cap == inf > capacity).
        finite = caps[np.isfinite(caps) & (weights > 0)]
        if finite.size == 0:
            return 0.0
        with np.errstate(divide="ignore"):
            ratios = caps / weights
        return float(np.max(ratios[np.isfinite(ratios)], initial=0.0))
    return solve_capped_level(capacity, caps, weights)


def solve_capped_level(target: float, caps: np.ndarray, weights: np.ndarray) -> float:
    """Solve ``sum_i min(level * w_i, cap_i) = target`` exactly for ``level``.

    Assumes ``0 <= target <= sum(caps)`` (the piecewise-linear LHS is
    non-decreasing from 0 to ``sum(caps)``); with ``target`` above the
    total cap the result saturates everyone.  Runs in ``O(n log n)``.

    This is the exact "snap" primitive of the AMF solver: binding equalities
    extracted from min cuts have precisely this shape.
    """
    require(target >= 0.0, "target must be non-negative")
    caps = np.asarray(caps, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if caps.size == 0:
        return 0.0
    with np.errstate(divide="ignore"):
        breakpoints = caps / weights  # level at which each agent saturates
    order = np.argsort(breakpoints)
    # Below the k-th breakpoint, LHS(level) = sat_sum + level * active_weight.
    sat_sum = 0.0
    active_weight = float(weights.sum())
    prev_bp = 0.0
    for idx in order:
        bp = breakpoints[idx]
        if not np.isfinite(bp):
            break
        # LHS value at this breakpoint:
        lhs_at_bp = sat_sum + bp * active_weight
        if lhs_at_bp >= target:
            if active_weight <= 0.0:
                return prev_bp
            return (target - sat_sum) / active_weight
        sat_sum += caps[idx]
        active_weight -= weights[idx]
        prev_bp = bp
    if active_weight > 0.0:
        return (target - sat_sum) / active_weight
    # Fully saturated below target: return the last breakpoint.
    finite = breakpoints[np.isfinite(breakpoints)]
    return float(finite.max(initial=0.0))
