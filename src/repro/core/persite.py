"""PSMF — the paper's baseline: per-site max-min fairness.

Each site independently runs demand-capped water-filling among the jobs with
work there ("simply requires the resource allocation at each site to be
max-min fair", per the abstract).  Sites ignore each other, so a job whose
work is concentrated at a hot site is stuck with that site's small share
even when it could be compensated elsewhere — the imbalance AMF fixes.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.waterfilling import water_fill
from repro.model.cluster import Cluster


def solve_psmf(cluster: Cluster) -> Allocation:
    """Compute the per-site max-min fair (baseline) allocation.

    At site ``j``, the jobs with support there split ``c_j`` by weighted
    water-filling with their effective demand caps ``d_ij``.  Exact and
    ``O(m * n log n)``.
    """
    matrix = np.zeros((cluster.n_jobs, cluster.n_sites))
    caps = cluster.demand_caps
    weights = cluster.weights
    for j in range(cluster.n_sites):
        present = np.flatnonzero(cluster.support[:, j])
        if present.size == 0:
            continue
        matrix[present, j] = water_fill(
            float(cluster.capacities[j]),
            caps[present, j],
            weights[present],
        )
    return Allocation(cluster, matrix, policy="psmf")
