"""Enhanced AMF — sharing-incentive guarantees (the paper's Section on AMF+).

Plain AMF equalizes aggregates, but a demand-capped job can end up *below*
what it would have banked if every site were statically split ``1/n``-ways —
a sharing-incentive violation (the abstract: "it does not necessarily
satisfy the sharing incentive property. We propose an enhanced version of
AMF to guarantee the sharing incentive property.").

The minimal failing shape (reproduced in the tests and benchmark T2): a job
with a small demand cap at an idle site and work at a busy site reaches its
AMF level partly via the idle site, so progressive filling freezes it at a
*common aggregate* that is below its equal-partition entitlement.

Enhanced AMF fixes this by running progressive filling **above per-job
floors** equal to the equal-partition entitlements

    E_i = sum over job i's support of min(weight-share_i * c_j, d_ij).

The floors are always jointly feasible (the equal partition itself realizes
them), so the solver never rejects them; everything above the floors is
still filled max-min fairly, preserving Pareto efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.amf import AmfDiagnostics, amf_levels, solve_amf
from repro.model.cluster import Cluster


def sharing_incentive_floors(cluster: Cluster) -> np.ndarray:
    """Per-job floors: equal-partition entitlements clipped to aggregate demand."""
    return np.minimum(cluster.equal_partition_entitlements(), cluster.aggregate_demand)


def amf_enhanced_levels(cluster: Cluster, diagnostics: AmfDiagnostics | None = None) -> np.ndarray:
    """Aggregates of the enhanced-AMF allocation."""
    return amf_levels(cluster, floors=sharing_incentive_floors(cluster), diagnostics=diagnostics)


def solve_amf_enhanced(cluster: Cluster, diagnostics: AmfDiagnostics | None = None) -> Allocation:
    """Compute the enhanced AMF allocation (sharing incentive guaranteed).

    Identical to :func:`repro.core.amf.solve_amf` with
    :func:`sharing_incentive_floors` installed; returned with policy name
    ``"amf-e"``.
    """
    alloc = solve_amf(cluster, floors=sharing_incentive_floors(cluster), diagnostics=diagnostics)
    return Allocation(cluster, alloc.matrix, policy="amf-e")
