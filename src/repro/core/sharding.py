"""Shard decomposition: AMF is separable over connected components.

The job-site bipartite graph (job ``i`` adjacent to the sites of its
support) splits a realistic cluster into *connected components* — groups of
sites that share no jobs with the rest.  AMF decomposes exactly over that
partition:

**Separability.**  Every constraint that cuts out the feasible region —
site capacity ``sum_i a_ij <= c_j``, per-edge demand cap
``a_ij <= d_ij`` and support ``a_ij = 0`` off-support — involves the sites
and jobs of a single component, so the feasible region is a *product* of
per-component regions and any feasible matrix is block-diagonal up to
permutation.  (Weighted) max-min fairness is a leximin objective over
per-job normalized aggregates, and the leximin optimum of a product region
is the concatenation of the per-factor leximin optima: raising the minimum
inside one component never trades off against another component, because
no constraint couples them.  Hence solving each component independently
and stitching the blocks back together *is* the monolithic AMF allocation
(progressive filling just interleaves the components' rounds; the frozen
levels per job are identical).

Why bother: the cutting-plane solver's cost is superlinear in the
component size (every feasibility probe is a max-flow on the whole graph),
so solving K small blocks is cheaper than one coupled instance even
serially — and the blocks are embarrassingly parallel, so the PR 3 fork
pool (:func:`repro.analysis.parallel.parallel_map`) fans them out with
``workers=``.  Per-shard :class:`~repro.core.amf.CutBasis` entries
(:class:`ShardBasisPool`) keep warm starts *local*: churn inside one
component never dilutes another component's cut pool, and the online
service caches solved shard matrices by sub-cluster fingerprint so a delta
re-solves only the shard it actually touches
(:class:`repro.service.solver.IncrementalAmfSolver` with ``sharded=True``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.analysis.parallel import parallel_map
from repro.core.allocation import Allocation
from repro.core.amf import (
    AmfDiagnostics,
    CutBasis,
    _fill_levels,
    _finalize_matrix,
    _realize,
)
from repro.model.cluster import Cluster
from repro.obs.instruments import record_amf, record_shard_decomposition, record_shard_solve
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER, span

__all__ = [
    "Shard",
    "ShardResult",
    "ShardBasisPool",
    "decompose",
    "stitch",
    "solve_shards",
    "solve_amf_sharded",
]


@dataclass(frozen=True, slots=True)
class Shard:
    """One connected component of the job-site graph.

    ``key`` is the component's *site-name set* — the stable identity used
    for per-shard warm-start bases and cache routing: jobs churn through a
    component, but the sites anchoring it persist.  ``cluster`` is the
    sub-instance (sites and jobs both keep their original relative order,
    so its fingerprint is deterministic).
    """

    key: frozenset[str]
    site_indices: tuple[int, ...]
    job_indices: tuple[int, ...]
    cluster: Cluster

    @property
    def n_jobs(self) -> int:
        return self.cluster.n_jobs


@dataclass(slots=True)
class ShardResult:
    """One solved shard: its sub-matrix plus how the solve went."""

    shard: Shard
    matrix: np.ndarray  # (shard jobs, shard sites)
    diagnostics: AmfDiagnostics
    seconds: float
    discovered_cuts: tuple[frozenset[str], ...]  # basis contents after the solve


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def decompose(cluster: Cluster) -> list[Shard]:
    """Partition ``cluster`` into connected components of the job-site graph.

    Returns a true partition: every site lands in exactly one shard
    (job-less site groups become shards with zero jobs), every job in the
    shard of its support.  Shards are ordered by their smallest site index,
    so the decomposition is deterministic for a given cluster.
    """
    uf = _UnionFind(cluster.n_sites)
    support = cluster.support
    for i in range(cluster.n_jobs):
        sites = np.nonzero(support[i])[0]
        first = int(sites[0])
        for j in sites[1:]:
            uf.union(first, int(j))
    site_groups: dict[int, list[int]] = {}
    for j in range(cluster.n_sites):
        site_groups.setdefault(uf.find(j), []).append(j)
    job_groups: dict[int, list[int]] = {root: [] for root in site_groups}
    for i in range(cluster.n_jobs):
        root = uf.find(int(np.nonzero(support[i])[0][0]))
        job_groups[root].append(i)
    shards: list[Shard] = []
    for root in sorted(site_groups):
        site_idx = tuple(site_groups[root])
        job_idx = tuple(job_groups[root])
        sub = Cluster(
            tuple(cluster.sites[j] for j in site_idx),
            tuple(cluster.jobs[i] for i in job_idx),
        )
        shards.append(
            Shard(
                key=frozenset(cluster.sites[j].name for j in site_idx),
                site_indices=site_idx,
                job_indices=job_idx,
                cluster=sub,
            )
        )
    return shards


def stitch(cluster: Cluster, results: list[tuple[Shard, np.ndarray]]) -> np.ndarray:
    """Assemble per-shard sub-matrices into the full ``(n, m)`` allocation."""
    matrix = np.zeros((cluster.n_jobs, cluster.n_sites))
    for shard, sub in results:
        if shard.job_indices:
            matrix[np.ix_(shard.job_indices, shard.site_indices)] = sub
    return matrix


class ShardBasisPool:
    """Bounded LRU of per-shard :class:`CutBasis` keyed by site-name set.

    A component's bottleneck cuts live with the component: warming shard A
    never replays cuts that only ever bound shard B.  When components merge
    under churn (a new job bridges two site groups) the fresh key misses —
    the new basis is seeded from every stored basis whose key is a *subset*
    of the merged key, because a Gale-Hoffman site cut stays valid on any
    cluster containing those sites (see :class:`CutBasis`).
    """

    __slots__ = ("_bases", "max_shards", "max_cuts")

    def __init__(self, max_shards: int = 128, max_cuts: int = 64):
        require(max_shards >= 1, "max_shards must be at least 1")
        self.max_shards = max_shards
        self.max_cuts = max_cuts
        self._bases: dict[frozenset[str], CutBasis] = {}

    def __len__(self) -> int:
        return len(self._bases)

    def __contains__(self, key: frozenset[str]) -> bool:
        return key in self._bases

    def items(self):
        """``(key, basis)`` pairs, LRU order (oldest first); read-only use."""
        return self._bases.items()

    @property
    def total_cuts(self) -> int:
        return sum(len(b) for b in self._bases.values())

    def clear(self) -> None:
        self._bases.clear()

    def basis_for(self, key: frozenset[str]) -> CutBasis:
        """The shard's basis (created — and seeded from sub-keys — on miss)."""
        basis = self._bases.pop(key, None)
        if basis is None:
            basis = CutBasis(max_cuts=self.max_cuts)
            for stored_key, stored in self._bases.items():
                if stored_key < key:
                    for sites in stored.sets():
                        basis.record(sites)
        self._bases[key] = basis  # re-insertion = LRU refresh
        while len(self._bases) > self.max_shards:
            self._bases.pop(next(iter(self._bases)))
        return basis


def _solve_shard(
    shard: Shard,
    floors: np.ndarray | None,
    seed_cuts: tuple[frozenset[str], ...],
    max_cuts: int,
    oracle: str,
    resource_totals: dict[str, float] | None = None,
) -> ShardResult:
    """Solve one shard against a *local* basis clone.

    The clone keeps the protocol identical under fork fan-out (a child
    cannot mutate the parent's pool) and in the serial fallback: the solve
    seeds from ``seed_cuts``, and whatever the local basis holds afterwards
    is returned for the caller to fold back into the pooled basis.

    ``resource_totals`` carries the *federation-wide* per-resource
    capacities for multi-resource shards — dominant-share denominators are
    global constants, which is exactly what makes MR leximin separable
    over components.
    """
    basis = CutBasis(max_cuts=max_cuts)
    for sites in seed_cuts:
        basis.record(sites)
    diag = AmfDiagnostics()
    t0 = time.perf_counter()
    # The monolithic pipeline minus its obs wrapper: per-shard metrics are
    # recorded once by the parent (merged delta), never in a fork child
    # whose registry copy is discarded — serial and parallel runs must
    # leave identical counters behind.
    if shard.cluster.is_multiresource:
        from repro.multiresource.engine import solve_multiresource

        alloc = solve_multiresource(
            shard.cluster, floors, diag, basis, oracle, resource_totals=resource_totals
        )
        matrix = np.array(alloc.matrix)
    else:
        levels, adapter = _fill_levels(shard.cluster, floors, diag, basis, oracle)
        matrix = adapter.realize(levels) if adapter is not None else None
        if matrix is not None:
            matrix = _finalize_matrix(shard.cluster, levels, matrix)
        else:
            matrix = _realize(shard.cluster, levels)
    seconds = time.perf_counter() - t0
    return ShardResult(
        shard=shard,
        matrix=matrix,
        diagnostics=diag,
        seconds=seconds,
        discovered_cuts=basis.sets(),
    )


def merge_diagnostics(dst: AmfDiagnostics, src: AmfDiagnostics) -> None:
    """Fold one shard's counters into the caller's record."""
    for f in dataclasses.fields(AmfDiagnostics):
        setattr(dst, f.name, getattr(dst, f.name) + getattr(src, f.name))


def solve_shards(
    shards: list[Shard],
    *,
    floors: np.ndarray | None = None,
    bases: ShardBasisPool | None = None,
    oracle: str = "parametric",
    workers: int | None = None,
    resource_totals: dict[str, float] | None = None,
) -> list[ShardResult]:
    """Solve every job-bearing shard; serial or fanned over the fork pool.

    Results come back in ``shards`` order (job-less shards are skipped —
    their block is identically zero).  When ``bases`` is given each shard
    seeds from its pooled basis and its discoveries are recorded back, so
    the pool warms regardless of worker count; the allocation itself is
    bit-identical under any ``workers`` (each shard's solve is a pure
    function of its sub-cluster, floors and seed cuts).
    """
    solvable = [sh for sh in shards if sh.n_jobs > 0]
    if not solvable:
        return []
    max_cuts = bases.max_cuts if bases is not None else 64
    seeds: list[tuple[frozenset[str], ...]] = []
    sub_floors: list[np.ndarray | None] = []
    for sh in solvable:
        seeds.append(bases.basis_for(sh.key).sets() if bases is not None else ())
        sub_floors.append(
            None if floors is None else np.asarray(floors, dtype=float)[list(sh.job_indices)]
        )

    def solve_one(idx: int) -> ShardResult:
        return _solve_shard(
            solvable[idx], sub_floors[idx], seeds[idx], max_cuts, oracle, resource_totals
        )

    results = parallel_map(solve_one, range(len(solvable)), workers=workers)
    if bases is not None:
        for res in results:
            pooled = bases.basis_for(res.shard.key)
            for sites in res.discovered_cuts:
                pooled.record(sites)
    return results


def solve_amf_sharded(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
    bases: ShardBasisPool | None = None,
    oracle: str = "parametric",
    workers: int | None = None,
) -> Allocation:
    """AMF via shard decomposition — same allocation, component-local cost.

    Drop-in for :func:`~repro.core.amf.solve_amf` (also reachable as
    ``solve_amf(..., shards=True)``): decompose, solve each component
    independently (``workers`` > 1 fans them over the fork pool), stitch
    the blocks.  ``bases`` replaces the monolithic ``basis`` with a
    :class:`ShardBasisPool` so warm starts stay component-local.  Purely a
    cost optimization — the separability argument in the module docstring
    is pinned by the hypothesis equivalence suite in
    ``tests/core/test_sharding.py``.
    """
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if floors is not None:
        floors = np.asarray(floors, dtype=float)
        require(floors.shape == (cluster.n_jobs,), "floors must have one entry per job")
    shards = decompose(cluster)
    record_shard_decomposition(len(shards))
    totals = cluster.resource_totals if cluster.is_multiresource else None
    observing = REGISTRY.enabled or TRACER.enabled
    before = dataclasses.replace(diag) if observing else None
    with span(
        "amf.solve", variant="sharded", jobs=cluster.n_jobs, sites=cluster.n_sites, shards=len(shards)
    ):
        results = solve_shards(
            shards, floors=floors, bases=bases, oracle=oracle, workers=workers, resource_totals=totals
        )
    for res in results:
        merge_diagnostics(diag, res.diagnostics)
        record_shard_solve(res.shard.n_jobs, res.seconds)
    if observing:
        record_amf(diag, since=before)
    matrix = stitch(cluster, [(res.shard, res.matrix) for res in results])
    return Allocation(cluster, matrix, policy="amf" if floors is None else "amf+floors")
