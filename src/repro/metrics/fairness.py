"""Balance metrics over aggregate allocations (experiments F1/F2/F5/F6).

The abstract claims AMF "performs significantly better in balancing
resource allocation" than the per-site baseline; these are the measures
that make the claim quantitative:

* **Jain's fairness index** ``(sum x)^2 / (n * sum x^2)`` — 1 means equal,
  ``1/n`` means one job holds everything.
* **Coefficient of variation** — 0 means equal.
* **Min/max ratio** — 1 means equal; 0 means somebody is starved.

Each is computed over the *weighted, demand-normalized* aggregates by
default: ``x_i = A_i / w_i`` restricted to jobs that are not
demand-saturated (a job that already has everything it can use should not
count as "poor").  Raw variants are exposed for completeness.

**Degenerate-vector convention.**  Empty and all-zero vectors read as
*perfectly equal* across all three metrics — ``jain_index`` and
``min_max_ratio`` return 1.0, ``coefficient_of_variation`` returns 0.0 —
because an allocation where every job holds exactly the same amount
(zero) exhibits no imbalance for these measures to report.  The naive
formulas would all divide by zero there; pinning the convention (rather
than returning NaN) keeps time-integrated observers and report tables
total.  Guarded by ``tests/metrics/test_fairness.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import ABS_TOL
from repro.core.allocation import Allocation


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index of a non-negative vector (1 = perfectly equal).

    Empty and all-zero vectors return 1.0 (see the module docstring's
    degenerate-vector convention).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return 1.0
    denom = v.size * float((v * v).sum())
    if denom <= 0.0:
        return 1.0
    return float(v.sum()) ** 2 / denom


def coefficient_of_variation(values: np.ndarray) -> float:
    """Std / mean (0 = perfectly equal).

    Empty and all-zero vectors return 0.0 — "perfectly equal", consistent
    with :func:`jain_index` / :func:`min_max_ratio` (module docstring).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0 or v.mean() <= 0.0:
        return 0.0
    return float(v.std() / v.mean())


def min_max_ratio(values: np.ndarray) -> float:
    """min / max (1 = equal, 0 = somebody starved).

    Empty and all-zero vectors return 1.0 — everyone holds the same
    (zero) amount, so nobody is *relatively* starved (module docstring).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0 or v.max() <= 0.0:
        return 1.0
    return float(v.min() / v.max())


@dataclass(slots=True)
class BalanceReport:
    """Balance metrics of one allocation (the F1/F2 figure rows)."""

    policy: str
    jain: float
    cov: float
    min_max: float
    min_level: float
    max_level: float
    utilization: float

    def row(self) -> dict[str, float]:
        return {
            "jain": self.jain,
            "cov": self.cov,
            "min_max": self.min_max,
            "min_level": self.min_level,
            "max_level": self.max_level,
            "utilization": self.utilization,
        }


def _comparable_levels(alloc: Allocation) -> np.ndarray:
    """Weighted levels of jobs that are *not* demand-saturated.

    Demand-saturated jobs sit at their personal maximum; including them
    would penalize every policy for the workload's own heterogeneity.
    When everyone is saturated the full weighted-level vector is returned.
    """
    cluster = alloc.cluster
    levels = alloc.normalized_aggregates()
    unsat = alloc.aggregates < cluster.aggregate_demand * (1.0 - 1e-9) - ABS_TOL
    if unsat.any():
        return levels[unsat]
    return levels


def balance_report(alloc: Allocation) -> BalanceReport:
    """Compute the balance metrics of an allocation."""
    levels = _comparable_levels(alloc)
    return BalanceReport(
        policy=alloc.policy,
        jain=jain_index(levels),
        cov=coefficient_of_variation(levels),
        min_max=min_max_ratio(levels),
        min_level=float(levels.min()) if levels.size else 0.0,
        max_level=float(levels.max()) if levels.size else 0.0,
        utilization=alloc.utilization,
    )
