"""Allocation-quality metrics (balance, fairness, completion-time summaries)."""

from repro.metrics.fairness import (
    jain_index,
    coefficient_of_variation,
    min_max_ratio,
    balance_report,
    BalanceReport,
)

__all__ = [
    "jain_index",
    "coefficient_of_variation",
    "min_max_ratio",
    "balance_report",
    "BalanceReport",
]
