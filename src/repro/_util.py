"""Shared numeric tolerances and validation helpers.

Everything in the library compares fluid allocations (floats) against
capacities and demands, so a single, consistent notion of "equal up to
rounding" matters: the AMF progressive-filling solver snaps levels that were
located by binary search, and the property checkers must not flag 1e-12
residue as a fairness violation.  All modules import :data:`ABS_TOL` /
:data:`REL_TOL` from here instead of hard-coding their own epsilons.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

#: Absolute tolerance used when comparing allocation quantities.
ABS_TOL: float = 1e-9

#: Relative tolerance used when comparing allocation quantities.
REL_TOL: float = 1e-9

#: Tolerance for binary searches over levels / makespans (they are snapped to
#: exact bottlenecks afterwards, so this only bounds the number of probes).
SEARCH_TOL: float = 1e-11


def feq(a: float, b: float, *, scale: float = 1.0) -> bool:
    """Return True when ``a`` and ``b`` are equal up to library tolerance.

    ``scale`` lets callers widen the comparison for quantities that are sums
    of many terms (e.g. total flow over thousands of edges).
    """
    tol = scale * max(ABS_TOL, REL_TOL * max(abs(a), abs(b)))
    return abs(a - b) <= tol


def fle(a: float, b: float, *, scale: float = 1.0) -> bool:
    """Return True when ``a <= b`` up to library tolerance."""
    return a <= b + scale * max(ABS_TOL, REL_TOL * max(abs(a), abs(b)))


def flt(a: float, b: float, *, scale: float = 1.0) -> bool:
    """Return True when ``a`` is strictly below ``b`` beyond tolerance."""
    return not fle(b, a, scale=scale)


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def as_float_array(values: Iterable[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, validating finiteness."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    require(arr.ndim == 1, f"{name} must be one-dimensional, got shape {arr.shape}")
    require(bool(np.isfinite(arr).all()), f"{name} must contain only finite values")
    return arr


def as_float_matrix(values, name: str) -> np.ndarray:
    """Convert ``values`` to a 2-D float array, validating finiteness."""
    arr = np.asarray(values, dtype=float)
    require(arr.ndim == 2, f"{name} must be two-dimensional, got shape {arr.shape}")
    require(bool(np.isfinite(arr).all()), f"{name} must contain only finite values")
    return arr


def nonneg(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that every entry of ``arr`` is non-negative (up to tolerance)."""
    if arr.size and float(arr.min()) < -ABS_TOL:
        raise ValueError(f"{name} must be non-negative, found {float(arr.min())}")
    return np.maximum(arr, 0.0)


def stable_unique_levels(values: Sequence[float]) -> list[float]:
    """Collapse ``values`` into sorted representatives that differ beyond tolerance.

    Used by water-filling code to enumerate candidate breakpoints without
    duplicating levels that differ only by float noise.
    """
    out: list[float] = []
    for v in sorted(values):
        if not out or not feq(out[-1], v):
            out.append(v)
    return out
