"""Multi-resource system model.

Notation (extends DESIGN.md §1): ``R`` resource types; site ``j`` offers a
capacity vector ``c_j ∈ R_+^R``; each *task* of job ``i`` consumes the
demand vector ``r_i`` (identical across sites, the standard DRF
assumption); job ``i`` can run at most ``N_ij`` simultaneous tasks at site
``j`` (its runnable work there — the multi-resource demand cap).  A fluid
allocation assigns task rates ``x_ij ≥ 0``.

Dominant shares:

* **global** (used by AMRF): ``s_i = X_i * max_r r_ir / C_r`` where
  ``X_i = Σ_j x_ij`` and ``C_r = Σ_j c_jr`` — the fraction of the
  federation's scarcest-for-i resource the job holds in aggregate;
* **local** (used by per-site DRF): the same with site-``j`` capacities.
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Mapping, Sequence

import numpy as np

from repro._util import require


class MRSite:
    """A site with a vector of resource capacities."""

    def __init__(self, name: str, capacities: Mapping[str, float]):
        require(bool(name), "site name must be non-empty")
        require(bool(capacities), "site needs at least one resource")
        for res, cap in capacities.items():
            # isfinite first: `cap > 0.0` alone admits inf and mislabels NaN
            # as "not positive" (see the Job/Site non-finite rejection).
            require(
                math.isfinite(cap) and cap > 0.0,
                f"site {name!r}: capacity of {res!r} must be positive and finite, got {cap}",
            )
        self.name = name
        self.capacities = dict(capacities)


class MRJob:
    """A job with a per-task demand vector and site-pinned task counts."""

    def __init__(
        self,
        name: str,
        task_demand: Mapping[str, float],
        tasks: Mapping[str, float],
        weight: float = 1.0,
    ):
        require(bool(name), "job name must be non-empty")
        # Per-entry finiteness first: NaN fails `v > 0` too, but then the
        # aggregate check would mislabel it "task demand must be non-zero".
        for res, d in task_demand.items():
            require(
                math.isfinite(d) and d >= 0.0,
                f"job {name!r}: demand of {res!r} must be non-negative and finite, got {d}",
            )
        require(any(v > 0 for v in task_demand.values()), f"job {name!r}: task demand must be non-zero")
        for site, count in tasks.items():
            require(
                math.isfinite(count) and count >= 0.0,
                f"job {name!r}: task count at {site!r} must be non-negative and finite, got {count}",
            )
        require(any(v > 0 for v in tasks.values()), f"job {name!r}: needs tasks at >= 1 site")
        require(
            math.isfinite(weight) and weight > 0.0,
            f"job {name!r}: weight must be positive and finite, got {weight}",
        )
        self.name = name
        self.task_demand = dict(task_demand)
        self.tasks = {s: float(v) for s, v in tasks.items() if v > 0}
        self.weight = weight


class MRCluster:
    """Immutable snapshot of a multi-resource federation."""

    def __init__(self, sites: Sequence[MRSite], jobs: Sequence[MRJob]):
        require(len(sites) > 0, "need at least one site")
        names = [s.name for s in sites]
        require(len(set(names)) == len(names), "site names must be unique")
        jnames = [j.name for j in jobs]
        require(len(set(jnames)) == len(jnames), "job names must be unique")
        resources = sorted({r for s in sites for r in s.capacities})
        for site in sites:
            require(
                set(site.capacities) == set(resources),
                f"site {site.name!r} must define all resources {resources}",
            )
        for job in jobs:
            unknown = set(job.tasks) - set(names)
            require(not unknown, f"job {job.name!r} references unknown sites {sorted(unknown)}")
            require(
                set(job.task_demand) <= set(resources),
                f"job {job.name!r} demands unknown resources",
            )
        self.sites = tuple(sites)
        self.jobs = tuple(jobs)
        self.resources = resources
        self._site_index = {n: k for k, n in enumerate(names)}

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_resources(self) -> int:
        return len(self.resources)

    # ------------------------------------------------------------------
    @cached_property
    def capacity_matrix(self) -> np.ndarray:
        """``(m, R)`` per-site capacities."""
        return np.array([[s.capacities[r] for r in self.resources] for s in self.sites])

    @cached_property
    def total_capacity(self) -> np.ndarray:
        """``(R,)`` federation-wide capacities."""
        return self.capacity_matrix.sum(axis=0)

    @cached_property
    def demand_matrix(self) -> np.ndarray:
        """``(n, R)`` per-task demand vectors."""
        return np.array([[j.task_demand.get(r, 0.0) for r in self.resources] for j in self.jobs])

    @cached_property
    def task_caps(self) -> np.ndarray:
        """``(n, m)`` max simultaneous tasks (0 off-support)."""
        caps = np.zeros((self.n_jobs, self.n_sites))
        for i, job in enumerate(self.jobs):
            for site, count in job.tasks.items():
                caps[i, self._site_index[site]] = count
        return caps

    @cached_property
    def weights(self) -> np.ndarray:
        return np.array([j.weight for j in self.jobs])

    # ------------------------------------------------------------------
    def global_dominant_factor(self) -> np.ndarray:
        """``(n,)`` dominant share per unit aggregate task rate (global capacities)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = self.demand_matrix / self.total_capacity
        return frac.max(axis=1)

    def local_dominant_factor(self, j: int) -> np.ndarray:
        """``(n,)`` dominant share per unit task rate at site ``j``."""
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = self.demand_matrix / self.capacity_matrix[j]
        return frac.max(axis=1)

    def aggregate_dominant_shares(self, rates: np.ndarray) -> np.ndarray:
        """``(n,)`` global dominant shares of an ``(n, m)`` task-rate matrix."""
        return rates.sum(axis=1) * self.global_dominant_factor()

    def validate_rates(self, rates: np.ndarray, *, tol: float = 1e-7) -> None:
        """Assert an ``(n, m)`` task-rate matrix respects caps and capacities."""
        require(rates.shape == (self.n_jobs, self.n_sites), "rate matrix shape mismatch")
        require(float(rates.min(initial=0.0)) >= -tol, "rates must be non-negative")
        over_cap = rates - self.task_caps
        require(float(over_cap.max(initial=0.0)) <= tol * max(1.0, float(self.task_caps.max(initial=1.0))), "task cap violated")
        usage = np.einsum("ij,ir->jr", rates, self.demand_matrix)
        slack = usage - self.capacity_matrix
        require(
            float(slack.max(initial=0.0)) <= tol * max(1.0, float(self.capacity_matrix.max())),
            "site resource capacity violated",
        )
