"""Per-site Dominant Resource Fairness — the multi-resource baseline.

At each site independently, progressive filling on *local* dominant
shares: all present jobs raise a common share level; each resource's usage
is a capped piecewise-linear function of the level, so the level at which
a resource saturates is solved in closed form
(:func:`repro.core.waterfilling.solve_capped_level`).  When a resource
saturates, every unfrozen job consuming it freezes; jobs not touching the
saturated resource keep rising in later rounds.
"""

from __future__ import annotations

import numpy as np

from repro._util import ABS_TOL
from repro.core.waterfilling import solve_capped_level
from repro.multiresource.model import MRCluster


def _site_drf_rates(cluster: MRCluster, j: int) -> np.ndarray:
    """Task rates of DRF at site ``j`` for every job (zeros off-support)."""
    caps = cluster.task_caps[:, j]
    present = np.flatnonzero(caps > 0.0)
    n = cluster.n_jobs
    rates = np.zeros(n)
    if present.size == 0:
        return rates
    dom = cluster.local_dominant_factor(j)[present]  # share per task
    weights = cluster.weights[present]
    demand = cluster.demand_matrix[present]  # (p, R)
    capacity = cluster.capacity_matrix[j]  # (R,)
    share_caps = caps[present] * dom  # share level at which each job's tasks run out

    frozen = np.zeros(present.size, dtype=bool)
    levels = np.zeros(present.size)  # frozen dominant-share levels
    remaining = capacity.astype(float).copy()

    for _round in range(present.size + cluster.n_resources + 1):
        if frozen.all():
            break
        active = ~frozen
        # Usage of resource r as the common weighted level lam rises:
        # each active job contributes min(lam * w, share_cap) / dom * demand_r.
        lam_star = np.inf
        tight_resource = None
        for r in range(cluster.n_resources):
            coeff = demand[active, r] / dom[active]
            mask = coeff > 0.0
            if not mask.any():
                continue
            budget = remaining[r]
            # normalize: per-unit-level usage = coeff * w; caps scale likewise
            idx = np.flatnonzero(active)[mask]
            eff_caps = (share_caps[idx] - levels[idx]) * (demand[idx, r] / dom[idx])
            eff_w = cluster.weights[present][idx] * (demand[idx, r] / dom[idx])
            total_possible = float(eff_caps.sum())
            if total_possible <= budget + ABS_TOL:
                continue  # this resource never binds for the remaining rise
            lam_r = solve_capped_level(budget, eff_caps, eff_w)
            if lam_r < lam_star:
                lam_star, tight_resource = lam_r, r
        if tight_resource is None:
            # no resource binds: everyone saturates at task caps
            delta = share_caps[active] - levels[active]
            for r in range(cluster.n_resources):
                remaining[r] -= float((delta * demand[active, r] / dom[active]).sum())
            levels[active] = share_caps[active]
            frozen[active] = True
            break
        # advance everyone to lam_star (clipped at their caps), freeze the
        # cap-saturated and the users of the tight resource
        w_act = cluster.weights[present][active]
        rise = np.minimum(levels[active] + lam_star * w_act, share_caps[active]) - levels[active]
        idx_act = np.flatnonzero(active)
        for r in range(cluster.n_resources):
            remaining[r] -= float((rise * demand[idx_act, r] / dom[idx_act]).sum())
        levels[idx_act] += rise
        cap_sat = levels >= share_caps - ABS_TOL
        uses_tight = demand[:, tight_resource] > 0.0
        frozen |= cap_sat | uses_tight
    rates[present] = levels / dom
    return rates


def solve_persite_drf(cluster: MRCluster) -> np.ndarray:
    """``(n, m)`` task rates of independent per-site DRF."""
    rates = np.zeros((cluster.n_jobs, cluster.n_sites))
    for j in range(cluster.n_sites):
        rates[:, j] = _site_drf_rates(cluster, j)
    cluster.validate_rates(rates)
    return rates
