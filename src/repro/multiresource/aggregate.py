"""AMRF — Aggregate Multi-Resource Fairness (the AMF analogue for vectors).

Max-min fairness over each job's **aggregate dominant share**
``s_i = (Σ_j x_ij) * max_r r_ir / C_r``.  Unlike the single-resource case,
the feasible region of share vectors is a general polytope (per-site,
per-resource linear constraints), not a flow polytope, so feasibility is
decided by an LP (``scipy.optimize.linprog``) and progressive filling uses
bisection with per-job freezing probes — the same trustworthy-but-slow
architecture as :mod:`repro.core.reference`.  Intended scale: tens of
jobs (it is an extension study, not the inner loop of a simulator).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro._util import require
from repro.multiresource.model import MRCluster

__all__ = ["amrf_shares", "solve_amrf"]


class _RateLP:
    """LP scaffolding over the support task-rate variables ``x_ij``."""

    def __init__(self, cluster: MRCluster):
        self.cluster = cluster
        caps = cluster.task_caps
        self.edges = [(i, j) for i in range(cluster.n_jobs) for j in range(cluster.n_sites) if caps[i, j] > 0]
        self.bounds = [(0.0, float(caps[i, j])) for (i, j) in self.edges]
        n_e = len(self.edges)
        # site-resource capacity rows
        rows = []
        rhs = []
        for j in range(cluster.n_sites):
            for r in range(cluster.n_resources):
                row = np.zeros(n_e)
                for e, (i, je) in enumerate(self.edges):
                    if je == j:
                        row[e] = cluster.demand_matrix[i, r]
                if row.any():
                    rows.append(row)
                    rhs.append(cluster.capacity_matrix[j, r])
        self.cap_rows = np.array(rows) if rows else np.zeros((0, n_e))
        self.cap_rhs = np.array(rhs)
        # per-job aggregate dominant-share rows
        dom = cluster.global_dominant_factor()
        self.share_rows = np.zeros((cluster.n_jobs, n_e))
        for e, (i, j) in enumerate(self.edges):
            self.share_rows[i, e] = dom[i]

    def solve(self, share_floor: np.ndarray, objective: np.ndarray | None = None):
        A_ub = np.vstack([self.cap_rows, -self.share_rows])
        b_ub = np.concatenate([self.cap_rhs, -np.asarray(share_floor, dtype=float)])
        c = np.zeros(len(self.edges)) if objective is None else objective
        return linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=self.bounds, method="highs")

    def max_share_of(self, i: int, share_floor: np.ndarray):
        return self.solve(share_floor, objective=-self.share_rows[i])

    def rates_from(self, x: np.ndarray) -> np.ndarray:
        rates = np.zeros((self.cluster.n_jobs, self.cluster.n_sites))
        for e, (i, j) in enumerate(self.edges):
            rates[i, j] = x[e]
        return rates


def _share_caps(cluster: MRCluster) -> np.ndarray:
    """Per-job upper bound on the aggregate dominant share (task caps alone)."""
    dom = cluster.global_dominant_factor()
    return cluster.task_caps.sum(axis=1) * dom


def amrf_shares(cluster: MRCluster, tol: float = 1e-9) -> np.ndarray:
    """The AMRF aggregate dominant-share vector (weighted max-min fair)."""
    n = cluster.n_jobs
    if n == 0:
        return np.zeros(0)
    lp = _RateLP(cluster)
    caps = _share_caps(cluster)
    weights = cluster.weights
    frozen = np.zeros(n, dtype=bool)
    shares = np.zeros(n)

    def floor_at(t: float) -> np.ndarray:
        req = np.minimum(t * weights, caps)
        req[frozen] = shares[frozen]
        return req

    t_lo = 0.0
    for _stage in range(n + 1):
        if frozen.all():
            break
        hi = float(np.max(caps[~frozen] / weights[~frozen], initial=0.0)) + 1.0
        if lp.solve(floor_at(hi)).success:
            shares[~frozen] = np.minimum(hi * weights, caps)[~frozen]
            break
        lo = t_lo
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if lp.solve(floor_at(mid)).success:
                lo = mid
            else:
                hi = mid
        req = floor_at(lo)
        probe_tol = max(1e-7, 100.0 * tol)
        newly = []
        for i in np.flatnonzero(~frozen):
            res = lp.max_share_of(i, req)
            if not res.success:
                # At the bottleneck the floors pin a degenerate corner whose
                # feasible sliver can fall below HiGHS' tolerance, making a
                # feasible probe report infeasible (and the job freeze too
                # early, below its true max-min share).  Relaxing the floors
                # a hair re-opens the sliver without moving the verdict.
                res = lp.max_share_of(i, req * (1.0 - 1e-7))
            best = -res.fun if res.success else req[i]
            if best <= req[i] + probe_tol * max(1.0, req[i]):
                newly.append(i)
        if not newly:
            newly = [int(np.flatnonzero(~frozen)[0])]
        for i in newly:
            shares[i] = req[i]
            frozen[i] = True
        t_lo = lo
    return shares


def solve_amrf(cluster: MRCluster, tol: float = 1e-9) -> np.ndarray:
    """``(n, m)`` task rates realizing the AMRF shares (one feasible witness)."""
    shares = amrf_shares(cluster, tol=tol)
    lp = _RateLP(cluster)
    res = lp.solve(shares * (1.0 - 1e-9))
    require(res.success, "AMRF shares could not be realized (numeric breakdown)")
    rates = lp.rates_from(res.x)
    cluster.validate_rates(rates)
    return rates
