"""Production AMRF engine: progressive filling over resource vectors.

This is the multi-resource solver behind :func:`repro.core.amf.solve_amf`
when a :class:`~repro.model.cluster.Cluster` carries non-canonical resource
vectors.  It replaces the extension study's bisection + per-job-LP
architecture (:mod:`repro.multiresource.aggregate`) with the production
pattern used by the scalar solver:

* **exact scalar routing** — when a single resource exists (R=1) or one
  resource *dominates* every job at every site, the instance is an exact
  change of variables away from the scalar flow problem; it is handed to
  the flow/GGT fast path and mapped back (:func:`scalar_reduction`).
* **progressive filling with one max-``t`` LP per round** — instead of a
  λ-bisection (tens of LPs) per bottleneck, one LP maximizes the common
  weighted share ``t`` directly; its optimal vertex both locates the
  bottleneck level *and* witnesses which jobs are provably unblocked, so
  most per-job freezing probes are skipped.
* **warm vertex bases** — scipy's HiGHS interface cannot adopt an external
  basis, so warm starts are implemented at the constraint level: an
  :class:`AmrfBasis` persists the *binding* site-resource rows of the last
  optimal vertex, each LP is first solved against only those rows, the
  full row set is verified vectorized, and violated rows are added and
  re-solved.  Like :class:`~repro.core.amf.CutBasis` this is purely an
  accelerator — every returned vertex is verified against all rows.
* **allocation-table cache** — solved ``(shares, rates)`` tables are kept
  in a bounded LRU keyed by the vector-aware cluster fingerprint plus the
  federation totals (the Precomputed-DRF pattern: compute tables once,
  serve lookups online).
* **connected-component sharding** — the job-site graph decomposes by the
  same union-find as the scalar path (:func:`repro.core.sharding.decompose`);
  dominant-share denominators are federation-wide constants, so each
  component's leximin is independent given ``resource_totals``.

Fairness-property status (see ``docs/multiresource.md``): Pareto
efficiency and envy-freeness hold as in DRF; sharing incentive holds
against the equal dominant-share partition; AMF-E floors generalize as
aggregate task-rate floors (converted to share floors internally).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

import numpy as np

from repro._util import require
from repro.core.allocation import Allocation, scrub_matrix
from repro.core.amf import AmfDiagnostics, CutBasis, _observed_solve
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site

__all__ = [
    "AmrfBasis",
    "TableCache",
    "scalar_reduction",
    "amrf_allocate",
    "solve_multiresource",
    "global_table_cache",
]

_TOL = 1e-9
_FREEZE_TOL = 1e-7


# ----------------------------------------------------------------------
# Exact scalar routing
# ----------------------------------------------------------------------
def scalar_reduction(
    cluster: Cluster,
    resource_totals: Mapping[str, float] | None = None,
) -> tuple[Cluster, np.ndarray] | None:
    """Reduce an MR cluster to an *exactly equivalent* scalar instance.

    Looks for a resource ``r*`` that **dominates locally**: every site
    offers it, every job consumes it, and ``r_ir * c_jr* <= r_ir* * c_jr``
    for all jobs ``i``, sites ``j``, resources ``r`` (cross-multiplied, so
    no division tolerance).  Then with ``k_i = r_ir*`` the change of
    variables ``b_ij = k_i * a_ij`` maps the instance onto a scalar
    cluster with capacities ``c_jr*`` and demand caps ``k_i * caps_ij``:

    * feasibility is equivalent — the ``r*`` row implies every other
      site-resource row under local dominance;
    * local dominance summed over sites gives global dominance, so every
      job's dominant share is ``s_i = (sum_j b_ij) / C_r*`` — the scalar
      leximin objective up to one constant factor, hence the same
      optimum ordering (``resource_totals`` only scales that constant,
      so shard reductions stay exact).

    ``R = 1`` is the degenerate case where the single resource dominates
    trivially.  Returns ``(scalar_cluster, k)`` or ``None`` when no
    resource dominates (the progressive-filling engine takes over).
    """
    names = cluster.resource_names
    if not names:
        return None
    J = cluster.job_resource_matrix  # (n, R)
    C = cluster.site_resource_matrix  # (m, R)
    T: np.ndarray | None = None
    if resource_totals is not None:
        own = cluster.resource_totals
        T = np.array([float(resource_totals.get(res, own[res])) for res in names])
    star: int | None = None
    for r in range(len(names)):
        if not (C[:, r] > 0.0).all():
            continue
        if cluster.n_jobs and not (J[:, r] > 0.0).all():
            continue
        # r_ir * c_jr* <= r_ir* * c_jr  for all i, j, r
        lhs = J[:, None, :] * C[None, :, r : r + 1]  # (n, m, R)
        rhs = J[:, None, r : r + 1] * C[None, :, :]  # (n, m, R)
        if not (lhs <= rhs).all():
            continue
        # When solving a shard of a larger federation the dominant-share
        # denominators are the *federation* totals, which per-site
        # dominance inside the shard does not bound: r* must also be every
        # job's dominant resource under those totals (r_ir * T_r* <=
        # r_ir* * T_r), or the reduced objective would rank jobs by the
        # wrong resource.  Without external totals this is the per-site
        # inequalities summed over sites, hence automatic.
        if T is not None and cluster.n_jobs and not (J * T[r] <= J[:, r : r + 1] * T).all():
            continue
        star = r
        break
    if star is None:
        return None
    k = J[:, star] if cluster.n_jobs else np.zeros(0)
    caps = cluster.demand_caps
    sites = [
        Site(site.name, float(C[j, star]), site.tags)
        for j, site in enumerate(cluster.sites)
    ]
    jobs = []
    for i, job in enumerate(cluster.jobs):
        j_caps = {
            site: float(k[i] * caps[i, cluster.site_index(site)]) for site in job.workload
        }
        jobs.append(
            Job(
                name=job.name,
                workload=dict(job.workload),
                demand=j_caps,
                weight=job.weight,
                arrival=job.arrival,
            )
        )
    return Cluster(sites, jobs), k


# ----------------------------------------------------------------------
# Warm vertex basis + allocation-table cache
# ----------------------------------------------------------------------
class AmrfBasis:
    """Persistent set of binding site-resource LP rows.

    Keys are ``(site_name, resource)`` pairs, so a basis survives job
    churn and applies across related clusters, exactly like the scalar
    :class:`~repro.core.amf.CutBasis` stores site-name cuts.  Seeding a
    solve from a basis cannot change its result — every vertex is
    verified against the full row set — it only skips re-discovering
    which site-resource capacities actually bind.
    """

    __slots__ = ("rows", "max_rows")

    def __init__(self, max_rows: int = 4096):
        self.rows: OrderedDict[tuple[str, str], None] = OrderedDict()
        self.max_rows = max_rows

    def __len__(self) -> int:
        return len(self.rows)

    def record(self, key: tuple[str, str]) -> None:
        if key in self.rows:
            self.rows.move_to_end(key)
        else:
            self.rows[key] = None
            while len(self.rows) > self.max_rows:
                self.rows.popitem(last=False)


class TableCache:
    """Bounded LRU of solved AMRF tables (the Precomputed-DRF pattern).

    Maps ``(fingerprint, totals_key, floors_key)`` to a solved
    ``(shares, rates)`` pair.  The fingerprint covers resource names and
    values, so a hit guarantees identical solver inputs and the table is
    served verbatim — online allocation becomes a lookup.
    """

    def __init__(self, maxsize: int = 64):
        require(maxsize > 0, "table cache needs a positive size")
        self.maxsize = maxsize
        self._tables: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._tables)

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        entry = self._tables.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._tables.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, shares: np.ndarray, rates: np.ndarray) -> None:
        shares = np.array(shares, dtype=float)
        rates = np.array(rates, dtype=float)
        shares.flags.writeable = False
        rates.flags.writeable = False
        self._tables[key] = (shares, rates)
        self._tables.move_to_end(key)
        while len(self._tables) > self.maxsize:
            self._tables.popitem(last=False)

    def clear(self) -> None:
        self._tables.clear()


_GLOBAL_TABLES = TableCache(maxsize=64)


def global_table_cache() -> TableCache:
    """The process-wide AMRF table cache (shared by service solvers)."""
    return _GLOBAL_TABLES


def _table_key(
    cluster: Cluster,
    totals: Mapping[str, float],
    floors: np.ndarray | None,
) -> tuple:
    totals_key = tuple(sorted((res, float(val)) for res, val in totals.items()))
    floors_key = None if floors is None else np.asarray(floors, dtype=float).tobytes()
    return (cluster.fingerprint(), totals_key, floors_key)


# ----------------------------------------------------------------------
# The progressive-filling LP engine
# ----------------------------------------------------------------------
class _EngineLP:
    """LP scaffolding over support task-rate variables plus the fill level ``t``.

    Variables are the ``n_e`` support edge rates ``x_e`` followed by one
    ``t`` variable (bounded to 0 when unused).  Site-resource capacity
    rows are kept as one dense block so the warm-basis loop can verify
    all of them against a candidate vertex in a single matmul.
    """

    def __init__(self, cluster: Cluster, dom: np.ndarray):
        self.cluster = cluster
        caps = cluster.demand_caps
        self.edges = [
            (i, j)
            for i in range(cluster.n_jobs)
            for j in range(cluster.n_sites)
            if caps[i, j] > 0.0
        ]
        self.n_e = len(self.edges)
        self.bounds = [(0.0, float(caps[i, j])) for (i, j) in self.edges]
        self.dom = dom
        J = cluster.job_resource_matrix
        names = cluster.resource_names
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        keys: list[tuple[str, str]] = []
        for j in range(cluster.n_sites):
            for r, res in enumerate(names):
                row = np.zeros(self.n_e)
                for e, (i, je) in enumerate(self.edges):
                    if je == j:
                        row[e] = J[i, r]
                if row.any():
                    rows.append(row)
                    rhs.append(float(cluster.site_resource_matrix[j, r]))
                    keys.append((cluster.sites[j].name, res))
        self.cap_rows = np.array(rows) if rows else np.zeros((0, self.n_e))
        self.cap_rhs = np.array(rhs)
        self.cap_keys = keys
        self.share_rows = np.zeros((cluster.n_jobs, self.n_e))
        for e, (i, _j) in enumerate(self.edges):
            self.share_rows[i, e] = dom[i]
        upper = np.array([b[1] for b in self.bounds], dtype=float)
        self.share_caps = self.share_rows @ upper if self.n_e else np.zeros(cluster.n_jobs)

    def shares_of(self, x: np.ndarray) -> np.ndarray:
        return self.share_rows @ x[: self.n_e]

    def rates_from(self, x: np.ndarray) -> np.ndarray:
        rates = np.zeros((self.cluster.n_jobs, self.cluster.n_sites))
        for e, (i, j) in enumerate(self.edges):
            # HiGHS honors bounds only to its own tolerance; the model's
            # lower bound of 0 is exact, so clamping loses nothing.
            rates[i, j] = max(0.0, x[e])
        return rates

    def solve(
        self,
        c: np.ndarray,
        extra_rows: np.ndarray,
        extra_rhs: np.ndarray,
        *,
        t_max: float | None,
        basis: AmrfBasis | None,
        diag: AmfDiagnostics,
    ):
        """Solve with the warm-basis loop; returns the scipy result.

        ``c``/``extra_rows`` span ``n_e + 1`` variables (``t`` last).
        Starts from the basis' remembered binding rows, verifies the full
        capacity block against each candidate vertex, adds violated rows,
        and re-solves until clean; binding rows are recorded back.
        """
        from scipy.optimize import linprog

        n_rows = len(self.cap_rhs)
        key_index = {key: idx for idx, key in enumerate(self.cap_keys)}
        if basis is not None and len(basis.rows) > 0:
            active = sorted(key_index[k] for k in basis.rows if k in key_index)
        else:
            active = list(range(n_rows))
        if basis is not None:
            diag.amrf_basis_rows_reused += len(active)
        bounds = [*self.bounds, (0.0, t_max if t_max is not None else None)]
        seeded = set(active)
        tried = set(active)
        res = None
        for _attempt in range(n_rows + 2):
            if active:
                cap_block = np.hstack(
                    [self.cap_rows[active], np.zeros((len(active), 1))]
                )
                A_ub = np.vstack([cap_block, extra_rows])
                b_ub = np.concatenate([self.cap_rhs[active], extra_rhs])
            else:
                A_ub, b_ub = extra_rows, extra_rhs
            res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
            diag.amrf_lps += 1
            if not res.success:
                return res
            x = res.x[: self.n_e]
            slack = self.cap_rhs - self.cap_rows @ x
            scale = np.maximum(1.0, np.abs(self.cap_rhs))
            violated = [
                idx
                for idx in np.flatnonzero(slack < -_FREEZE_TOL * scale)
                if idx not in tried
            ]
            if not violated:
                if basis is not None:
                    # Persist the binding rows AND the rows the loop had to
                    # *discover* (violated at a warm vertex): such a row cuts
                    # the warm vertex off again next solve, and leaving it
                    # out re-pays the re-solve every time.  Rows merely
                    # seeded at the start are NOT blanket-recorded — a cold
                    # start seeds everything, and recording it all would
                    # freeze the basis at "every row" forever.
                    for idx in np.flatnonzero(slack <= _FREEZE_TOL * scale):
                        basis.record(self.cap_keys[int(idx)])
                    for idx in tried - seeded:
                        basis.record(self.cap_keys[int(idx)])
                return res
            active = sorted({*active, *violated})
            tried.update(violated)
        return res  # pragma: no cover - loop always terminates earlier


def _amrf_fill(
    cluster: Cluster,
    lp: _EngineLP,
    share_floors: np.ndarray,
    diag: AmfDiagnostics,
    basis: AmrfBasis | None,
) -> np.ndarray:
    """Progressive filling over weighted dominant shares; returns shares."""
    n = cluster.n_jobs
    weights = cluster.weights
    frozen = np.zeros(n, dtype=bool)
    shares = np.zeros(n)
    share_caps = lp.share_caps
    # Jobs with no usable edges can only sit at their floor (0).
    for i in range(n):
        if share_caps[i] <= 0.0:
            frozen[i] = True
            shares[i] = 0.0

    def extra_for(active_t: bool, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rows enforcing ``s_i >= targets_i`` (+ ``s_i >= w_i t`` when filling)."""
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        for i in range(n):
            if targets[i] > 0.0:
                rows.append(np.append(-lp.share_rows[i], 0.0))
                rhs.append(-float(targets[i]))
            if active_t and not frozen[i]:
                rows.append(np.append(-lp.share_rows[i], float(weights[i])))
                rhs.append(0.0)
        if not rows:
            return np.zeros((0, lp.n_e + 1)), np.zeros(0)
        return np.array(rows), np.array(rhs)

    floors_targets = np.where(frozen, shares, share_floors)
    c_t = np.zeros(lp.n_e + 1)
    c_t[-1] = -1.0
    for _round in range(n + 1):
        if frozen.all():
            break
        diag.amrf_rounds += 1
        targets = np.where(frozen, shares, share_floors)
        rows, rhs = extra_for(True, targets)
        res = lp.solve(c_t, rows, rhs, t_max=None, basis=basis, diag=diag)
        if not res.success:
            raise ValueError("AMRF floors are infeasible for this cluster")
        t_star = float(res.x[-1])
        witness = lp.shares_of(res.x)
        newly: list[int] = []
        candidates: list[int] = []
        for i in np.flatnonzero(~frozen):
            target = max(weights[i] * t_star, share_floors[i])
            scale = max(1.0, target)
            if share_caps[i] <= target + _FREEZE_TOL * scale:
                # cap-saturated: x <= caps bounds force s_i <= share_caps[i],
                # so w_i * t_star <= share_caps[i] and the witness proves
                # freezing at the target is feasible.
                shares[i] = target
                frozen[i] = True
                newly.append(int(i))
            elif witness[i] > target + _FREEZE_TOL * scale:
                # the max-t vertex itself witnesses headroom — no probe
                diag.amrf_probes_skipped += 1
            else:
                candidates.append(int(i))
        probed: list[tuple[float, int, float]] = []
        for i in candidates:
            target = max(weights[i] * t_star, share_floors[i])
            diag.amrf_probes += 1
            hold = np.where(frozen, shares, np.maximum(weights * t_star, share_floors))
            hold[i] = share_floors[i]
            rows, rhs = extra_for(False, hold)
            c_probe = np.append(-lp.share_rows[i], 0.0)
            res_i = lp.solve(c_probe, rows, rhs, t_max=0.0, basis=basis, diag=diag)
            best = -float(res_i.fun) if res_i.success else target
            probed.append((best - target, i, target))
            if best <= target + _FREEZE_TOL * max(1.0, target):
                shares[i] = target
                frozen[i] = True
                newly.append(i)
        if not newly:
            # Numeric safety: progressive filling must freeze someone each
            # round; take the tightest probed job (or the slackest-witness
            # active job when every probe was skipped).
            if probed:
                _slack, i, target = min(probed)
            else:
                act = np.flatnonzero(~frozen)
                i = int(act[np.argmin(witness[act] - weights[act] * t_star)])
                target = max(weights[i] * t_star, share_floors[i])
            shares[int(i)] = target
            frozen[int(i)] = True
    require(bool(frozen.all()), "AMRF progressive filling failed to converge")
    return shares


def amrf_allocate(
    cluster: Cluster,
    *,
    floors: np.ndarray | None = None,
    resource_totals: Mapping[str, float] | None = None,
    diagnostics: AmfDiagnostics | None = None,
    basis: AmrfBasis | None = None,
    table_cache: TableCache | None = None,
) -> Allocation:
    """Solve AMRF on a multi-resource cluster with the hardened engine.

    ``floors`` are per-job aggregate task-*rate* floors (the AMF-E
    generalization): job ``i`` is guaranteed ``sum_j a_ij >= floors[i]``,
    enforced internally as a dominant-share floor ``dom_i * floors[i]``.
    ``resource_totals`` pins the federation-wide dominant-share
    denominators when solving a sub-cluster (a shard) of a larger
    federation.  ``basis`` warm-starts the LP row set; ``table_cache``
    short-circuits repeat solves entirely.
    """
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    totals = dict(resource_totals) if resource_totals is not None else cluster.resource_totals
    key = _table_key(cluster, totals, floors)
    if table_cache is not None:
        entry = table_cache.get(key)
        if entry is not None:
            diag.amrf_table_hits += 1
            _shares, rates = entry
            return Allocation(cluster, rates, policy="amrf" if floors is None else "amrf+floors")
    with _observed_solve("amrf", cluster, diag):
        dom = cluster.dominant_factor(totals)
        lp = _EngineLP(cluster, dom)
        if floors is None:
            share_floors = np.zeros(cluster.n_jobs)
        else:
            f = np.asarray(floors, dtype=float)
            require(f.shape == (cluster.n_jobs,), "floors must have one entry per job")
            require(float(f.min(initial=0.0)) >= 0.0, "floors must be non-negative")
            share_floors = np.minimum(dom * f, lp.share_caps)
        shares = _amrf_fill(cluster, lp, share_floors, diag, basis)
        # Realize a Pareto-efficient witness at the (slightly relaxed)
        # share floors: maximize total rate subject to everyone keeping
        # their fair share.
        rows_list: list[np.ndarray] = []
        rhs_list: list[float] = []
        for i in range(cluster.n_jobs):
            if shares[i] > 0.0:
                rows_list.append(np.append(-lp.share_rows[i], 0.0))
                rhs_list.append(-float(shares[i] * (1.0 - 1e-9)))
        extra_rows = np.array(rows_list) if rows_list else np.zeros((0, lp.n_e + 1))
        extra_rhs = np.array(rhs_list) if rhs_list else np.zeros(0)
        c_real = np.append(-np.ones(lp.n_e), 0.0)
        res = lp.solve(c_real, extra_rows, extra_rhs, t_max=0.0, basis=basis, diag=diag)
        require(res.success, "AMRF shares could not be realized (numeric breakdown)")
        rates = scrub_matrix(cluster, lp.rates_from(res.x))
    if table_cache is not None:
        table_cache.put(key, shares, rates)
    return Allocation(cluster, rates, policy="amrf" if floors is None else "amrf+floors")


# ----------------------------------------------------------------------
# The solve_amf multi-resource entry
# ----------------------------------------------------------------------
def solve_multiresource(
    cluster: Cluster,
    floors: np.ndarray | None = None,
    diagnostics: AmfDiagnostics | None = None,
    basis: CutBasis | None = None,
    oracle: str = "parametric",
    *,
    shards: bool = False,
    workers: int | None = None,
    resource_totals: Mapping[str, float] | None = None,
    amrf_basis: AmrfBasis | None = None,
    table_cache: TableCache | None = None,
) -> Allocation:
    """Route a multi-resource solve: exact scalar fast path, else the engine.

    Called by :func:`repro.core.amf.solve_amf` when
    ``cluster.is_multiresource``.  The reduction (R=1 or a globally
    dominant resource) reuses the *entire* scalar machinery — parametric /
    GGT oracles, cut bases, sharding — bit-identically in the reduced
    variables; otherwise connected components are decomposed here and each
    is solved by :func:`amrf_allocate` under the federation-wide totals.
    """
    diag = diagnostics if diagnostics is not None else AmfDiagnostics()
    if table_cache is None:
        # Production default: repeat solves of an unchanged (sub-)cluster
        # under the same totals serve from the precomputed table
        # (fingerprint-keyed, so a hit is exact, never approximate).
        table_cache = global_table_cache()
    red = scalar_reduction(cluster, resource_totals)
    if red is not None:
        from repro.core.amf import solve_amf

        scalar, k = red
        scaled_floors = None
        if floors is not None:
            scaled_floors = np.asarray(floors, dtype=float) * k
        sub = solve_amf(
            scalar,
            scaled_floors,
            diag,
            basis,
            oracle,
            shards=shards,
            workers=workers,
        )
        safe_k = np.where(k > 0.0, k, 1.0)
        if (k == 1.0).all():
            # Identity change of variables (R=1 unit-demand spellings): the
            # scalar result is already scrubbed against a float-identical
            # constraint set, and re-scrubbing here would recompute column
            # usage in a different summation order (the MR matmul) —
            # flipping low bits and breaking bit-identity with the scalar
            # solve.
            return Allocation(cluster, sub.matrix, policy=sub.policy)
        matrix = sub.matrix / safe_k[:, None]
        return Allocation(cluster, scrub_matrix(cluster, matrix), policy=sub.policy)

    totals = dict(resource_totals) if resource_totals is not None else cluster.resource_totals
    if shards:
        from repro.core.sharding import decompose, stitch

        parts = decompose(cluster)
        if len(parts) > 1:
            results = []
            for shard in parts:
                if not shard.job_indices:
                    results.append((shard, np.zeros((0, len(shard.site_indices)))))
                    continue
                sub = solve_multiresource(
                    shard.cluster,
                    None if floors is None else np.asarray(floors, dtype=float)[list(shard.job_indices)],
                    diag,
                    basis,
                    oracle,
                    resource_totals=totals,
                    amrf_basis=amrf_basis,
                    table_cache=table_cache,
                )
                results.append((shard, sub.matrix))
            matrix = stitch(cluster, results)
            return Allocation(cluster, matrix, policy="amrf" if floors is None else "amrf+floors")
    return amrf_allocate(
        cluster,
        floors=floors,
        resource_totals=totals,
        diagnostics=diag,
        basis=amrf_basis,
        table_cache=table_cache,
    )
