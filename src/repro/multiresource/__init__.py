"""Multi-resource extension: AMF meets Dominant Resource Fairness.

The paper's model has one congestible resource per site; production
schedulers allocate vectors (CPU, memory, ...).  This package implements
the natural future-work extension the paper points toward:

* :mod:`repro.multiresource.model` — sites with capacity vectors, jobs
  with per-task demand vectors and site-pinned task counts,
* :mod:`repro.multiresource.persite` — the per-site **DRF** baseline
  (Ghodsi et al.'s dominant-resource fairness, run independently at every
  site),
* :mod:`repro.multiresource.aggregate` — **AMRF**: max-min fairness over
  each job's *aggregate dominant share* across all sites — the
  multi-resource analogue of the paper's AMF (feasibility is an LP rather
  than a max-flow, so the solver uses bisection progressive filling with
  per-job freezing probes, mirroring :mod:`repro.core.reference`),
* :mod:`repro.multiresource.engine` — the **production** AMRF engine
  behind :func:`repro.core.amf.solve_amf` on vector clusters: one max-t LP
  per progressive-filling round (no bisection), warm vertex bases
  (:class:`~repro.multiresource.engine.AmrfBasis`), a solved-allocation
  table cache, connected-component sharding, and an exact scalar reduction
  that routes R=1 (and dominant-resource-degenerate) clusters to the flow
  fast path bit-identically.

Experiment X7 compares the two on dominant-share balance under skew; the
single-resource specialization collapses to AMF/PSMF and is cross-checked
against the flow solvers in the tests.
"""

from repro.multiresource.model import MRCluster, MRJob, MRSite
from repro.multiresource.persite import solve_persite_drf
from repro.multiresource.aggregate import solve_amrf, amrf_shares
from repro.multiresource.engine import (
    AmrfBasis,
    TableCache,
    amrf_allocate,
    global_table_cache,
    scalar_reduction,
    solve_multiresource,
)

__all__ = [
    "MRSite",
    "MRJob",
    "MRCluster",
    "solve_persite_drf",
    "solve_amrf",
    "amrf_shares",
    "AmrfBasis",
    "TableCache",
    "amrf_allocate",
    "global_table_cache",
    "scalar_reduction",
    "solve_multiresource",
]
