"""Process-pool fan-out for experiment sweeps.

Every figure in the reproduction is an embarrassingly parallel grid of
``fn(point, seed)`` evaluations — independent solves on independently
generated clusters.  :func:`parallel_map` owns the process-pool plumbing so
:func:`~repro.analysis.sweep.sweep1d`, the report runner and the benchmark
suite can fan out with one ``workers=`` argument and stay bit-identical to
the serial path (every task seeds its own ``np.random.default_rng``; no
state crosses task boundaries).

Two deliberate design points:

* **fork, not spawn.**  Sweep callables are closures over experiment
  parameters and are not picklable.  With the ``fork`` start method the
  child inherits the parent's memory, so the callable is published in a
  module global *before* the pool is created and workers call it by name —
  nothing but the task tuple and the result ever crosses the pipe.  On
  platforms without ``fork`` (or inside a worker) the map silently runs
  serial; correctness never depends on parallelism.
* **serial by default.**  ``workers=None`` resolves through
  :func:`default_workers` (the ``REPRO_WORKERS`` environment variable or
  :func:`set_default_workers`, else 1), so library callers see no
  behavioural change unless they opt in.

The fork fallback is silent in results but not in telemetry: the first
time a multi-worker map degrades to serial because the platform lacks
``fork``, a :class:`RuntimeWarning` is emitted (once per process) and
every such degradation bumps the ``repro_parallel_fallback_total``
counter — a sweep that quietly ran 1x instead of 8x is otherwise
indistinguishable from a slow machine.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs.instruments import record_parallel_fallback

__all__ = [
    "default_workers",
    "set_default_workers",
    "parallel_map",
    "grid_map",
]

_DEFAULT_WORKERS: int | None = None  # set_default_workers override
_IN_WORKER = False  # guards against nested pools (fork bombs)

# The callable being mapped, published for fork inheritance.  Only ever set
# in the parent immediately before the pool is created, and read by workers
# that were forked *after* the assignment.
_WORKER_FN: Callable | None = None


def default_workers() -> int:
    """The worker count used when ``workers=None``: override > env > 1."""
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return 1


def set_default_workers(n: int | None) -> None:
    """Set the process-wide default worker count (``None`` restores env/1)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = None if n is None else max(1, int(n))


def _resolve(workers: int | None) -> int:
    n = default_workers() if workers is None else max(1, int(workers))
    return min(n, os.cpu_count() or 1)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


_WARNED_NO_FORK = False  # one warning per process; the counter counts all


def _note_fork_unavailable() -> None:
    """Telemetry for a map that wanted workers but must run serial."""
    global _WARNED_NO_FORK
    record_parallel_fallback()
    if not _WARNED_NO_FORK:
        _WARNED_NO_FORK = True
        warnings.warn(
            "parallel_map: the 'fork' start method is unavailable on this "
            "platform; running serially (results are identical, just slower). "
            "This warning is emitted once; every degradation counts on "
            "repro_parallel_fallback_total.",
            RuntimeWarning,
            stacklevel=3,
        )


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(task):
    # Runs in the worker; _WORKER_FN was inherited through fork.
    return _WORKER_FN(task)


def parallel_map(fn: Callable, tasks: Sequence, workers: int | None = None) -> list:
    """``[fn(t) for t in tasks]`` fanned over a fork pool, order preserved.

    ``fn`` may be a closure (it is inherited by fork, never pickled); the
    tasks and results must be picklable.  Falls back to the serial list
    comprehension when the resolved worker count is 1, the platform lacks
    ``fork``, or we are already inside a worker.
    """
    tasks = list(tasks)
    n_workers = min(_resolve(workers), max(1, len(tasks)))
    if n_workers > 1 and not _IN_WORKER and not _fork_available():
        _note_fork_unavailable()
        n_workers = 1
    if n_workers <= 1 or _IN_WORKER:
        return [fn(t) for t in tasks]
    global _WORKER_FN
    ctx = multiprocessing.get_context("fork")
    _WORKER_FN = fn
    try:
        with ctx.Pool(n_workers, initializer=_init_worker) as pool:
            chunk = max(1, len(tasks) // (4 * n_workers))
            return pool.map(_invoke, tasks, chunksize=chunk)
    finally:
        _WORKER_FN = None


def grid_map(
    fn: Callable[[object, np.random.Generator], object],
    points: Sequence,
    seeds: Iterable[int],
    workers: int | None = None,
) -> list[list]:
    """Evaluate ``fn(x, rng)`` over the ``points x seeds`` grid.

    Returns ``rows[i][k] = fn(points[i], default_rng(seeds[k]))``.  Each
    task constructs its own generator from its seed, so the grid is
    deterministic and identical under any worker count — the property the
    equivalence tests pin down.
    """
    points = list(points)
    seeds = list(seeds)
    flat = parallel_map(
        lambda task: fn(task[0], np.random.default_rng(task[1])),
        [(x, s) for x in points for s in seeds],
        workers=workers,
    )
    k = len(seeds)
    return [flat[i * k : (i + 1) * k] for i in range(len(points))]
