"""Parameter sweeps with seed replication.

Every figure in the reproduction is a 1-D sweep (skew, #jobs, #sites,
load) of scalar metrics averaged over random seeds.  :func:`sweep1d` owns
that loop so the benchmark modules stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.parallel import grid_map


@dataclass(slots=True)
class SweepResult:
    """Outcome of a 1-D sweep: ``mean[metric][k]`` aligns with ``x_values[k]``."""

    x_label: str
    x_values: list
    mean: dict[str, list[float]] = field(default_factory=dict)
    std: dict[str, list[float]] = field(default_factory=dict)

    def series(self, metrics: Sequence[str] | None = None) -> dict[str, list[float]]:
        keys = metrics if metrics is not None else list(self.mean)
        return {k: self.mean[k] for k in keys}

    def metric_at(self, metric: str, x) -> float:
        return self.mean[metric][self.x_values.index(x)]


def replicate(
    fn: Callable[[np.random.Generator], Mapping[str, float]],
    seeds: Sequence[int],
) -> tuple[dict[str, float], dict[str, float]]:
    """Run ``fn`` once per seed; return per-metric mean and std."""
    rows = [fn(np.random.default_rng(seed)) for seed in seeds]
    keys = list(rows[0])
    mean = {k: float(np.mean([r[k] for r in rows])) for k in keys}
    std = {k: float(np.std([r[k] for r in rows])) for k in keys}
    return mean, std


def sweep1d(
    x_label: str,
    x_values: Sequence,
    fn: Callable[[object, np.random.Generator], Mapping[str, float]],
    seeds: Sequence[int] = (0, 1, 2),
    workers: int | None = None,
) -> SweepResult:
    """Evaluate ``fn(x, rng)`` for every ``x`` and seed; aggregate per metric.

    ``fn`` returns a flat ``{metric: value}`` mapping; metrics must be the
    same for every point.  Non-finite samples are dropped per-metric (a
    starved static completion time should not wipe out the mean).

    ``workers`` fans the ``(x, seed)`` grid over a process pool
    (:mod:`repro.analysis.parallel`); every task owns its seed's generator,
    so the result is identical for any worker count.  ``None`` defers to
    :func:`~repro.analysis.parallel.default_workers` (serial unless the
    caller or ``REPRO_WORKERS`` opted in).
    """
    result = SweepResult(x_label, list(x_values))
    grid = grid_map(fn, x_values, seeds, workers=workers)
    for rows in grid:
        for key in rows[0]:
            samples = np.asarray([r[key] for r in rows], dtype=float)
            finite = samples[np.isfinite(samples)]
            m = float(finite.mean()) if finite.size else np.nan
            s = float(finite.std()) if finite.size else np.nan
            result.mean.setdefault(key, []).append(m)
            result.std.setdefault(key, []).append(s)
    return result
