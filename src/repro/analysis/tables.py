"""ASCII rendering of experiment tables and figure series."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def fmt(value, precision: int = 4) -> str:
    """Compact numeric formatting (NaN/inf-safe) for table cells."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    v = float(value)
    if np.isnan(v):
        return "nan"
    if np.isinf(v):
        return "inf"
    if v == int(v) and abs(v) < 1e9:
        return str(int(v))
    return f"{v:.{precision}g}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, c in enumerate(row):
            widths[k] = max(widths[k], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence],
    title: str | None = None,
    sparklines: bool = False,
) -> str:
    """Render a figure as one row per x-value, one column per series.

    This is the textual equivalent of the paper's line plots: the *shape*
    (who wins, where curves cross) is readable directly.  With
    ``sparklines=True`` a shared-scale sparkline per series is appended,
    which makes crossovers visible at a glance.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for k, x in enumerate(x_values):
        rows.append([x, *(vals[k] for vals in series.values())])
    text = render_table(headers, rows, title=title)
    if sparklines:
        from repro.analysis.sparkline import sparkline_summary

        text += "\n\nshape (shared scale):\n" + sparkline_summary(series)
    return text
