"""Unicode sparklines: make figure *shapes* visible in terminal output.

The benchmark harness prints figures as tables; a sparkline column gives
the reader the curve at a glance (rising, falling, crossover), which is
what reproducing a figure's *shape* is about.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """Render ``values`` as a block-character sparkline.

    Non-finite values render as spaces.  ``lo``/``hi`` pin the scale (e.g.
    to share one scale across several series); by default the finite range
    of the data is used.
    """
    arr = np.asarray(list(values), dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    span = hi - lo
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(BLOCKS[0])
            continue
        idx = int(round((v - lo) / span * (len(BLOCKS) - 1)))
        out.append(BLOCKS[min(max(idx, 0), len(BLOCKS) - 1)])
    return "".join(out)


def sparkline_summary(series: Mapping[str, Sequence[float]], *, shared_scale: bool = True) -> str:
    """One sparkline per series, optionally on a shared scale.

    A shared scale makes *who is above whom* readable; per-series scales
    make each curve's own trend readable.
    """
    if not series:
        return ""
    lo = hi = None
    if shared_scale:
        allv = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
        finite = allv[np.isfinite(allv)]
        if finite.size:
            lo, hi = float(finite.min()), float(finite.max())
    width = max((len(k) for k in series), default=0)
    lines = []
    for name, values in series.items():
        lines.append(f"{name.ljust(width)}  {sparkline(values, lo=lo, hi=hi)}")
    return "\n".join(lines)
