"""Experiment harness: sweeps, seed-replication, ASCII tables.

Used by ``benchmarks/`` (one module per paper figure/table) and by the CLI
(``python -m repro.cli``) to regenerate every experiment series.
"""

from repro.analysis.tables import render_table, render_series, fmt
from repro.analysis.sweep import SweepResult, replicate, sweep1d
from repro.analysis.parallel import default_workers, grid_map, parallel_map, set_default_workers

__all__ = [
    "render_table",
    "render_series",
    "fmt",
    "SweepResult",
    "replicate",
    "sweep1d",
    "default_workers",
    "grid_map",
    "parallel_map",
    "set_default_workers",
]
