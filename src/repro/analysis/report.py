"""One-shot reproduction report: run every experiment, emit a markdown file.

``python -m repro.cli report --out report.md --scale 0.5`` regenerates the
whole evaluation and writes a self-contained document — the programmatic
sibling of EXPERIMENTS.md.  Each experiment section embeds the rendered
series/table plus the wall time; a header records the library version and
configuration so reports are comparable across machines.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis import parallel
from repro.analysis.experiments import EXPERIMENTS, ExperimentOutput
from repro.obs.tracing import span


@dataclass(slots=True)
class ReportSection:
    experiment: str
    seconds: float
    output: ExperimentOutput | None
    error: str | None = None  # full traceback text of the failure, not just repr(exc)


@dataclass(slots=True)
class Report:
    scale: float
    sections: list[ReportSection] = field(default_factory=list)
    total_seconds: float = 0.0

    def to_markdown(self) -> str:
        import repro

        lines = [
            "# AMF reproduction report",
            "",
            f"- library version: `{repro.__version__}`",
            f"- scale: `{self.scale}`",
            f"- total wall time: `{self.total_seconds:.1f}s`",
            f"- experiments: {sum(1 for s in self.sections if s.error is None)} ok, "
            f"{sum(1 for s in self.sections if s.error is not None)} failed",
            "",
        ]
        for sec in self.sections:
            lines.append(f"## {sec.experiment}  ({sec.seconds:.1f}s)")
            lines.append("")
            if sec.error is not None:
                lines.append("**FAILED:**")
                lines.append("")
                lines.append("```")
                lines.append(sec.error.rstrip())
                lines.append("```")
            else:
                lines.append("```")
                lines.append(sec.output.text)
                lines.append("```")
            lines.append("")
        return "\n".join(lines)


def _run_one(eid: str, scale: float) -> tuple[str, float, str | None, str | None]:
    """Run one experiment; returns ``(eid, seconds, text, error)``.

    Only picklable primitives cross the process boundary in parallel mode —
    the rich ``ExperimentOutput.data`` payload stays in the worker.
    """
    t0 = time.perf_counter()
    try:
        out = EXPERIMENTS[eid](scale=scale)
        return eid, time.perf_counter() - t0, out.text, None
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return eid, time.perf_counter() - t0, None, "".join(traceback.format_exception(exc))


def generate_report(
    scale: float = 1.0,
    experiments: Sequence[str] | None = None,
    *,
    keep_going: bool = True,
    workers: int | None = None,
) -> Report:
    """Run the selected experiments (default: all) and collect a report.

    With ``keep_going`` (default) a failing experiment is recorded and the
    rest still run; otherwise the exception propagates.  ``workers > 1``
    fans the experiments over a process pool
    (:mod:`repro.analysis.parallel`); sections keep the requested order and
    identical text, but ``ReportSection.output.data`` is empty (rich
    payloads do not cross the process boundary) and ``keep_going=False``
    raises only after the whole batch finishes.
    """
    ids = list(EXPERIMENTS) if experiments is None else [e.upper() for e in experiments]
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; choices: {list(EXPERIMENTS)}")
    report = Report(scale=scale)
    t_start = time.perf_counter()
    n_workers = parallel.default_workers() if workers is None else max(1, workers)
    if n_workers > 1 and len(ids) > 1:
        rows = parallel.parallel_map(lambda eid: _run_one(eid, scale), ids, workers=n_workers)
        for eid, seconds, text, error in rows:
            if error is not None and not keep_going:
                raise RuntimeError(f"experiment {eid} failed:\n{error}")
            out = None if text is None else ExperimentOutput(eid, text, {})
            report.sections.append(ReportSection(eid, seconds, out, error=error))
    else:
        for eid in ids:
            t0 = time.perf_counter()
            try:
                # Traced only on the serial path: spans in forked workers
                # would land in per-process ring buffers nobody exports.
                with span("report.experiment", id=eid):
                    out = EXPERIMENTS[eid](scale=scale)
                report.sections.append(ReportSection(eid, time.perf_counter() - t0, out))
            except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                if not keep_going:
                    raise
                report.sections.append(
                    ReportSection(eid, time.perf_counter() - t0, None, error="".join(traceback.format_exception(exc)))
                )
    report.total_seconds = time.perf_counter() - t_start
    return report


def write_report(
    path: str | Path,
    scale: float = 1.0,
    experiments: Sequence[str] | None = None,
    *,
    workers: int | None = None,
) -> Report:
    """Generate and write the markdown report; returns the Report object."""
    report = generate_report(scale=scale, experiments=experiments, workers=workers)
    Path(path).write_text(report.to_markdown())
    return report
