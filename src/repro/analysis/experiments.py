"""The reproduction's experiment definitions (F1-F8, T1-T3 of DESIGN.md §4).

Each ``run_*`` function regenerates one figure/table: it returns an
:class:`ExperimentOutput` whose ``text`` is the printable series/table and
whose ``data`` carries the raw numbers (used by tests that assert the
*shape* of each result — who wins, by how much, where the gap grows).

Every function accepts ``scale`` (default 1.0): benchmarks use a reduced
scale so ``pytest benchmarks/`` stays fast, while the CLI runs full size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.sweep import sweep1d
from repro.analysis.tables import render_series, render_table
from repro.core import properties
from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect
from repro.core.completion import optimize_completion_times, proportional_split
from repro.core.policies import get_policy
from repro.metrics.fairness import balance_report
from repro.model.cluster import Cluster
from repro.sim.engine import simulate
from repro.workload.arrivals import ArrivalSpec, generate_arrival_jobs, generate_churn_schedule
from repro.workload.generator import WorkloadSpec, generate_cluster, generate_jobs, sites_for


@dataclass(slots=True)
class ExperimentOutput:
    """Printable report + raw data of one experiment."""

    experiment: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(value * scale)))


DEFAULT_SEEDS = (11, 23, 37)


# ----------------------------------------------------------------------
# F1 / F2 — allocation balance vs workload skew
# ----------------------------------------------------------------------


def _balance_point(spec: WorkloadSpec, rng: np.random.Generator, policies: Sequence[str]) -> dict[str, float]:
    cluster = generate_cluster(spec, rng)
    out: dict[str, float] = {}
    for name in policies:
        rep = balance_report(get_policy(name)(cluster))
        for key, val in rep.row().items():
            out[f"{name}/{key}"] = val
    return out


def run_f1_balance_vs_skew(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    thetas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """F1: Jain index and CoV of comparable levels vs Zipf skew theta."""
    n_jobs = _scaled(100, scale)
    n_sites = _scaled(20, scale, minimum=4)

    def point(theta, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=float(theta))
        return _balance_point(spec, rng, policies)

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    keys = [f"{p}/jain" for p in policies] + [f"{p}/cov" for p in policies]
    text = render_series("theta", sw.x_values, sw.series(keys), title="F1: allocation balance vs workload skew", sparklines=True)
    return ExperimentOutput("F1", text, {"sweep": sw, "n_jobs": n_jobs, "n_sites": n_sites})


def run_f2_minmax_vs_skew(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    thetas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """F2: min and max comparable level vs skew (who gets starved, who hoards)."""
    n_jobs = _scaled(100, scale)
    n_sites = _scaled(20, scale, minimum=4)

    def point(theta, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=float(theta))
        return _balance_point(spec, rng, policies)

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    keys = [f"{p}/min_level" for p in policies] + [f"{p}/max_level" for p in policies] + [
        f"{p}/min_max" for p in policies
    ]
    text = render_series("theta", sw.x_values, sw.series(keys), title="F2: min/max allocation level vs skew", sparklines=True)
    return ExperimentOutput("F2", text, {"sweep": sw})


# ----------------------------------------------------------------------
# F3 / F4 — job completion time (dynamic batch simulation)
# ----------------------------------------------------------------------


def _sim_point(
    spec: WorkloadSpec,
    rng: np.random.Generator,
    policies: Sequence[str],
) -> dict[str, float]:
    jobs = generate_jobs(spec, rng)
    sites = sites_for(spec, jobs)
    out: dict[str, float] = {}
    for name in policies:
        res = simulate(sites, jobs, name)
        for key, val in res.summary().items():
            out[f"{name}/{key}"] = val
    return out


def run_f3_jct_vs_skew(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    thetas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    policies: Sequence[str] = ("psmf", "amf", "amf-ct-quick"),
) -> ExperimentOutput:
    """F3: mean JCT of a simulated batch vs skew."""
    n_jobs = _scaled(60, scale)
    n_sites = _scaled(12, scale, minimum=4)

    def point(theta, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=float(theta))
        return _sim_point(spec, rng, policies)

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    keys = [f"{p}/mean_jct" for p in policies] + [f"{p}/makespan" for p in policies]
    text = render_series("theta", sw.x_values, sw.series(keys), title="F3: batch JCT vs workload skew", sparklines=True)
    return ExperimentOutput("F3", text, {"sweep": sw})


def run_f4_jct_distribution(
    scale: float = 1.0,
    seed: int = 11,
    theta: float = 1.5,
    policies: Sequence[str] = ("psmf", "amf", "amf-ct-quick"),
) -> ExperimentOutput:
    """F4: JCT distribution (deciles) at high skew — the CDF of the paper."""
    n_jobs = _scaled(60, scale)
    n_sites = _scaled(12, scale, minimum=4)
    spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta)
    rng = np.random.default_rng(seed)
    jobs = generate_jobs(spec, rng)
    sites = sites_for(spec, jobs)
    deciles = list(range(10, 101, 10))
    series: dict[str, list[float]] = {}
    results = {}
    for name in policies:
        res = simulate(sites, jobs, name)
        results[name] = res
        jcts = res.jcts()
        series[name] = [float(np.percentile(jcts, q)) if jcts.size else np.nan for q in deciles]
    text = render_series("percentile", deciles, series, title=f"F4: JCT deciles at theta={theta}", sparklines=True)
    return ExperimentOutput("F4", text, {"results": results, "deciles": deciles, "series": series})


# ----------------------------------------------------------------------
# F5 / F6 — sensitivity to #jobs and #sites
# ----------------------------------------------------------------------


def run_f5_vs_njobs(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    n_jobs_values: Sequence[int] = (20, 40, 80, 160, 320),
    theta: float = 1.2,
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """F5: balance metrics vs number of jobs at fixed skew."""
    n_sites = _scaled(20, scale, minimum=4)
    values = [_scaled(v, scale) for v in n_jobs_values]

    def point(n, rng):
        spec = WorkloadSpec(n_jobs=int(n), n_sites=n_sites, theta=theta)
        return _balance_point(spec, rng, policies)

    sw = sweep1d("n_jobs", values, point, seeds=seeds)
    keys = [f"{p}/jain" for p in policies] + [f"{p}/min_max" for p in policies]
    text = render_series("n_jobs", sw.x_values, sw.series(keys), title="F5: balance vs number of jobs", sparklines=True)
    return ExperimentOutput("F5", text, {"sweep": sw})


def run_f6_vs_nsites(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    n_sites_values: Sequence[int] = (4, 8, 16, 32, 64),
    theta: float = 1.2,
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """F6: balance metrics vs number of sites at fixed skew."""
    n_jobs = _scaled(100, scale)
    values = [max(2, int(round(v * max(scale, 0.25)))) for v in n_sites_values]

    def point(m, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=int(m), theta=theta, site_spread=min(4, int(m)))
        return _balance_point(spec, rng, policies)

    sw = sweep1d("n_sites", values, point, seeds=seeds)
    keys = [f"{p}/jain" for p in policies] + [f"{p}/min_max" for p in policies]
    text = render_series("n_sites", sw.x_values, sw.series(keys), title="F6: balance vs number of sites", sparklines=True)
    return ExperimentOutput("F6", text, {"sweep": sw})


# ----------------------------------------------------------------------
# F7 — dynamic open-system load sweep
# ----------------------------------------------------------------------


def run_f7_dynamic_load(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    loads: Sequence[float] = (0.3, 0.5, 0.7, 0.85, 0.95),
    policies: Sequence[str] = ("psmf", "amf", "amf-ct-quick"),
    theta: float = 1.2,
) -> ExperimentOutput:
    """F7: mean JCT and slowdown vs offered load (Poisson arrivals)."""
    n_jobs = _scaled(80, scale)
    n_sites = _scaled(10, scale, minimum=4)

    def point(load, rng):
        spec = ArrivalSpec(
            workload=WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta),
            load=float(load),
        )
        sites, jobs = generate_arrival_jobs(spec, rng)
        out: dict[str, float] = {}
        for name in policies:
            res = simulate(sites, jobs, name)
            out[f"{name}/mean_jct"] = res.mean_jct
            out[f"{name}/mean_slowdown"] = res.mean_slowdown
            out[f"{name}/p95_jct"] = res.jct_percentile(95)
        return out

    sw = sweep1d("load", list(loads), point, seeds=seeds)
    keys = [f"{p}/mean_jct" for p in policies] + [f"{p}/mean_slowdown" for p in policies]
    text = render_series("load", sw.x_values, sw.series(keys), title="F7: dynamic JCT vs offered load", sparklines=True)
    return ExperimentOutput("F7", text, {"sweep": sw})


# ----------------------------------------------------------------------
# F8 — solver scalability + ablation (cutting planes vs bisection)
# ----------------------------------------------------------------------


def run_f8_scalability(
    scale: float = 1.0,
    seed: int = 5,
    sizes: Sequence[tuple[int, int]] = ((50, 10), (100, 20), (200, 20), (500, 50), (1000, 50), (2000, 100)),
) -> ExperimentOutput:
    """F8: AMF solver wall time and max-flow count vs instance size."""
    sizes = [(max(4, int(n * scale)), max(2, int(m * max(scale, 0.2)))) for n, m in sizes]
    rng = np.random.default_rng(seed)
    rows = []
    data = []
    for n, m in sizes:
        spec = WorkloadSpec(n_jobs=n, n_sites=m, theta=1.2, site_spread=min(4, m))
        cluster = generate_cluster(spec, rng)
        d1 = AmfDiagnostics()
        t0 = time.perf_counter()
        amf_levels(cluster, diagnostics=d1)
        dt1 = time.perf_counter() - t0
        d2 = AmfDiagnostics()
        t0 = time.perf_counter()
        amf_levels_bisect(cluster, diagnostics=d2)
        dt2 = time.perf_counter() - t0
        rows.append([n, m, dt1 * 1e3, d1.feasibility_solves, dt2 * 1e3, d2.feasibility_solves])
        data.append(
            {
                "n": n,
                "m": m,
                "cutting_ms": dt1 * 1e3,
                "cutting_solves": d1.feasibility_solves,
                "bisect_ms": dt2 * 1e3,
                "bisect_solves": d2.feasibility_solves,
            }
        )
    text = render_table(
        ["n_jobs", "n_sites", "cutting ms", "cutting flows", "bisect ms", "bisect flows"],
        rows,
        title="F8: AMF solver scalability (cutting planes vs bisection)",
    )
    return ExperimentOutput("F8", text, {"rows": data})


# ----------------------------------------------------------------------
# T1 — property satisfaction matrix
# ----------------------------------------------------------------------


def run_t1_properties(
    scale: float = 1.0,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    policies: Sequence[str] = ("psmf", "amf", "amf-e"),
    sp_attempts: int = 4,
) -> ExperimentOutput:
    """T1: fraction of random instances satisfying each property, per policy.

    The paper's Table: AMF satisfies PE/EF/SP but not SI; enhanced AMF adds
    SI.  PSMF is per-site fair but not aggregate max-min fair.
    """
    from repro.workload.hubspoke import HubSpokeSpec, hub_and_spoke_cluster

    n_jobs = _scaled(12, scale, minimum=4)
    n_sites = _scaled(5, scale, minimum=2)
    counters: dict[str, dict[str, int]] = {p: {"pareto": 0, "max_min": 0, "envy_free": 0, "si": 0, "sp": 0} for p in policies}
    # Half the battery is generic Zipf batches, half is hub-and-spoke (the
    # regime where plain AMF fails sharing incentive — the paper's "not
    # necessarily" claim); all other properties are regime-independent.
    instances = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=1.5, site_spread=min(3, n_sites), demand_scale=0.03)
        instances.append((generate_cluster(spec, rng), rng))
        rng2 = np.random.default_rng(10_000 + seed)
        hub = HubSpokeSpec(n_jobs=max(3, n_jobs // 2), cap_spread=1.0)
        instances.append((hub_and_spoke_cluster(hub, rng2), rng2))
    total = len(instances)
    for cluster, rng in instances:
        for name in policies:
            policy = get_policy(name)
            alloc = policy(cluster)
            rep = properties.check_all(alloc)
            counters[name]["pareto"] += rep.pareto
            counters[name]["max_min"] += rep.max_min
            counters[name]["envy_free"] += rep.envy_free
            counters[name]["si"] += rep.sharing_incentive
            manip = properties.strategy_proofness_probe(cluster, policy, rng, attempts=sp_attempts)
            counters[name]["sp"] += not manip
    rows = [
        [name, *(f"{counters[name][k]}/{total}" for k in ("pareto", "max_min", "envy_free", "si", "sp"))]
        for name in policies
    ]
    text = render_table(
        ["policy", "pareto", "aggregate max-min", "envy-free", "sharing incentive", "strategy-proof (probe)"],
        rows,
        title="T1: property satisfaction over random instances",
    )
    return ExperimentOutput("T1", text, {"counters": counters, "total": total})


# ----------------------------------------------------------------------
# T2 — sharing-incentive violations: AMF vs AMF-E
# ----------------------------------------------------------------------


def run_t2_sharing_incentive(
    scale: float = 1.0,
    seeds: Sequence[int] = tuple(range(10)),
    theta: float = 1.5,
) -> ExperimentOutput:
    """T2: frequency and magnitude of SI violations, AMF vs enhanced AMF.

    Two instance families:

    * **hub-and-spoke** (the violation's structural home, see
      :mod:`repro.workload.hubspoke`): a shared hot hub plus per-job
      demand-capped satellites — jobs with above-average outside options
      end up *below* their equal-partition entitlement under plain AMF;
    * **generic Zipf batches**: shows that the failure is rare in
      unstructured workloads, which is the honest framing of the paper's
      "does not *necessarily* satisfy" claim.

    Enhanced AMF must report zero violations in both families.
    """
    from repro.workload.hubspoke import HubSpokeSpec, hub_and_spoke_cluster

    n_jobs = _scaled(30, scale, minimum=4)
    n_sites = _scaled(8, scale, minimum=2)

    def battery(make_cluster):
        stats = {
            "amf": {"instances": 0, "violated": 0, "jobs": 0, "worst": 0.0},
            "amf-e": {"instances": 0, "violated": 0, "jobs": 0, "worst": 0.0},
        }
        for seed in seeds:
            cluster = make_cluster(np.random.default_rng(seed))
            for name in ("amf", "amf-e"):
                alloc = get_policy(name)(cluster)
                violations = properties.sharing_incentive_violations(alloc)
                s = stats[name]
                s["instances"] += 1
                s["violated"] += bool(violations)
                s["jobs"] += len(violations)
                s["worst"] = max(s["worst"], max((v for _, v in violations), default=0.0))
        return stats

    hub_spec = HubSpokeSpec(n_jobs=_scaled(12, scale, minimum=3), cap_spread=1.0)
    hub_stats = battery(lambda rng: hub_and_spoke_cluster(hub_spec, rng))
    zipf_stats = battery(
        lambda rng: generate_cluster(
            WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta, demand_scale=0.03), rng
        )
    )
    rows = []
    for family, stats in (("hub-and-spoke", hub_stats), ("generic zipf", zipf_stats)):
        for name, s in stats.items():
            rows.append([family, name, f"{s['violated']}/{s['instances']}", s["jobs"], s["worst"]])
    text = render_table(
        ["family", "policy", "instances violated", "violating jobs", "worst shortfall"],
        rows,
        title="T2: sharing-incentive violations, AMF vs enhanced AMF",
    )
    return ExperimentOutput("T2", text, {"hub": hub_stats, "zipf": zipf_stats, "stats": hub_stats})


# ----------------------------------------------------------------------
# T3 — completion-time add-on ablation
# ----------------------------------------------------------------------


def run_t3_ct_ablation(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    theta: float = 1.5,
) -> ExperimentOutput:
    """T3: what each CT-add-on depth buys.

    Two views on identical AMF aggregates:

    * **static split quality** — per-job stretch ``T_i / (W_i / A_i)`` of
      the split each mode produces (one solve per mode; ``inf`` stretches
      from starved edges are reported as a count);
    * **simulated batch JCT** — for the variants cheap enough to re-solve
      at every event (raw ``amf``, ``amf-prop``, ``amf-ct-quick``); the
      full lexicographic mode is a static optimizer, not a per-event
      policy, so it appears in the static view only.
    """
    n_jobs = _scaled(40, scale, minimum=4)
    n_sites = _scaled(10, scale, minimum=3)
    static_modes = ("raw-maxflow", "proportional", "stretch1", "makespan", "stretch")
    sim_variants = ("amf", "amf-prop", "amf-ct-quick")

    static_acc: dict[str, list[float]] = {f"{m}/{k}": [] for m in static_modes for k in ("mean_stretch", "max_stretch", "starved")}
    sim_acc: dict[str, list[float]] = {f"{v}/{k}": [] for v in sim_variants for k in ("mean_jct", "p95_jct", "makespan")}

    for seed in seeds:
        rng = np.random.default_rng(seed)
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        cluster = Cluster(sites, jobs)
        levels = amf_levels(cluster)
        ideal = cluster.workloads.sum(axis=1) / np.maximum(levels, 1e-300)

        def record_static(mode: str, alloc) -> None:
            stretch = alloc.completion_times() / ideal
            finite = stretch[np.isfinite(stretch) & (levels > 1e-12)]
            static_acc[f"{mode}/mean_stretch"].append(float(finite.mean()) if finite.size else np.nan)
            static_acc[f"{mode}/max_stretch"].append(float(finite.max()) if finite.size else np.nan)
            static_acc[f"{mode}/starved"].append(float(np.isinf(stretch).sum()))

        from repro.core.amf import solve_amf

        record_static("raw-maxflow", solve_amf(cluster))
        record_static("proportional", proportional_split(cluster, levels))
        record_static("stretch1", optimize_completion_times(cluster, levels, mode="stretch1"))
        record_static("makespan", optimize_completion_times(cluster, levels, mode="makespan"))
        record_static("stretch", optimize_completion_times(cluster, levels, mode="stretch"))

        for name in sim_variants:
            res = simulate(sites, jobs, name)
            sim_acc[f"{name}/mean_jct"].append(res.mean_jct)
            sim_acc[f"{name}/p95_jct"].append(res.jct_percentile(95))
            sim_acc[f"{name}/makespan"].append(res.makespan)

    def _mean(values: list[float]) -> float:
        arr = np.asarray(values, dtype=float)
        finite = arr[np.isfinite(arr)]
        return float(finite.mean()) if finite.size else np.nan

    static_rows = [
        [m, *(_mean(static_acc[f"{m}/{k}"]) for k in ("mean_stretch", "max_stretch", "starved"))]
        for m in static_modes
    ]
    sim_rows = [
        [v, *(_mean(sim_acc[f"{v}/{k}"]) for k in ("mean_jct", "p95_jct", "makespan"))]
        for v in sim_variants
    ]
    text = render_table(
        ["split mode", "mean stretch", "max stretch", "starved edges"],
        static_rows,
        title=f"T3a: static split quality under fixed AMF aggregates (theta={theta})",
    )
    text += "\n\n" + render_table(
        ["policy", "mean JCT", "p95 JCT", "makespan"],
        sim_rows,
        title="T3b: simulated batch JCT (per-event re-solve)",
    )
    return ExperimentOutput("T3", text, {"static": static_acc, "sim": sim_acc})


# ----------------------------------------------------------------------
# T4 — extension: monotonicity axioms
# ----------------------------------------------------------------------


def run_t4_monotonicity(
    scale: float = 1.0,
    seeds: Sequence[int] = tuple(range(6)),
    policies: Sequence[str] = ("psmf", "amf", "amf-e"),
) -> ExperimentOutput:
    """T4 (extension): population and resource monotonicity per policy.

    Classic axioms the paper's property section sits next to: does a job
    ever *lose* when a competitor departs (population) or when a site
    grows (resource)?  Probed exhaustively over single departures /
    single-site growth on random demand-capped instances.

    Expected: PSMF and AMF are clean; **AMF-E is not monotone** — both a
    departure and a site growth raise everyone's equal-partition floors
    (``c_j / n`` grows), and the higher floors of *other* jobs can squeeze
    a previously-rich job.  Which axiom breaks depends on the instance; an
    inherent price of the sharing-incentive guarantee, surfaced honestly.
    """
    n_jobs = _scaled(6, scale, minimum=3)
    n_sites = _scaled(4, scale, minimum=2)
    rows = []
    data: dict[str, dict[str, int]] = {}
    for name in policies:
        policy = get_policy(name)
        pop = res = 0
        for seed in seeds:
            rng = np.random.default_rng(seed)
            spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=1.3, demand_scale=0.05)
            cluster = generate_cluster(spec, rng)
            pop += len(properties.population_monotonicity_probe(cluster, policy))
            res += len(properties.resource_monotonicity_probe(cluster, policy))
        rows.append([name, pop, res])
        data[name] = {"population_breaches": pop, "resource_breaches": res}
    text = render_table(
        ["policy", "population breaches", "resource breaches"],
        rows,
        title=f"T4: monotonicity probes over {len(seeds)} instances (all departures / site growths)",
    )
    return ExperimentOutput("T4", text, {"data": data})


# ----------------------------------------------------------------------
# X1 — extension: time-averaged dynamic balance
# ----------------------------------------------------------------------


def run_x1_dynamic_balance(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    thetas: Sequence[float] = (0.0, 1.0, 2.0),
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """X1 (extension): *time-averaged* Jain index over a simulated batch.

    F1 scores one static snapshot; this scores the balance the system
    actually sustains while the batch drains, which is the fairness a user
    experiences.  Expected shape: same ordering as F1 (AMF above PSMF,
    gap grows with skew).
    """
    from repro.sim.observers import BalanceObserver

    n_jobs = _scaled(40, scale)
    n_sites = _scaled(8, scale, minimum=3)

    def point(theta, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=float(theta))
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        out: dict[str, float] = {}
        for name in policies:
            obs = BalanceObserver()
            simulate(sites, jobs, name, observer=obs)
            out[f"{name}/time_avg_jain"] = obs.time_avg_jain
            out[f"{name}/time_avg_cov"] = obs.time_avg_cov
        return out

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    keys = [f"{p}/time_avg_jain" for p in policies] + [f"{p}/time_avg_cov" for p in policies]
    text = render_series("theta", sw.x_values, sw.series(keys), title="X1: time-averaged dynamic balance vs skew", sparklines=True)
    return ExperimentOutput("X1", text, {"sweep": sw})


# ----------------------------------------------------------------------
# X2 — extension: per-event scheduling overhead
# ----------------------------------------------------------------------


def run_x2_scheduler_overhead(
    scale: float = 1.0,
    seed: int = 17,
    theta: float = 1.2,
    policies: Sequence[str] = ("psmf", "amf", "amf-e", "amf-ct-quick"),
) -> ExperimentOutput:
    """X2 (extension): wall time per scheduling event in a dynamic run.

    The fairness gains of AMF come at the cost of max-flow solves on every
    arrival/completion; this experiment quantifies that overhead per
    policy on the same simulated batch.
    """
    from repro.sim.scheduler import TimedPolicy

    n_jobs = _scaled(40, scale)
    n_sites = _scaled(10, scale, minimum=3)
    spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta)
    rng = np.random.default_rng(seed)
    jobs = generate_jobs(spec, rng)
    sites = sites_for(spec, jobs)
    rows = []
    data = {}
    for name in policies:
        timed = TimedPolicy(name)
        simulate(sites, jobs, timed)
        s = timed.stats
        rows.append([name, s.solves, s.mean_ms, s.percentile_ms(95), s.max_ms, s.mean_active_jobs])
        data[name] = {
            "solves": s.solves,
            "mean_ms": s.mean_ms,
            "p95_ms": s.percentile_ms(95),
            "max_ms": s.max_ms,
        }
    text = render_table(
        ["policy", "solves", "mean ms", "p95 ms", "max ms", "mean active jobs"],
        rows,
        title="X2: per-event scheduling overhead (dynamic batch)",
    )
    return ExperimentOutput("X2", text, {"stats": data})


# ----------------------------------------------------------------------
# X3 — extension: weighted AMF (priority classes)
# ----------------------------------------------------------------------


def run_x3_weighted_fairness(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    weight_ratios: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    theta: float = 1.2,
) -> ExperimentOutput:
    """X3 (extension): weighted AMF delivers allocations proportional to weights.

    Half the jobs are 'premium' with weight ``r``, half are 'standard' with
    weight 1.  The measured ratio of mean premium aggregate to mean
    standard aggregate should track ``r`` until demand caps flatten it.
    """
    n_jobs = _scaled(40, scale)
    n_sites = _scaled(10, scale, minimum=3)

    def point(ratio, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta, demand_scale=None)
        jobs = generate_jobs(spec, rng)
        premium = {j.name for k, j in enumerate(jobs) if k % 2 == 0}
        reweighted = [
            type(j)(
                name=j.name,
                workload=dict(j.workload),
                demand=dict(j.demand),
                weight=float(ratio) if j.name in premium else 1.0,
            )
            for j in jobs
        ]
        cluster = Cluster(sites_for(spec, jobs), reweighted)
        alloc = get_policy("amf")(cluster)
        prem = [alloc.aggregate_of(n) for n in premium]
        std = [alloc.aggregate_of(j.name) for j in jobs if j.name not in premium]
        measured = float(np.mean(prem) / np.mean(std)) if std else np.nan
        return {"measured_ratio": measured, "target_ratio": float(ratio)}

    sw = sweep1d("weight_ratio", list(weight_ratios), point, seeds=seeds)
    text = render_series(
        "weight_ratio",
        sw.x_values,
        sw.series(["target_ratio", "measured_ratio"]),
        title="X3: weighted AMF — premium/standard aggregate ratio",
    )
    return ExperimentOutput("X3", text, {"sweep": sw})


# ----------------------------------------------------------------------
# X4 — extension: the price of locality
# ----------------------------------------------------------------------


def run_x4_price_of_locality(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    thetas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
) -> ExperimentOutput:
    """X4 (extension): how far each policy's poorest job is from the
    locality-oblivious ideal, vs workload skew.

    The locality-oblivious bound pools all capacity; its minimum level
    upper-bounds what any feasible policy can give the poorest job.  The
    ratio (bound / measured min level) is the *price of locality*: AMF
    should pay far less of it than PSMF, and the gap should widen with
    skew — this quantifies the abstract's headline claim against an
    absolute yardstick rather than just against the baseline.
    """
    from repro.core.bounds import locality_oblivious_levels, price_of_locality

    n_jobs = _scaled(100, scale)
    n_sites = _scaled(20, scale, minimum=4)

    def point(theta, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=float(theta))
        cluster = generate_cluster(spec, rng)
        oblivious_min = float((locality_oblivious_levels(cluster) / cluster.weights).min())
        out: dict[str, float] = {"oblivious/min_level": oblivious_min}
        for name in ("psmf", "amf"):
            alloc = get_policy(name)(cluster)
            out[f"{name}/min_level"] = float(alloc.normalized_aggregates().min())
            out[f"{name}/locality_price"] = price_of_locality(cluster, alloc.aggregates)
        return out

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    keys = [
        "oblivious/min_level",
        "amf/min_level",
        "psmf/min_level",
        "amf/locality_price",
        "psmf/locality_price",
    ]
    text = render_series(
        "theta", sw.x_values, sw.series(keys), title="X4: the price of locality", sparklines=True
    )
    return ExperimentOutput("X4", text, {"sweep": sw})


# ----------------------------------------------------------------------
# X5 — extension: allocation churn (reallocation cost)
# ----------------------------------------------------------------------


def run_x5_allocation_churn(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    theta: float = 1.2,
    policies: Sequence[str] = ("psmf", "amf", "amf-ct-quick"),
) -> ExperimentOutput:
    """X5 (extension): fraction of the cluster reassigned per event.

    Fluid metrics hide reallocation cost; real schedulers pay for every
    ``a_ij`` change (preemptions / resizes).  This experiment measures the
    mean L1 churn per event for each policy on the same batch — the
    operational price of AMF's cross-site compensation.
    """
    from repro.sim.observers import ChurnObserver

    n_jobs = _scaled(40, scale)
    n_sites = _scaled(10, scale, minimum=3)
    acc: dict[str, list[float]] = {name: [] for name in policies}
    for seed in seeds:
        rng = np.random.default_rng(seed)
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        for name in policies:
            obs = ChurnObserver()
            simulate(sites, jobs, name, observer=obs)
            acc[name].append(obs.mean_churn)
    rows = [[name, float(np.mean(acc[name])), float(np.max(acc[name]))] for name in policies]
    text = render_table(
        ["policy", "mean churn / event", "max (over seeds)"],
        rows,
        title=f"X5: allocation churn (fraction of capacity reassigned, theta={theta})",
    )
    return ExperimentOutput("X5", text, {"acc": acc})


# ----------------------------------------------------------------------
# X6 — extension: discrete slot scheduling vs the fluid model
# ----------------------------------------------------------------------


def run_x6_discrete_convergence(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    granularities: Sequence[float] = (0.2, 0.5, 1.0, 2.0, 5.0),
    theta: float = 1.2,
    policies: Sequence[str] = ("psmf", "amf"),
) -> ExperimentOutput:
    """X6 (extension): does the fluid evaluation predict slot-based reality?

    The same batch is run through the fluid simulator and through the
    discrete task-level scheduler at increasing task granularity (more,
    shorter tasks).  Expected shape: the discrete mean JCT converges to
    the fluid one from above, and the policy ordering (AMF <= PSMF) is
    preserved at every granularity.
    """
    from repro.discrete import discretize_jobs, simulate_discrete
    from repro.model.site import Site

    n_jobs = _scaled(24, scale, minimum=4)
    n_sites = _scaled(6, scale, minimum=2)

    def point(granularity, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta, demand_scale=None, mean_work=30.0)
        jobs = generate_jobs(spec, rng)
        sites = [Site(s.name, max(2.0, float(int(s.capacity)))) for s in sites_for(spec, jobs)]
        out: dict[str, float] = {}
        for name in policies:
            fluid = simulate(sites, jobs, name)
            discrete = simulate_discrete(sites, discretize_jobs(jobs, float(granularity)), name)
            out[f"{name}/fluid_jct"] = fluid.mean_jct
            out[f"{name}/discrete_jct"] = discrete.mean_jct
            out[f"{name}/gap_pct"] = 100.0 * (discrete.mean_jct / fluid.mean_jct - 1.0)
        return out

    sw = sweep1d("granularity", list(granularities), point, seeds=seeds)
    keys = [f"{p}/discrete_jct" for p in policies] + [f"{p}/fluid_jct" for p in policies] + [
        f"{p}/gap_pct" for p in policies
    ]
    text = render_series(
        "granularity",
        sw.x_values,
        sw.series(keys),
        title="X6: discrete slot scheduling converges to the fluid model",
        sparklines=True,
    )
    return ExperimentOutput("X6", text, {"sweep": sw})


# ----------------------------------------------------------------------
# X7 — extension: multi-resource fairness (per-site DRF vs AMRF)
# ----------------------------------------------------------------------


def run_x7_multiresource(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    thetas: Sequence[float] = (0.0, 1.0, 2.0),
) -> ExperimentOutput:
    """X7 (extension): the AMF story generalizes to resource vectors.

    Jobs demand (cpu, mem) vectors; sites offer vector capacities.  The
    per-site DRF baseline vs AMRF (max-min on aggregate dominant shares),
    compared on the Jain index of dominant shares.  Expected shape: same
    as F1 — AMRF dominates, gap grows with skew.
    """
    from repro.metrics.fairness import jain_index
    from repro.multiresource import MRCluster, MRJob, MRSite, solve_amrf, solve_persite_drf
    from repro.workload.zipf import zipf_probabilities

    n_jobs = _scaled(20, scale, minimum=4)
    n_sites = _scaled(5, scale, minimum=2)

    def point(theta, rng):
        popularity = zipf_probabilities(n_sites, float(theta))
        sites = [
            MRSite(f"s{j}", {"cpu": float(rng.uniform(8, 16)), "mem": float(rng.uniform(16, 64))})
            for j in range(n_sites)
        ]
        jobs = []
        for i in range(n_jobs):
            spread = min(n_sites, 3)
            chosen = rng.choice(n_sites, size=spread, replace=False, p=popularity)
            split = popularity[chosen] / popularity[chosen].sum()
            total_tasks = float(rng.uniform(20, 60))
            tasks = {f"s{j}": float(total_tasks * frac) for j, frac in zip(chosen, split)}
            demand = {"cpu": float(rng.uniform(0.5, 2.0)), "mem": float(rng.uniform(0.5, 8.0))}
            jobs.append(MRJob(f"j{i}", demand, tasks))
        cluster = MRCluster(sites, jobs)
        drf = cluster.aggregate_dominant_shares(solve_persite_drf(cluster))
        amrf = cluster.aggregate_dominant_shares(solve_amrf(cluster))
        return {
            "psdrf/jain": jain_index(drf),
            "amrf/jain": jain_index(amrf),
            "psdrf/min_share": float(drf.min()),
            "amrf/min_share": float(amrf.min()),
        }

    sw = sweep1d("theta", list(thetas), point, seeds=seeds)
    text = render_series(
        "theta",
        sw.x_values,
        sw.series(["psdrf/jain", "amrf/jain", "psdrf/min_share", "amrf/min_share"]),
        title="X7: multi-resource — per-site DRF vs AMRF (dominant-share balance)",
    )
    return ExperimentOutput("X7", text, {"sweep": sw})


# ----------------------------------------------------------------------
# X8 — extension: fault tolerance under site churn
# ----------------------------------------------------------------------


def run_x8_fault_tolerance(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    mtbf_factors: Sequence[float] = (8.0, 4.0, 2.0, 1.0),
    policies: Sequence[str] = ("psmf", "amf"),
    theta: float = 1.2,
    failure_mode: str = "migrate",
) -> ExperimentOutput:
    """X8 (extension): fairness and completion under site failures.

    Each site fails with Poisson MTBF/MTTR churn; the x axis sweeps the
    MTBF as a multiple of ``T0`` (the batch's ideal drain time: total work
    over total capacity), so smaller factor = harsher churn.  Every policy
    runs behind the :class:`~repro.core.policies.ResilientPolicy` fallback
    chain, with the same failure trace per (seed, factor) point.

    Claim under test (docs/robustness.md): AMF stays closer to the static
    fairness bound than per-site max-min under churn — its cross-site
    compensation re-balances around a lost site, while PSMF strands the
    jobs that were pinned to it.
    """
    from repro.core.policies import ResilientPolicy
    from repro.sim.observers import AvailabilityObserver, BalanceObserver, CompositeObserver
    from repro.workload.failures import FailureSpec, generate_failure_trace

    n_jobs = _scaled(30, scale)
    n_sites = _scaled(8, scale, minimum=3)
    resilience: dict[str, dict] = {
        name: {"solves": 0, "fallbacks": 0, "errors": 0, "served_by": {}} for name in policies
    }

    def point(factor, rng):
        spec = WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=theta)
        jobs = generate_jobs(spec, rng)
        sites = sites_for(spec, jobs)
        total_work = sum(j.total_work for j in jobs)
        total_cap = sum(s.capacity for s in sites)
        t0 = total_work / total_cap
        fspec = FailureSpec(mtbf=float(factor) * t0, mttr=0.25 * float(factor) * t0, horizon=4.0 * t0)
        faults = generate_failure_trace([s.name for s in sites], fspec, rng)
        out: dict[str, float] = {}
        for name in policies:
            resilient = ResilientPolicy(name)
            avail = AvailabilityObserver(policy=resilient)
            balance = BalanceObserver()
            result = simulate(
                sites,
                jobs,
                resilient,
                faults=faults,
                failure_mode=failure_mode,
                observer=CompositeObserver([balance, avail]),
            )
            out[f"{name}/mean_jct"] = result.mean_jct
            out[f"{name}/time_avg_jain"] = balance.time_avg_jain
            out[f"{name}/work_lost"] = result.work_lost
            out[f"{name}/work_reexecuted"] = result.work_reexecuted
            out[f"{name}/fallbacks"] = float(resilient.stats.fallback_activations)
            out[f"{name}/availability"] = avail.availability
            agg = resilience[name]
            agg["solves"] += resilient.stats.solves
            agg["fallbacks"] += resilient.stats.fallback_activations
            agg["errors"] += len(resilient.stats.errors)
            for served, count in resilient.stats.served_by.items():
                agg["served_by"][served] = agg["served_by"].get(served, 0) + count
        return out

    sw = sweep1d("mtbf_factor", list(mtbf_factors), point, seeds=seeds)
    keys = [f"{p}/time_avg_jain" for p in policies] + [f"{p}/mean_jct" for p in policies] + [
        f"{p}/work_reexecuted" for p in policies
    ]
    text = render_series(
        "mtbf_factor",
        sw.x_values,
        sw.series(keys),
        title=f"X8: fault tolerance under site churn ({failure_mode} mode; MTBF in units of T0)",
        sparklines=True,
    )
    lines = ["", "solver fallback chain (aggregated over the sweep):"]
    for name, agg in resilience.items():
        served = ", ".join(f"{k}={v}" for k, v in sorted(agg["served_by"].items())) or "none"
        lines.append(
            f"  {name}: {agg['solves']} solves, {agg['fallbacks']} fallback activations, "
            f"{agg['errors']} errors; served by: {served}"
        )
    text += "\n".join(lines)
    return ExperimentOutput("X8", text, {"sweep": sw, "resilience": resilience})


# ----------------------------------------------------------------------
# X9 — extension: online allocation service under Poisson churn
# ----------------------------------------------------------------------


def run_x9_service(
    scale: float = 1.0,
    seeds: Sequence[int] = DEFAULT_SEEDS[:2],
    load: float = 0.7,
    theta: float = 1.2,
    queries_per_batch: int = 4,
    coalesce_gaps: float = 3.0,
    verify: bool = True,
) -> ExperimentOutput:
    """X9 (extension): warm-started incremental AMF behind the service daemon.

    A closed-loop load generator drives Poisson job churn (arrivals +
    exponential sojourns, :func:`repro.workload.arrivals.generate_churn_schedule`)
    through the full :class:`~repro.service.daemon.AllocationService`
    pipeline on a *virtual* clock: events coalesce into batches
    (``max_delay`` = ``coalesce_gaps`` mean event gaps), each batch triggers
    one warm re-solve, and ``queries_per_batch`` read queries model the
    serving traffic that hits the allocation cache.

    Every warm solution is checked against a cold oracle on the identical
    snapshot: the *same* resilient pipeline (validation, diagnostics,
    allocation plumbing) built around an :class:`IncrementalAmfSolver` with
    ``persistent=False``, so the timed A/B differs **only** in whether the
    cutting-plane basis survives between solves.  The experiment thus
    simultaneously *proves* incremental == cold and *measures* what the
    warm start, the batching and the cache each buy.
    """
    from repro._util import ABS_TOL
    from repro.core.policies import ResilientPolicy
    from repro.service import AllocationService, ClusterState, IncrementalAmfSolver, events_from_schedule
    from repro.sim.scheduler import SolveStats

    n_arrivals = _scaled(120, scale, minimum=10)
    n_sites = _scaled(8, scale, minimum=3)
    population = _scaled(14, scale, minimum=4)

    def run_one(seed: int) -> dict[str, float]:
        rng = np.random.default_rng(seed)
        spec = ArrivalSpec(
            workload=WorkloadSpec(n_jobs=n_arrivals, n_sites=n_sites, theta=theta), load=load
        )
        sites, schedule = generate_churn_schedule(rng=rng, spec=spec, target_population=population)
        events = events_from_schedule(schedule)
        mean_gap = (schedule[-1][0] - schedule[0][0]) / max(1, len(schedule) - 1)
        now = [0.0]
        service = AllocationService(
            ClusterState(sites),
            max_delay=coalesce_gaps * mean_gap,
            clock=lambda: now[0],
        )
        cold_solver = IncrementalAmfSolver(persistent=False)
        cold_policy = ResilientPolicy(cold_solver, ("amf", "psmf"))
        cold_stats = SolveStats()
        max_dev = 0.0
        jobs_solved = 0

        def drain() -> None:
            nonlocal max_dev, jobs_solved
            served = service.allocation(fresh=False)
            if not served.cached:
                cluster = served.allocation.cluster
                jobs_solved += cluster.n_jobs
                if verify:
                    t0 = time.perf_counter()
                    oracle = cold_policy(cluster)
                    cold_stats.record(time.perf_counter() - t0, cluster.n_jobs)
                    dev = float(np.abs(served.allocation.aggregates - oracle.aggregates).max(initial=0.0))
                    max_dev = max(max_dev, dev)
            for _ in range(queries_per_batch - 1):
                service.allocation(fresh=False)

        for event in events:
            now[0] = event.time
            service.submit(event)
            if service.queue.due():
                drain()
        now[0] = float("inf")
        drain()

        inc = service.incremental.stats
        warm = service.solve_stats
        qstats = service.queue.stats
        out = {
            "events": float(service.events_accepted),
            "batches": float(qstats.batches),
            "mean_batch": qstats.mean_batch,
            "solves": float(warm.solves),
            "solves_per_sec": warm.solves / warm.total_seconds if warm.total_seconds else np.nan,
            "warm_mean_ms": warm.mean_ms,
            "warm_p50_ms": warm.percentile_ms(50),
            "warm_p99_ms": warm.percentile_ms(99),
            "cache_hit_rate": service.cache.stats.hit_rate,
            "warm_feas_per_solve": inc.feasibility_solves / max(1, inc.solves),
            "warm_cuts_per_solve": inc.cuts_generated / max(1, inc.solves),
            "fallbacks": float(service.resilience.fallback_activations),
            "mean_active_jobs": jobs_solved / max(1, warm.solves),
        }
        if verify:
            out.update(
                {
                    "cold_mean_ms": cold_stats.mean_ms,
                    "cold_p50_ms": cold_stats.percentile_ms(50),
                    "cold_p99_ms": cold_stats.percentile_ms(99),
                    "cold_feas_per_solve": cold_solver.stats.feasibility_solves / max(1, cold_stats.solves),
                    "speedup": cold_stats.mean_ms / warm.mean_ms if warm.solves else np.nan,
                    "max_abs_deviation": max_dev,
                    "tolerance": ABS_TOL * max(1.0, float(population)) * 10,
                }
            )
        return out

    runs = [run_one(seed) for seed in seeds]
    agg = {k: float(np.mean([r[k] for r in runs])) for k in runs[0]}
    if verify:
        agg["max_abs_deviation"] = float(max(r["max_abs_deviation"] for r in runs))
    rows = [[k, f"{v:.4g}"] for k, v in agg.items()]
    text = render_table(
        ["metric", "mean over seeds"],
        rows,
        title=(
            f"X9: online service under Poisson churn "
            f"(~{population} concurrent jobs, {n_sites} sites, load={load}, "
            f"{queries_per_batch} queries/batch)"
        ),
    )
    return ExperimentOutput("X9", text, {"aggregate": agg, "runs": runs})


# ----------------------------------------------------------------------
# Registry (used by the CLI)
# ----------------------------------------------------------------------

EXPERIMENTS: Mapping[str, object] = {
    "F1": run_f1_balance_vs_skew,
    "F2": run_f2_minmax_vs_skew,
    "F3": run_f3_jct_vs_skew,
    "F4": run_f4_jct_distribution,
    "F5": run_f5_vs_njobs,
    "F6": run_f6_vs_nsites,
    "F7": run_f7_dynamic_load,
    "F8": run_f8_scalability,
    "T1": run_t1_properties,
    "T2": run_t2_sharing_incentive,
    "T3": run_t3_ct_ablation,
    "T4": run_t4_monotonicity,
    "X1": run_x1_dynamic_balance,
    "X2": run_x2_scheduler_overhead,
    "X3": run_x3_weighted_fairness,
    "X4": run_x4_price_of_locality,
    "X5": run_x5_allocation_churn,
    "X6": run_x6_discrete_convergence,
    "X7": run_x7_multiresource,
    "X8": run_x8_fault_tolerance,
    "X9": run_x9_service,
}
