"""Event coalescing: fold bursts of deltas into one re-solve.

Under churn, events arrive far faster than a solver should be invoked — a
burst of ten arrivals needs *one* allocation that reflects all ten, not ten
successive solves each rendered stale by the next event.
:class:`CoalescingQueue` implements the standard batching compromise:

* an event waits at most ``max_delay`` seconds before its batch is due
  (the service's staleness budget), and
* a batch never exceeds ``max_batch`` events (bounding how much state can
  shift between consecutive allocations).

The queue takes an injectable ``clock`` so tests and the closed-loop
benchmark can drive it with virtual time; the HTTP daemon runs it against
``time.monotonic``.  Thread safety is the *caller's* job (the daemon holds
one lock around state + queue + cache), keeping this class trivially
testable.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Collection, Mapping

from repro._util import require
from repro.model.resources import ResourceError, normalize_resources
from repro.service.state import CapacityChanged, ClusterEvent, JobArrived, JobDeparted

__all__ = ["BatchStats", "CoalescingQueue", "coalesce_batch"]


@dataclass(slots=True)
class BatchStats:
    """Batch-size accounting across the queue's lifetime."""

    events: int = 0
    batches: int = 0
    max_batch: int = 0
    folded: int = 0  # events cancelled by net-effect folding (coalesce_batch)
    sizes: list[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        return self.events / self.batches if self.batches else 0.0

    def record(self, size: int) -> None:
        self.events += size
        self.batches += 1
        self.max_batch = max(self.max_batch, size)
        self.sizes.append(size)


def coalesce_batch(
    batch: list[ClusterEvent],
    *,
    has_job: Callable[[str], bool],
    known_sites: Collection[str],
) -> tuple[list[ClusterEvent], int, list[str]]:
    """Fold a drained batch to its *net effect* on the state.

    Replays the batch against a simulated presence map and emits the
    minimal event list producing the same final state: an
    arrive-then-depart pair vanishes, repeated capacity changes keep only
    the last per site, a depart-then-arrive cycle of a present job becomes
    one replacement pair.  Rejections that sequential application would
    log (duplicate arrival, unknown departure, bad capacity) are returned
    with the exact :class:`~repro.service.state.StateError` phrasing, so
    the daemon's rejection log reads identically either way.

    Folding is what keeps the sharded solver's delta→shard routing sharp:
    the events that survive touch exactly the sites the batch *net*
    touched, so untouched components keep their fingerprints — and their
    cached shard matrices.

    Returns ``(events, folded, rejections)`` where ``folded`` counts the
    input events that no longer appear in the output.
    """
    # Per-job simulation: initial presence from the live state, then replay.
    initial: dict[str, bool] = {}
    present: dict[str, bool] = {}
    final_job: dict[str, tuple[int, JobArrived]] = {}  # last accepted arrival per name
    cycled: set[str] = set()  # present jobs that departed at some point
    caps: dict[str, CapacityChanged] = {}  # last valid capacity per site
    cap_order: list[str] = []
    rejections: list[str] = []
    known = set(known_sites)

    def presence(name: str) -> bool:
        if name not in initial:
            initial[name] = present[name] = has_job(name)
        return present[name]

    for idx, event in enumerate(batch):
        if isinstance(event, JobArrived):
            name = event.job.name
            if presence(name):
                rejections.append(f"job {name!r} already present")
                continue
            unknown = set(event.job.workload) - known
            if unknown:
                rejections.append(f"job {name!r} references unknown sites {sorted(unknown)}")
                continue
            present[name] = True
            final_job[name] = (idx, event)
        elif isinstance(event, JobDeparted):
            if presence(event.name):
                present[event.name] = False
                if initial[event.name]:
                    cycled.add(event.name)
            else:
                rejections.append(f"unknown job {event.name!r}")
        elif isinstance(event, CapacityChanged):
            if event.site not in known:
                rejections.append(f"unknown site {event.site!r}")
                continue
            if isinstance(event.capacity, Mapping):
                # Vector capacity: shape checks only — whether the resource
                # set matches the site's is the state's call (it needs the
                # Site object, which folding deliberately does not see).
                try:
                    normalize_resources(event.capacity, f"site {event.site!r} capacity")
                except ResourceError as exc:
                    rejections.append(str(exc))
                    continue
            elif not (math.isfinite(event.capacity) and event.capacity > 0.0):
                rejections.append(
                    f"site {event.site!r}: capacity must be positive and finite, got {event.capacity}"
                )
                continue
            if event.site not in caps:
                cap_order.append(event.site)
            caps[event.site] = event
        else:
            rejections.append(f"unknown event type {type(event).__name__!r}")

    # Emission order must reproduce sequential application's final job
    # order: a (re-)inserted job lands at the position of its last accepted
    # arrival, so departures go first and arrivals follow in arrival order.
    events: list[ClusterEvent] = []
    arrivals: list[tuple[int, JobArrived]] = []
    for name in initial:
        was, now = initial[name], present[name]
        if was and not now:
            events.append(JobDeparted(name))
        elif not was and now:
            arrivals.append(final_job[name])
        elif was and now and name in cycled:
            # departed and re-arrived within the batch: replace, moving the
            # job to its re-arrival position like sequential replay would
            events.append(JobDeparted(name))
            arrivals.append(final_job[name])
    events.extend(ev for _, ev in sorted(arrivals))
    for site in cap_order:
        events.append(caps[site])
    return events, len(batch) - len(events), rejections


class CoalescingQueue:
    """Accumulate :class:`ClusterEvent` deltas until a batch is due."""

    def __init__(
        self,
        max_delay: float = 0.05,
        max_batch: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ):
        require(max_delay >= 0.0, "max_delay must be non-negative")
        require(max_batch >= 1, "max_batch must be at least 1")
        self.max_delay = max_delay
        self.max_batch = max_batch
        self._clock = clock
        self._pending: list[ClusterEvent] = []
        self._oldest: float | None = None  # enqueue time of the oldest pending event
        self.stats = BatchStats()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, event: ClusterEvent) -> None:
        if not self._pending:
            self._oldest = self._clock()
        self._pending.append(event)

    def due(self) -> bool:
        """Whether the pending batch should be flushed *now*."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        assert self._oldest is not None
        return self._clock() - self._oldest >= self.max_delay

    def seconds_until_due(self) -> float | None:
        """Sleep budget for a polling daemon (``None`` = queue empty)."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        assert self._oldest is not None
        return max(0.0, self.max_delay - (self._clock() - self._oldest))

    def peek(self) -> tuple[ClusterEvent, ...]:
        """The pending batch without draining it (read-only snapshot)."""
        return tuple(self._pending)

    def drain(self) -> list[ClusterEvent]:
        """Take the whole pending batch (records its size; may be empty)."""
        batch, self._pending = self._pending, []
        self._oldest = None
        if batch:
            self.stats.record(len(batch))
        return batch
