"""Event coalescing: fold bursts of deltas into one re-solve.

Under churn, events arrive far faster than a solver should be invoked — a
burst of ten arrivals needs *one* allocation that reflects all ten, not ten
successive solves each rendered stale by the next event.
:class:`CoalescingQueue` implements the standard batching compromise:

* an event waits at most ``max_delay`` seconds before its batch is due
  (the service's staleness budget), and
* a batch never exceeds ``max_batch`` events (bounding how much state can
  shift between consecutive allocations).

The queue takes an injectable ``clock`` so tests and the closed-loop
benchmark can drive it with virtual time; the HTTP daemon runs it against
``time.monotonic``.  Thread safety is the *caller's* job (the daemon holds
one lock around state + queue + cache), keeping this class trivially
testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro._util import require
from repro.service.state import ClusterEvent

__all__ = ["BatchStats", "CoalescingQueue"]


@dataclass(slots=True)
class BatchStats:
    """Batch-size accounting across the queue's lifetime."""

    events: int = 0
    batches: int = 0
    max_batch: int = 0
    sizes: list[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        return self.events / self.batches if self.batches else 0.0

    def record(self, size: int) -> None:
        self.events += size
        self.batches += 1
        self.max_batch = max(self.max_batch, size)
        self.sizes.append(size)


class CoalescingQueue:
    """Accumulate :class:`ClusterEvent` deltas until a batch is due."""

    def __init__(
        self,
        max_delay: float = 0.05,
        max_batch: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ):
        require(max_delay >= 0.0, "max_delay must be non-negative")
        require(max_batch >= 1, "max_batch must be at least 1")
        self.max_delay = max_delay
        self.max_batch = max_batch
        self._clock = clock
        self._pending: list[ClusterEvent] = []
        self._oldest: float | None = None  # enqueue time of the oldest pending event
        self.stats = BatchStats()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, event: ClusterEvent) -> None:
        if not self._pending:
            self._oldest = self._clock()
        self._pending.append(event)

    def due(self) -> bool:
        """Whether the pending batch should be flushed *now*."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        assert self._oldest is not None
        return self._clock() - self._oldest >= self.max_delay

    def seconds_until_due(self) -> float | None:
        """Sleep budget for a polling daemon (``None`` = queue empty)."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        assert self._oldest is not None
        return max(0.0, self.max_delay - (self._clock() - self._oldest))

    def peek(self) -> tuple[ClusterEvent, ...]:
        """The pending batch without draining it (read-only snapshot)."""
        return tuple(self._pending)

    def drain(self) -> list[ClusterEvent]:
        """Take the whole pending batch (records its size; may be empty)."""
        batch, self._pending = self._pending, []
        self._oldest = None
        if batch:
            self.stats.record(len(batch))
        return batch
