"""The allocation daemon: state + batching + cache + resilient warm solver.

:class:`AllocationService` is the synchronous core of the online service —
everything the HTTP front-end (:mod:`repro.service.http`) does is a thin
JSON wrapper over these methods, and the closed-loop benchmark drives the
same object directly with a virtual clock.  One re-solve pipeline:

1. deltas land in a :class:`~repro.service.batching.CoalescingQueue`;
2. when the batch is due (or a caller demands freshness) it is applied to
   the :class:`~repro.service.state.ClusterState` in one step;
3. the resulting snapshot is looked up in the fingerprint-keyed
   :class:`~repro.service.cache.AllocationCache`;
4. on a miss, the :class:`~repro.core.policies.ResilientPolicy` chain
   ``incremental AMF -> cold AMF -> psmf -> proportional`` solves it, the
   warm solver reusing the previous solution's cut pool.

All public methods are thread-safe (one reentrant lock around the whole
pipeline): correctness first — the solver itself is the bottleneck, not
the lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro._util import require
from repro.core.allocation import Allocation
from repro.core.policies import PolicyFn, ResilienceStats, ResilientPolicy
from repro.obs import instruments
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER, span
from repro.service.batching import CoalescingQueue, coalesce_batch
from repro.service.cache import AllocationCache
from repro.service.journal import WriteAheadJournal
from repro.service.solver import IncrementalAmfSolver
from repro.service.state import ClusterEvent, ClusterState, JobArrived
from repro.sim.scheduler import SolveStats

__all__ = ["ServedAllocation", "ServiceClosed", "AllocationService"]


class ServiceClosed(RuntimeError):
    """The service is shutting down and accepts no new work (HTTP: 503)."""


class ServedAllocation:
    """One answer from the service: the allocation plus how it was produced."""

    __slots__ = ("allocation", "cached", "seconds", "version", "fingerprint")

    def __init__(self, allocation: Allocation, *, cached: bool, seconds: float, version: int, fingerprint: str):
        self.allocation = allocation
        self.cached = cached
        self.seconds = seconds  # solve wall time (0.0 on a cache hit)
        self.version = version
        self.fingerprint = fingerprint


class AllocationService:
    """Event-driven AMF allocation daemon (see module docstring).

    Parameters
    ----------
    state:
        The mutable cluster store (must contain the sites; jobs optional).
    max_delay / max_batch:
        Coalescing knobs — how long an event may wait, and how many may
        fold into one re-solve.
    cache_size:
        LRU entries in the allocation cache.
    max_cuts:
        Persistent cutting-plane pool bound for the warm solver.
    fallbacks:
        The chain behind the incremental solver (default: cold AMF, then
        per-site max-min; proportional is always the implicit last rung).
    sharded:
        Solve connected components of the job-site graph independently with
        per-shard warm bases and a per-shard matrix cache (see
        :class:`~repro.service.solver.IncrementalAmfSolver`).  On by
        default: a delta then re-solves only the component it touches.
    workers:
        Fork-pool fan-out for shard solves (``None`` = serial).  The
        allocation is identical under any worker count.
    backend:
        Where shard solves run: ``"local"`` (default, in-process) or
        ``"dist"`` — proxy each shard solve to the solver-worker pool
        given as ``pool``.  The public API and every allocation are
        identical either way; if the entire pool dies the resilient chain
        serves the solve locally (``amf`` cold and below).
    pool:
        A *started* :class:`repro.dist.WorkerPool` (required iff
        ``backend="dist"``).  The service takes ownership: :meth:`close`
        stops its heartbeats and connections.
    journal:
        Optional :class:`~repro.service.journal.WriteAheadJournal`.  When
        given, every accepted delta is journaled *before* it is queued
        (write-ahead ordering: an acknowledged event is always on disk),
        the journal is group-commit-synced after each flush, and
        checkpoints are taken whenever the flushed state makes the queue
        empty — see :func:`repro.service.journal.open_journal` for the
        recovery boot path.  The service takes ownership: :meth:`close`
        checkpoints and closes it.
    clock:
        Injectable monotone clock (virtual time in tests/benchmarks).
    observability:
        Enable the process-global metrics registry and tracer
        (:mod:`repro.obs`) for this daemon's lifetime.  On by default — the
        instrumentation is cheap enough to leave on (see
        ``benchmarks/bench_obs_overhead.py``); pass ``False`` (CLI:
        ``serve --no-obs``) to keep both switched off.
    """

    def __init__(
        self,
        state: ClusterState,
        *,
        max_delay: float = 0.05,
        max_batch: int = 256,
        cache_size: int = 128,
        max_cuts: int = 64,
        fallbacks: Sequence[str | PolicyFn] = ("amf", "psmf"),
        sharded: bool = True,
        workers: int | None = None,
        oracle: str = "parametric",
        backend: str = "local",
        pool=None,
        journal: WriteAheadJournal | None = None,
        clock: Callable[[], float] = time.monotonic,
        observability: bool = True,
    ):
        require(state.n_sites > 0, "service needs at least one site")
        require(
            oracle in ("parametric", "legacy", "ggt"),
            f"unknown oracle {oracle!r} (parametric, legacy or ggt)",
        )
        require(backend in ("local", "dist"), f"unknown backend {backend!r} (local or dist)")
        require(
            (backend == "dist") == (pool is not None),
            "backend='dist' requires a pool (and a pool requires backend='dist')",
        )
        if observability:
            REGISTRY.enable()
            TRACER.enable()
        self.state = state
        self.backend = backend
        self.pool = pool
        self.queue = CoalescingQueue(max_delay=max_delay, max_batch=max_batch, clock=clock)
        self.cache = AllocationCache(max_entries=cache_size)
        self.incremental = IncrementalAmfSolver(
            max_cuts=max_cuts,
            oracle=oracle,
            sharded=sharded or backend == "dist",
            workers=workers,
            shard_backend=pool,
        )
        self._last_touched_sites: frozenset[str] | None = frozenset()
        self.resilience = ResilienceStats()
        self.policy = ResilientPolicy(self.incremental, fallbacks, stats=self.resilience)
        self.solve_stats = SolveStats()
        self.rejections: list[str] = []  # bounded log of deltas the state refused
        self.max_rejections = 200
        self.events_accepted = 0
        # monotonic, unlike len(self.rejections) which saturates at
        # max_rejections — stats() reports this one (the saturation was a
        # real bug: long-running daemons under-reported rejections)
        self.events_rejected = 0
        self.rejections_dropped = 0
        self.journal = journal
        self._lock = threading.RLock()
        self._clock = clock
        self._started = clock()
        self._closed = False

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service is shutting down")

    def submit(self, event: ClusterEvent) -> int:
        """Queue one delta; returns the number of pending events."""
        return self.submit_all((event,))

    def submit_all(self, events: Sequence[ClusterEvent]) -> int:
        """Queue a delta sequence; returns the number of pending events.

        Write-ahead ordering: the whole sequence is journaled before the
        first push, so an *acknowledged* event is always on disk.  If a
        push raises mid-sequence (classic WAL semantics: the caller must
        treat an errored request's outcome as unknown), the accept count
        and depth gauge still reflect exactly what was enqueued — a
        partially-pushed sequence used to leave ``events_accepted`` short
        and the gauge stale.
        """
        with self._lock:
            self._check_open()
            # Resource-shape violations are rejected synchronously (edges
            # answer 400 with resource codes) and never reach the journal —
            # their verdict cannot change by flush time, so refusing here
            # loses nothing and keeps the WAL free of doomed events.
            for event in events:
                self.state.validate_event(event)
            if self.journal is not None:
                self.journal.append(events)
            accepted = 0
            try:
                for event in events:
                    self.queue.push(event)
                    accepted += 1
            finally:
                self.events_accepted += accepted
                depth = len(self.queue)
                if REGISTRY.enabled:
                    instruments.QUEUE_DEPTH.set(depth)
            return depth

    def flush(self, *, force: bool = False) -> int:
        """Apply the pending batch if due (or ``force``); returns events applied."""
        with self._lock:
            if not (force or self.queue.due()):
                return 0
            batch = self.queue.drain()
            if not batch:
                return 0
            t0 = time.perf_counter()
            version_before = self.state.version
            # Net-effect folding: only the surviving deltas hit the state,
            # so untouched shards keep their fingerprints (and their cached
            # matrices); fold-time rejections replicate what sequential
            # application would have logged.
            events, folded, fold_rejected = coalesce_batch(
                batch, has_job=self.state.has_job, known_sites=self.state.site_names
            )
            self.queue.stats.folded += folded
            applied, rejected = self.state.apply_all(events)
            self._last_touched_sites = self.state.touched_sites_since(version_before)
            instruments.record_queue_flush(len(batch), time.perf_counter() - t0)
            if REGISTRY.enabled:
                instruments.QUEUE_DEPTH.set(len(self.queue))
            for message in (*fold_rejected, *rejected):
                self.events_rejected += 1
                if len(self.rejections) < self.max_rejections:
                    self.rejections.append(message)
                else:
                    self.rejections_dropped += 1
            if self.journal is not None:
                # The queue is empty and every journaled event <= seq is
                # folded into the state — the only moment a checkpoint is
                # sound.  sync() first: group commit must not outlive the
                # batch that rode on it.
                self.journal.sync()
                self.journal.maybe_checkpoint(self.state)
            return applied

    def pending(self) -> int:
        with self._lock:
            return len(self.queue)

    def has_job(self, name: str) -> bool:
        """Whether ``name`` is in the state *or* queued to arrive.

        The HTTP front-end uses this to answer ``DELETE /jobs/<name>`` with
        a synchronous 404 for unknown jobs — a plain ``state.has_job`` check
        would race the coalescing queue (a just-POSTed job is deletable
        before its batch flushes).
        """
        with self._lock:
            if self.state.has_job(name):
                return True
            return any(
                isinstance(ev, JobArrived) and ev.job.name == name for ev in self.queue.peek()
            )

    def pending_job_names(self) -> list[str]:
        """Names of jobs queued to arrive but not yet applied, in arrival
        order (``GET /v1/jobs?status=pending`` reads this)."""
        with self._lock:
            names: list[str] = []
            for ev in self.queue.peek():
                if isinstance(ev, JobArrived) and ev.job.name not in names:
                    names.append(ev.job.name)
            return names

    def seconds_until_due(self) -> float | None:
        with self._lock:
            return self.queue.seconds_until_due()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def allocation(self, *, fresh: bool = True) -> ServedAllocation:
        """Current allocation.

        ``fresh=True`` (the ``/allocate`` semantics) forces any pending
        deltas to apply first; ``fresh=False`` (passive reads) serves the
        batch-delayed state, flushing only if the batch is already due.
        """
        with self._lock:
            self._check_open()
            self.flush(force=fresh)
            cluster = self.state.snapshot()
            fp = cluster.fingerprint()
            version = self.state.version
            if cluster.n_jobs == 0:
                empty = Allocation(cluster, np.zeros((0, cluster.n_sites)), policy="empty")
                return ServedAllocation(empty, cached=True, seconds=0.0, version=version, fingerprint=fp)
            hit = self.cache.get(cluster)
            if hit is not None:
                return ServedAllocation(hit, cached=True, seconds=0.0, version=version, fingerprint=fp)
            t0 = time.perf_counter()
            with span("service.allocate", jobs=cluster.n_jobs, version=version):
                alloc = self.policy(cluster)
            dt = time.perf_counter() - t0
            self.solve_stats.record(dt, cluster.n_jobs)
            if REGISTRY.enabled:
                instruments.SERVICE_SOLVE_SECONDS.observe(dt)
            self.cache.put(cluster, alloc)
            return ServedAllocation(alloc, cached=False, seconds=dt, version=version, fingerprint=fp)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful shutdown: drain the queue, then refuse new work.

        The pending batch is applied to the state first — so the
        touched-sites journal records every accepted delta and a restart
        from the same state store resumes exactly where the daemon
        stopped — then :class:`ServiceClosed` guards all intake/serve
        paths (HTTP answers 503), and a distributed backend's pool is
        stopped (heartbeats end, worker connections close).  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self.flush(force=True)
            if self.journal is not None and not self.journal.closed:
                self.journal.checkpoint(self.state)
                self.journal.close()
            self._closed = True
        if self.pool is not None:
            self.pool.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready counters for ``/stats`` and the benchmark report."""
        with self._lock:
            s = self.solve_stats
            inc = self.incremental.stats
            return {
                "uptime_seconds": self._clock() - self._started,
                "state": {
                    "version": self.state.version,
                    "jobs": self.state.n_jobs,
                    "sites": self.state.n_sites,
                    "pending_events": len(self.queue),
                    "events_accepted": self.events_accepted,
                    "events_rejected": self.events_rejected,
                    "rejections_logged": len(self.rejections),
                    "rejections_dropped": self.rejections_dropped,
                },
                "solver": {
                    "solves": s.solves,
                    "mean_ms": None if not s.solves else s.mean_ms,
                    "p50_ms": None if not s.samples else s.percentile_ms(50),
                    "p99_ms": None if not s.samples else s.percentile_ms(99),
                    "max_ms": s.max_ms,
                },
                "incremental": {
                    "solves": inc.solves,
                    "failures": inc.failures,
                    "rounds": inc.rounds,
                    "feasibility_solves": inc.feasibility_solves,
                    "cuts_generated": inc.cuts_generated,
                    "warm_cuts_seeded": inc.warm_cuts_seeded,
                    "basis_size": len(self.incremental.basis),
                    # parametric-oracle reuse breakdown (docs/performance.md)
                    "probes_reused": inc.probes_reused,
                    "probes_early_accept": inc.probes_early_accept,
                    "probes_cut_reject": inc.probes_cut_reject,
                    "probes_warm": inc.probes_warm,
                    "probes_cold": inc.probes_cold,
                    "probe_rollbacks": inc.probe_rollbacks,
                    # GGT sweep breakdown (all zero unless oracle="ggt")
                    "oracle": self.incremental.oracle,
                    "ggt_sweeps": inc.ggt_sweeps,
                    "ggt_sweep_flows": inc.ggt_sweep_flows,
                    "ggt_breakpoints": inc.ggt_breakpoints,
                    "ggt_flows_avoided": inc.ggt_flows_avoided,
                    # AMRF engine (all zero unless vector clusters were solved)
                    "amrf_rounds": inc.amrf_rounds,
                    "amrf_lps": inc.amrf_lps,
                    "amrf_probes": inc.amrf_probes,
                    "amrf_probes_skipped": inc.amrf_probes_skipped,
                    "amrf_basis_rows_reused": inc.amrf_basis_rows_reused,
                    "amrf_table_hits": inc.amrf_table_hits,
                },
                "cache": {
                    "entries": len(self.cache),
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "hit_rate": self.cache.stats.hit_rate,
                    "evictions": self.cache.stats.evictions,
                },
                "batching": {
                    "batches": self.queue.stats.batches,
                    "coalesced_events": self.queue.stats.events,
                    "folded_events": self.queue.stats.folded,
                    "mean_batch": self.queue.stats.mean_batch,
                    "max_batch": self.queue.stats.max_batch,
                    "max_delay": self.queue.max_delay,
                },
                "sharding": {
                    "enabled": self.incremental.sharded,
                    "workers": self.incremental.workers,
                    "last_shards": inc.last_shards,
                    "shard_solves": inc.shard_solves,
                    "shard_cache_hits": inc.shard_cache_hits,
                    "shard_cache_misses": inc.shard_cache_misses,
                    "shard_cache_entries": self.incremental.shard_cache_entries,
                    "shard_bases": len(self.incremental.bases),
                    "last_touched_sites": (
                        None
                        if self._last_touched_sites is None
                        else sorted(self._last_touched_sites)
                    ),
                },
                "resilience": {
                    "solves": self.resilience.solves,
                    "fallback_activations": self.resilience.fallback_activations,
                    "served_by": dict(self.resilience.served_by),
                    "errors": list(self.resilience.errors[-5:]),
                },
                "dist": (
                    {"backend": "local"}
                    if self.pool is None
                    else {"backend": "dist", **self.pool.stats_dict()}
                ),
                "journal": None if self.journal is None else self.journal.stats_dict(),
            }
