"""Allocation cache keyed by the canonical cluster fingerprint.

Between deltas the service's cluster is *identical* — same fingerprint —
so every read (``/allocate`` with nothing queued, ``/jobs``, observers
polling) can be served from the last solve instead of re-running AMF.
:meth:`Cluster.fingerprint` covers exactly the solver inputs, so a hit is
a proof of equal inputs, and the cached *matrix* (not the Allocation
object) is replayed: rebinding it to the caller's ``Cluster`` instance
revalidates every invariant on the way out.

Bounded LRU; entries from states the churn has left behind age out.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.allocation import Allocation
from repro.model.cluster import Cluster
from repro.obs.instruments import CACHE_EVICTIONS, record_cache
from repro.obs.registry import REGISTRY

__all__ = ["CacheStats", "AllocationCache"]


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class AllocationCache:
    """LRU of ``fingerprint -> (matrix, policy)`` with hit/miss accounting."""

    def __init__(self, max_entries: int = 128):
        require(max_entries >= 1, "max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, tuple[np.ndarray, str]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cluster: Cluster) -> Allocation | None:
        """Cached allocation for ``cluster``, rebound and revalidated, or ``None``."""
        # fingerprint() hashes the full instance — compute it once per lookup.
        key = cluster.fingerprint()
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            record_cache(hit=False)
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        record_cache(hit=True)
        matrix, policy = entry
        return Allocation(cluster, matrix.copy(), policy=policy)

    def put(self, cluster: Cluster, alloc: Allocation) -> None:
        key = cluster.fingerprint()
        self._entries[key] = (np.array(alloc.matrix, dtype=float, copy=True), alloc.policy)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if REGISTRY.enabled:
                CACHE_EVICTIONS.inc()

    def clear(self) -> None:
        self._entries.clear()
