"""Typed wire schema for the v1 control-plane API.

One place defines what travels over HTTP: frozen dataclasses with
validating ``from_json`` constructors and symmetric ``to_json`` dumps,
replacing the ad-hoc dict parsing the front-end grew organically.  The
HTTP layer (:mod:`repro.service.http`) maps :class:`SchemaError` to a 400
with the uniform error envelope; nothing schema-shaped is parsed anywhere
else.

The machine-readable counterpart is :data:`API_SPEC`, served verbatim at
``GET /v1/spec``: every route, its request schema and its response fields,
plus the versioning/deprecation policy — a client can discover the whole
surface without reading docs/api.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.model.job import Job
from repro.model.resources import ResourceMismatchError

__all__ = [
    "MAX_BODY_BYTES",
    "SchemaError",
    "JobSpec",
    "CapacitySpec",
    "AllocateRequest",
    "JobsQuery",
    "error_envelope",
    "allocation_payload",
    "jobs_listing_payload",
    "parse_fresh",
    "API_SPEC",
]

#: Largest accepted request body (HTTP answers 413 above it) — also the
#: frame ceiling of the distributed wire protocol (:mod:`repro.dist
#: .protocol`), so one limit bounds every byte stream the system parses.
MAX_BODY_BYTES = 4 << 20

#: ``GET /v1/jobs`` pagination bounds (documented in docs/api.md).
DEFAULT_LIMIT = 100
MAX_LIMIT = 1000
JOB_STATUSES = ("active", "pending", "all")


class SchemaError(ValueError):
    """A request body or query string that does not match the v1 schema."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SchemaError(message)


def _number(value: Any, what: str) -> float:
    """A finite float, rejecting bools (JSON ``true`` is not a number)."""
    _require(isinstance(value, (int, float)) and not isinstance(value, bool), f"{what} must be a number")
    out = float(value)
    _require(math.isfinite(out), f"{what} must be finite, got {out}")
    return out


def _site_map(value: Any, what: str) -> dict[str, float]:
    _require(isinstance(value, Mapping), f"{what} must be an object of site -> number")
    return {str(k): _number(v, f"{what}[{k!r}]") for k, v in value.items()}


def _resource_map(value: Any, what: str) -> dict[str, float]:
    """A resource-name → amount object (shape only; semantics live in the
    model's :func:`~repro.model.resources.normalize_resources`)."""
    _require(isinstance(value, Mapping), f"{what} must be an object of resource -> number")
    out: dict[str, float] = {}
    for key, raw in value.items():
        _require(isinstance(key, str) and bool(key), f"{what} keys must be non-empty strings")
        out[key] = _number(raw, f"{what}[{key!r}]")
    return out


def _demand_map(value: Any, what: str, resources: dict[str, float]) -> dict[str, float]:
    """Per-site demand caps: each entry a number (task-rate cap) or a
    resource map, converted to the task rate that vector supports
    (``min_r entry[r] / resources[r]``)."""
    _require(isinstance(value, Mapping), f"{what} must be an object of site -> number | resource map")
    per_task = resources or {"slots": 1.0}
    out: dict[str, float] = {}
    for site, raw in value.items():
        site = str(site)
        if isinstance(raw, Mapping):
            vec = _resource_map(raw, f"{what}[{site!r}]")
            _require(bool(vec), f"{what}[{site!r}] vector must not be empty")
            extra = set(vec) - set(per_task)
            if extra:
                raise ResourceMismatchError(
                    f"{what}[{site!r}] names resources {sorted(extra)} the job does not "
                    f"consume (job resources: {sorted(per_task)})"
                )
            out[site] = min(vec[r] / per_task[r] for r in vec)
        else:
            out[site] = _number(raw, f"{what}[{site!r}]")
    return out


@dataclass(frozen=True, slots=True)
class JobSpec:
    """Wire form of one job (``POST /v1/jobs`` / ``POST /v1/allocate``).

    ``resources`` is the per-task demand vector (resource → amount,
    uniform across sites); omitted means the scalar world's ``{"slots": 1}``.
    ``demand`` entries accept a plain number (aggregate task-rate cap, the
    historical form) or a resource map, normalized at parse time to the
    task rate that vector supports.
    """

    name: str
    workload: dict[str, float]
    demand: dict[str, float] = field(default_factory=dict)
    weight: float = 1.0
    arrival: float = 0.0
    resources: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: Any) -> "JobSpec":
        _require(isinstance(data, Mapping), "job must be a JSON object")
        _require("name" in data and "workload" in data, "job object needs at least 'name' and 'workload'")
        unknown = set(data) - {"name", "workload", "demand", "weight", "arrival", "resources"}
        _require(not unknown, f"job object has unknown fields {sorted(unknown)}")
        name = data["name"]
        _require(isinstance(name, str) and bool(name), "job 'name' must be a non-empty string")
        try:
            resources = _resource_map(data.get("resources", {}), "resources")
            return cls(
                name=name,
                workload=_site_map(data["workload"], "workload"),
                demand=_demand_map(data.get("demand", {}), "demand", resources),
                weight=_number(data.get("weight", 1.0), "weight"),
                arrival=_number(data.get("arrival", 0.0), "arrival"),
                resources=resources,
            )
        except SchemaError as exc:
            raise SchemaError(f"malformed job object: {exc}") from exc

    def to_job(self) -> Job:
        """Build the model object (its validation — positivity, demand only
        on support — still applies and also maps to 400)."""
        return Job(
            self.name,
            self.workload,
            self.demand,
            weight=self.weight,
            arrival=self.arrival,
            resources=self.resources,
        )

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "workload": dict(self.workload)}
        if self.demand:
            out["demand"] = dict(self.demand)
        if self.weight != 1.0:
            out["weight"] = self.weight
        if self.arrival != 0.0:
            out["arrival"] = self.arrival
        if self.resources:
            out["resources"] = dict(self.resources)
        return out


@dataclass(frozen=True, slots=True)
class CapacitySpec:
    """Wire form of ``POST /v1/capacity``.

    ``capacity`` is a positive number (scalar site, the historical form)
    or a resource → amount map; a vector update must keep the site's
    resource-name set (the state enforces that, answering
    ``resource_mismatch`` otherwise).
    """

    site: str
    capacity: float | dict[str, float]

    @classmethod
    def from_json(cls, data: Any) -> "CapacitySpec":
        _require(isinstance(data, Mapping), "body must be a JSON object")
        _require("site" in data and "capacity" in data, "body needs 'site' and 'capacity'")
        if isinstance(data["capacity"], Mapping):
            vec = _resource_map(data["capacity"], "capacity")
            _require(bool(vec), "capacity vector must not be empty")
            for res, amount in vec.items():
                _require(amount > 0.0, f"capacity[{res!r}] must be positive and finite, got {amount}")
            return cls(site=str(data["site"]), capacity=vec)
        capacity = _number(data["capacity"], "capacity")
        _require(capacity > 0.0, f"capacity must be positive and finite, got {capacity}")
        return cls(site=str(data["site"]), capacity=capacity)

    def to_json(self) -> dict[str, Any]:
        cap = dict(self.capacity) if isinstance(self.capacity, dict) else self.capacity
        return {"site": self.site, "capacity": cap}


@dataclass(frozen=True, slots=True)
class AllocateRequest:
    """Wire form of ``POST /v1/allocate``: jobs to queue before solving.

    Accepts ``{"jobs": [job, ...]}``, a bare job object, or an empty body
    (allocate whatever the state holds).
    """

    jobs: tuple[JobSpec, ...] = ()

    @classmethod
    def from_json(cls, data: Any, *, require_jobs: bool = False) -> "AllocateRequest":
        _require(isinstance(data, Mapping), "request body must be a JSON object")
        entries = data.get("jobs")
        if entries is None:
            entries = [data] if "name" in data else []
        _require(isinstance(entries, list), "'jobs' must be a list of job objects")
        if require_jobs:
            _require(bool(entries), "body needs a job object or a 'jobs' list")
        return cls(jobs=tuple(JobSpec.from_json(entry) for entry in entries))


@dataclass(frozen=True, slots=True)
class JobsQuery:
    """Validated query string of ``GET /v1/jobs``."""

    limit: int = DEFAULT_LIMIT
    offset: int = 0
    status: str = "active"

    @classmethod
    def from_query(cls, params: Mapping[str, str]) -> "JobsQuery":
        unknown = set(params) - {"limit", "offset", "status"}
        _require(not unknown, f"unknown query parameters {sorted(unknown)}")

        def _int(key: str, default: int) -> int:
            raw = params.get(key)
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError:
                raise SchemaError(f"'{key}' must be an integer, got {raw!r}") from None

        limit = _int("limit", DEFAULT_LIMIT)
        _require(1 <= limit <= MAX_LIMIT, f"'limit' must be in 1..{MAX_LIMIT}, got {limit}")
        offset = _int("offset", 0)
        _require(offset >= 0, f"'offset' must be non-negative, got {offset}")
        status = params.get("status", "active")
        _require(status in JOB_STATUSES, f"'status' must be one of {list(JOB_STATUSES)}, got {status!r}")
        return cls(limit=limit, offset=offset, status=status)


def error_envelope(code: str, message: str, detail: Any = None) -> dict[str, Any]:
    """The uniform v1 error body: ``{"error": {code, message, detail}}``."""
    return {"error": {"code": code, "message": message, "detail": detail}}


_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off"))


def parse_fresh(params: Mapping[str, str], *, default: bool) -> bool:
    """The ``fresh`` query flag of ``GET /v1/allocate``.

    ``fresh=true`` forces pending deltas to apply before answering (the
    ``POST /v1/allocate`` semantics); ``fresh=false`` serves the
    batch-delayed published state — the lock-free fast path of the asyncio
    edge.
    """
    raw = params.get("fresh")
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise SchemaError(f"'fresh' must be a boolean flag, got {raw!r}")


def allocation_payload(served) -> dict[str, Any]:
    """JSON body of a :class:`~repro.service.daemon.ServedAllocation`.

    Shared by both HTTP edges (:mod:`repro.service.http` and
    :mod:`repro.service.aio`) so a client sees bit-identical payloads
    whichever edge answered.
    """
    alloc = served.allocation
    cluster = alloc.cluster
    return {
        "policy": alloc.policy,
        "cached": served.cached,
        "solve_ms": 1e3 * served.seconds,
        "version": served.version,
        "fingerprint": served.fingerprint,
        "jobs": {
            job.name: {
                "aggregate": float(alloc.aggregates[i]),
                "shares": {
                    site.name: float(alloc.matrix[i, j])
                    for j, site in enumerate(cluster.sites)
                    if alloc.matrix[i, j] > 0.0
                },
            }
            for i, job in enumerate(cluster.jobs)
        },
        "site_usage": {s.name: float(u) for s, u in zip(cluster.sites, alloc.site_usage)},
        "utilization": alloc.utilization if cluster.n_jobs else 0.0,
    }


def jobs_listing_payload(
    payload: dict[str, Any], pending_names: list[str], q: JobsQuery
) -> dict[str, Any]:
    """``GET /v1/jobs``: paginate + status-filter an allocation payload.

    ``payload`` is :func:`allocation_payload` output (mutated in place:
    its ``jobs`` mapping is replaced by the requested page), so both edges
    share one pagination implementation.
    """
    active = payload["jobs"]
    for entry in active.values():
        entry["status"] = "active"
    items: list[tuple[str, dict[str, Any]]] = []
    if q.status in ("active", "all"):
        items.extend(active.items())
    if q.status in ("pending", "all"):
        items.extend((name, {"status": "pending"}) for name in pending_names if name not in active)
    page = items[q.offset : q.offset + q.limit]
    payload["jobs"] = dict(page)
    payload["pagination"] = {
        "limit": q.limit,
        "offset": q.offset,
        "total": len(items),
        "returned": len(page),
        "status": q.status,
    }
    return payload


_JOB_FIELDS = {
    "name": "string (required, non-empty, unique)",
    "workload": "object site -> finite number >= 0 (required, >= 1 positive entry)",
    "demand": (
        "object site -> finite number >= 0 | object resource -> finite number "
        "(optional; only on workload sites; a resource map converts to the "
        "task rate it supports: min_r demand[r] / resources[r])"
    ),
    "weight": "finite number > 0 (optional, default 1.0)",
    "arrival": "finite number >= 0 (optional, default 0.0)",
    "resources": (
        "object resource -> finite number > 0 (optional; per-task demand vector, "
        "uniform across sites; omitted = {'slots': 1})"
    ),
}

_ALLOCATION_FIELDS = {
    "policy": "string — solver that produced the matrix",
    "cached": "bool — replayed from the allocation cache",
    "solve_ms": "number — solve wall time (0 on a cache hit)",
    "version": "int — state version the allocation reflects",
    "fingerprint": "string — canonical cluster fingerprint",
    "jobs": "object name -> {aggregate, shares: {site: number}}",
    "site_usage": "object site -> allocated capacity",
    "utilization": "number — total usage / total capacity",
}

#: Served verbatim at ``GET /v1/spec``.
API_SPEC: dict[str, Any] = {
    "api_version": "v1",
    # Bumped to 2 with the resource-vector forms of JobSpec.resources,
    # vector demand entries and CapacitySpec.capacity maps (all additive:
    # every schema_version-1 body is still accepted unchanged).
    "schema_version": 2,
    "versioning": {
        "policy": (
            "All endpoints live under /v1/. Unversioned paths are deprecated aliases: "
            "they answer identically but carry 'Deprecation: true' and a "
            "'Link: </v1/...>; rel=\"successor-version\"' header, and will be removed "
            "in the release after next. Breaking changes only ever ship as /v2/."
        ),
        "legacy_aliases": True,
    },
    "error_envelope": {
        "shape": {"error": {"code": "string", "message": "string", "detail": "any | null"}},
        "codes": {
            "bad_request": "400 — malformed JSON, schema violation, non-finite number",
            "resource_mismatch": (
                "400 — resource-name sets disagree: a vector capacity update that adds or "
                "drops a site resource, a scalar update on a vector site, or a demand map "
                "naming resources the job does not consume"
            ),
            "unknown_resource": "400 — a job demands a resource no site offers",
            "not_found": "404 — unknown path or unknown job name",
            "request_timeout": "408 — body read stalled or shorter than Content-Length",
            "payload_too_large": "413 — request body above the size limit",
            "too_many_requests": (
                "429 — admission control shed the request (solver intake queue full); "
                "the Retry-After header and detail.retry_after_seconds say when to retry "
                "(derived from recent solve p50 and queue depth)"
            ),
            "internal": "500 — unexpected server fault (class name in message)",
            "unavailable": "503 — service draining for shutdown; retry against a fresh instance",
        },
    },
    "pagination": {
        "limit": {"default": DEFAULT_LIMIT, "min": 1, "max": MAX_LIMIT},
        "offset": {"default": 0, "min": 0},
        "status": {"default": "active", "values": list(JOB_STATUSES)},
    },
    "schemas": {
        "JobSpec": _JOB_FIELDS,
        "CapacitySpec": {
            "site": "string (required)",
            "capacity": (
                "finite number > 0 | object resource -> finite number > 0 (required; "
                "a vector must keep the site's existing resource-name set)"
            ),
        },
        "Allocation": _ALLOCATION_FIELDS,
    },
    "routes": [
        {
            "method": "GET",
            "path": "/v1/health",
            "response": ["status", "version", "jobs", "sites", "pending_events"],
        },
        {
            "method": "GET",
            "path": "/v1/stats",
            "response": [
                "uptime_seconds",
                "state",
                "solver",
                "incremental",
                "cache",
                "batching",
                "sharding",
                "resilience",
            ],
        },
        {
            "method": "GET",
            "path": "/v1/metrics",
            "response": ["(Prometheus 0.0.4 text exposition)"],
        },
        {
            "method": "GET",
            "path": "/v1/traces",
            "response": ["traceEvents"],
        },
        {
            "method": "GET",
            "path": "/v1/jobs",
            "query": ["limit", "offset", "status"],
            "response": [*_ALLOCATION_FIELDS, "pagination"],
        },
        {
            "method": "POST",
            "path": "/v1/jobs",
            "request": "JobSpec | {jobs: [JobSpec, ...]}",
            "response": ["queued_jobs", "pending_events"],
        },
        {
            "method": "DELETE",
            "path": "/v1/jobs/<name>",
            "response": ["pending_events"],
        },
        {
            "method": "POST",
            "path": "/v1/capacity",
            "request": "CapacitySpec",
            "response": ["pending_events"],
        },
        {
            "method": "POST",
            "path": "/v1/allocate",
            "request": "{} | JobSpec | {jobs: [JobSpec, ...]}",
            "response": [*_ALLOCATION_FIELDS, "queued_jobs"],
        },
        {
            "method": "GET",
            "path": "/v1/allocate",
            "query": ["fresh"],
            "response": [*_ALLOCATION_FIELDS],
        },
        {
            "method": "GET",
            "path": "/v1/spec",
            "response": [
                "api_version",
                "schema_version",
                "versioning",
                "error_envelope",
                "pagination",
                "schemas",
                "routes",
            ],
        },
    ],
}
