"""Online allocation service: incremental AMF behind a batched daemon.

The offline library answers "what is the fair allocation of *this*
cluster?"; this package answers it continuously while the cluster churns.
See docs/service.md for the architecture and knobs.

* :mod:`repro.service.state` — :class:`ClusterState` delta store + events.
* :mod:`repro.service.solver` — warm-started incremental AMF.
* :mod:`repro.service.batching` — event coalescing queue.
* :mod:`repro.service.cache` — fingerprint-keyed allocation cache.
* :mod:`repro.service.daemon` — :class:`AllocationService`, the composed pipeline.
* :mod:`repro.service.journal` — write-ahead journal + crash recovery.
* :mod:`repro.service.http` — stdlib threaded HTTP/JSON API (``repro.cli serve``).
* :mod:`repro.service.aio` — asyncio HTTP edge with lock-free reads and
  admission control (``repro.cli serve --edge aio``).
"""

from repro.service.batching import BatchStats, CoalescingQueue
from repro.service.cache import AllocationCache, CacheStats
from repro.service.daemon import AllocationService, ServedAllocation, ServiceClosed
from repro.service.journal import (
    RecoveredJournal,
    WriteAheadJournal,
    open_journal,
    recover_journal,
    recover_state,
)
from repro.service.solver import IncrementalAmfSolver, IncrementalStats
from repro.service.state import (
    CapacityChanged,
    ClusterEvent,
    ClusterState,
    JobArrived,
    JobDeparted,
    StateError,
    events_from_schedule,
)

__all__ = [
    "AllocationCache",
    "AllocationService",
    "BatchStats",
    "CacheStats",
    "CapacityChanged",
    "ClusterEvent",
    "ClusterState",
    "CoalescingQueue",
    "IncrementalAmfSolver",
    "IncrementalStats",
    "JobArrived",
    "JobDeparted",
    "RecoveredJournal",
    "ServedAllocation",
    "ServiceClosed",
    "StateError",
    "WriteAheadJournal",
    "events_from_schedule",
    "open_journal",
    "recover_journal",
    "recover_state",
]
