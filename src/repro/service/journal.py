"""Write-ahead journal: crash durability for the allocation daemon.

The coalescing queue makes the service fast; it also makes it forgetful —
an accepted delta lives only in memory until its batch flushes, and the
state itself never leaves the process.  :class:`WriteAheadJournal` fixes
both: every *accepted* event is appended to an on-disk JSONL segment
before the daemon acknowledges it, and periodic *checkpoints* write the
full cluster snapshot so recovery replays a bounded tail instead of the
whole history.

Layout of a journal directory::

    snapshot-000000000042.json   # cluster state with the first 42 events folded in
    segment-000000000042.jsonl   # events 43, 44, ... one JSON object per line

* A **segment** file is named by the sequence number *before* its first
  event; each line is ``{"seq": n, "k": kind, ...}`` with monotonically
  increasing ``seq``.  Lines are written through a buffered file and
  fsynced in *groups* (``fsync_batch`` appends or ``fsync_interval``
  seconds, whichever comes first) — the standard group-commit trade-off:
  an acknowledged-but-unsynced tail can be lost to a power cut, but no
  event that reached the disk is ever lost.  ``fsync_batch=1`` gives
  synchronous durability.
* A **checkpoint** (:meth:`WriteAheadJournal.checkpoint`) serializes the
  current :class:`~repro.service.state.ClusterState` at the journal's
  sequence number, fsyncs it into place via an atomic rename, starts a
  fresh segment, and deletes every older file.  The daemon checkpoints
  only when the coalescing queue is empty (right after a flush), so a
  snapshot at ``seq`` provably contains the effect of every journaled
  event ``<= seq``.

Recovery (:func:`recover_journal` / :func:`recover_state`) loads the
newest readable snapshot, replays every following segment line in order,
and *discards the torn tail*: the first line that fails to parse (a crash
mid-write) ends the replay.  Replayed events go through the same
best-effort :meth:`ClusterState.apply_all` the live daemon uses, so an
event the live run rejected at apply time is rejected identically on
replay — the recovered state is bit-identical (same
:meth:`~repro.model.cluster.Cluster.fingerprint`) to the pre-crash state,
which ``tests/service/test_journal.py`` proves with hypothesis and the CI
journal-smoke proves across a real SIGKILL.

The journal is *not* internally locked: the daemon serializes every call
behind its own lock (append on accept, sync + checkpoint on flush), and
the asyncio edge funnels all writes through one solver thread.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro._util import require
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.serialize import cluster_from_dict, cluster_to_dict
from repro.obs import instruments
from repro.service.state import (
    CapacityChanged,
    ClusterEvent,
    ClusterState,
    JobArrived,
    JobDeparted,
)

__all__ = [
    "JournalError",
    "JournalStats",
    "RecoveredJournal",
    "WriteAheadJournal",
    "event_to_json",
    "event_from_json",
    "recover_journal",
    "recover_state",
    "open_journal",
]

SNAPSHOT_FORMAT = "repro-journal-snapshot-v1"
_SNAPSHOT_PREFIX = "snapshot-"
_SEGMENT_PREFIX = "segment-"
_SEQ_DIGITS = 12


class JournalError(RuntimeError):
    """A journal directory whose contents cannot be interpreted safely."""


# ----------------------------------------------------------------------
# Event wire format (shared with nothing: the journal owns its encoding)
# ----------------------------------------------------------------------
def _job_to_json(job: Job) -> dict[str, Any]:
    out: dict[str, Any] = {"name": job.name, "workload": dict(job.workload)}
    if job.demand:
        out["demand"] = dict(job.demand)
    if job.weight != 1.0:
        out["weight"] = job.weight
    if job.arrival != 0.0:
        out["arrival"] = job.arrival
    if job.resources:
        out["resources"] = dict(job.resources)
    return out


def _job_from_json(data: dict[str, Any]) -> Job:
    return Job(
        data["name"],
        {k: float(v) for k, v in data["workload"].items()},
        {k: float(v) for k, v in data.get("demand", {}).items()},
        weight=float(data.get("weight", 1.0)),
        arrival=float(data.get("arrival", 0.0)),
        resources={k: float(v) for k, v in data.get("resources", {}).items()},
    )


def event_to_json(event: ClusterEvent) -> dict[str, Any]:
    """One event as a JSON-compatible dict (``k`` discriminates the kind)."""
    if isinstance(event, JobArrived):
        out: dict[str, Any] = {"k": "arrive", "job": _job_to_json(event.job)}
    elif isinstance(event, JobDeparted):
        out = {"k": "depart", "name": event.name}
    elif isinstance(event, CapacityChanged):
        # A vector capacity journals as the map itself; scalar stays a number.
        cap = dict(event.capacity) if isinstance(event.capacity, Mapping) else event.capacity
        out = {"k": "capacity", "site": event.site, "capacity": cap}
    else:
        raise JournalError(f"unjournalable event type {type(event).__name__!r}")
    if event.time != 0.0:
        out["t"] = event.time
    return out


def event_from_json(data: dict[str, Any]) -> ClusterEvent:
    """Inverse of :func:`event_to_json` (exact float round-trip via repr)."""
    kind = data.get("k")
    t = float(data.get("t", 0.0))
    if kind == "arrive":
        return JobArrived(_job_from_json(data["job"]), t)
    if kind == "depart":
        return JobDeparted(str(data["name"]), t)
    if kind == "capacity":
        raw = data["capacity"]
        cap = {k: float(v) for k, v in raw.items()} if isinstance(raw, dict) else float(raw)
        return CapacityChanged(str(data["site"]), cap, t)
    raise JournalError(f"unknown journaled event kind {kind!r}")


# ----------------------------------------------------------------------
# Append side
# ----------------------------------------------------------------------
@dataclass(slots=True)
class JournalStats:
    """Counters for ``/v1/stats`` and the benchmark report."""

    appends: int = 0  # events appended this boot
    fsyncs: int = 0
    checkpoints: int = 0
    bytes_written: int = 0
    recovered_events: int = 0  # events replayed into the boot state
    dropped_lines: int = 0  # torn tail discarded at recovery

    def to_dict(self) -> dict[str, int]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "bytes_written": self.bytes_written,
            "recovered_events": self.recovered_events,
            "dropped_lines": self.dropped_lines,
        }


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadJournal:
    """Append-only event log with group-commit fsync and checkpoints.

    Parameters
    ----------
    directory:
        Journal home (created if missing).  Use :func:`recover_state`
        first when the directory may hold a previous incarnation, and pass
        its ``seq`` as ``start_seq`` so numbering continues.
    fsync_batch / fsync_interval:
        Group-commit policy: an append triggers ``fsync`` once this many
        events are unsynced, or this many seconds passed since the last
        sync — whichever comes first.  ``fsync_batch=1`` syncs every
        append before it returns (synchronous durability).
    checkpoint_every:
        :meth:`maybe_checkpoint` compacts once this many events were
        appended since the last checkpoint (bounds replay work).
    clock:
        Injectable monotone clock for the interval policy (virtual time in
        tests).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        start_seq: int = 0,
        fsync_batch: int = 64,
        fsync_interval: float = 0.05,
        checkpoint_every: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        require(fsync_batch >= 1, "fsync_batch must be at least 1")
        require(fsync_interval >= 0.0, "fsync_interval must be non-negative")
        require(checkpoint_every >= 1, "checkpoint_every must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_batch = fsync_batch
        self.fsync_interval = fsync_interval
        self.checkpoint_every = checkpoint_every
        self._clock = clock
        self.seq = start_seq
        self.stats = JournalStats()
        self._unsynced = 0
        self._last_sync = clock()
        self._since_checkpoint = 0
        self._closed = False
        self._file = self._open_segment(start_seq)

    # -- plumbing ------------------------------------------------------
    def _segment_path(self, base_seq: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{base_seq:0{_SEQ_DIGITS}d}.jsonl"

    def _snapshot_path(self, seq: int) -> Path:
        return self.directory / f"{_SNAPSHOT_PREFIX}{seq:0{_SEQ_DIGITS}d}.json"

    def _open_segment(self, base_seq: int, *, truncate: bool = False):
        return open(self._segment_path(base_seq), "wb" if truncate else "ab")

    # -- append --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dirty(self) -> bool:
        """Whether acknowledged events are still waiting for an fsync."""
        return self._unsynced > 0

    def append(self, events: Sequence[ClusterEvent]) -> int:
        """Journal ``events`` in order; returns the sequence number after.

        The line hits the OS (buffered write + flush) before this returns;
        it hits the *platter* per the group-commit policy.  Callers that
        need an event durable right now follow up with :meth:`sync`.
        """
        require(not self._closed, "journal is closed")
        if not events:
            return self.seq
        chunks = []
        for event in events:
            self.seq += 1
            record = {"seq": self.seq, **event_to_json(event)}
            chunks.append(json.dumps(record, separators=(",", ":")).encode() + b"\n")
        blob = b"".join(chunks)
        self._file.write(blob)
        self._file.flush()
        self._unsynced += len(events)
        self.stats.appends += len(events)
        self.stats.bytes_written += len(blob)
        self._since_checkpoint += len(events)
        instruments.record_journal_append(len(events), len(blob))
        if self._unsynced >= self.fsync_batch or self._clock() - self._last_sync >= self.fsync_interval:
            self.sync()
        return self.seq

    def sync(self) -> None:
        """Force the group commit: fsync anything unsynced."""
        if self._closed or self._unsynced == 0:
            return
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self._last_sync = self._clock()
        self.stats.fsyncs += 1
        instruments.record_journal_fsync()

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, state: ClusterState) -> None:
        """Snapshot ``state`` at the current sequence number and compact.

        MUST only be called when every journaled event is reflected in
        ``state`` (i.e. the daemon's coalescing queue is empty) — the
        daemon guarantees this by checkpointing right after a full flush.
        The snapshot is written to a temp file, fsynced, atomically
        renamed into place, and the directory entry fsynced; only then are
        older segments and snapshots unlinked, so a crash at any point
        leaves a recoverable directory.
        """
        require(not self._closed, "journal is closed")
        self.sync()
        payload = {
            "format": SNAPSHOT_FORMAT,
            "seq": self.seq,
            "cluster": cluster_to_dict(state.snapshot()),
        }
        target = self._snapshot_path(self.seq)
        tmp = target.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(json.dumps(payload).encode())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        # Start the fresh segment before dropping history: there is never
        # a moment without a valid (snapshot, segment) pair on disk.
        # Truncate, don't append: every event <= seq is in the snapshot we
        # just fsynced, and the path may already hold a torn first line
        # from a previous incarnation (crash mid-write of a fresh
        # segment's opening event leaves segment base == recovered seq) —
        # appending after that tear would make the next recovery drop
        # everything this incarnation journals.
        self._file.close()
        self._file = self._open_segment(self.seq, truncate=True)
        _fsync_dir(self.directory)
        for path in self.directory.iterdir():
            name = path.name
            if name == target.name or name == self._segment_path(self.seq).name:
                continue
            if name.startswith((_SNAPSHOT_PREFIX, _SEGMENT_PREFIX)):
                path.unlink(missing_ok=True)
        self._since_checkpoint = 0
        self.stats.checkpoints += 1
        instruments.record_journal_checkpoint()

    def maybe_checkpoint(self, state: ClusterState) -> bool:
        """Checkpoint if ``checkpoint_every`` events accrued since the last."""
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint(state)
            return True
        return False

    def close(self) -> None:
        """Sync and close the live segment (idempotent)."""
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True

    def stats_dict(self) -> dict[str, Any]:
        return {
            "directory": str(self.directory),
            "seq": self.seq,
            "fsync_batch": self.fsync_batch,
            "unsynced": self._unsynced,
            **self.stats.to_dict(),
        }


# ----------------------------------------------------------------------
# Recovery side
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RecoveredJournal:
    """What :func:`recover_journal` found on disk."""

    cluster: Cluster | None  # newest readable snapshot (None = no snapshot)
    events: list[ClusterEvent] = field(default_factory=list)  # tail to replay
    seq: int = 0  # sequence number after the last replayable event
    snapshot_seq: int = 0
    dropped_lines: int = 0  # torn tail discarded


def _listed(directory: Path, prefix: str) -> list[tuple[int, Path]]:
    out = []
    for path in directory.iterdir():
        name = path.name
        if not name.startswith(prefix):
            continue
        stem = name[len(prefix):].split(".", 1)[0]
        if stem.isdigit():
            out.append((int(stem), path))
    out.sort()
    return out


def recover_journal(directory: str | os.PathLike) -> RecoveredJournal:
    """Read a journal directory back: newest snapshot + ordered event tail.

    Tolerates a torn final line (crash mid-append) by discarding it and
    everything after; raises :class:`JournalError` on structural damage a
    replay cannot paper over (a gap in the sequence numbers, i.e. a
    missing segment).
    """
    directory = Path(directory)
    rec = RecoveredJournal(cluster=None)
    if not directory.is_dir():
        return rec
    for seq, path in reversed(_listed(directory, _SNAPSHOT_PREFIX)):
        try:
            payload = json.loads(path.read_text())
            require(payload.get("format") == SNAPSHOT_FORMAT, f"unknown snapshot format in {path.name}")
            rec.cluster = cluster_from_dict(payload["cluster"])
            rec.snapshot_seq = rec.seq = int(payload["seq"])
            break
        except (OSError, ValueError, KeyError):
            # half-written snapshot (crash before the rename) — fall back
            # to an older one; the segments still cover the gap
            continue
    torn = False
    for base_seq, path in _listed(directory, _SEGMENT_PREFIX):
        if torn:
            # data after a torn line is unordered w.r.t. the tear: drop it
            with path.open("rb") as fh:
                rec.dropped_lines += sum(1 for _ in fh)
            continue
        with path.open("rb") as fh:
            for raw in fh:
                try:
                    record = json.loads(raw)
                    seq = int(record["seq"])
                    event = event_from_json(record)
                except (ValueError, KeyError, JournalError):
                    torn = True
                    rec.dropped_lines += 1
                    continue
                if torn:
                    rec.dropped_lines += 1
                    continue
                if seq <= rec.seq:
                    continue  # already folded into the snapshot
                if seq != rec.seq + 1:
                    raise JournalError(
                        f"journal gap: expected seq {rec.seq + 1}, found {seq} in {path.name}"
                    )
                rec.events.append(event)
                rec.seq = seq
    return rec


def recover_state(
    directory: str | os.PathLike,
    *,
    fallback_sites: Iterable = (),
) -> tuple[ClusterState | None, RecoveredJournal]:
    """Rebuild the pre-crash :class:`ClusterState` from a journal directory.

    The state starts from the snapshot's cluster (or from
    ``fallback_sites`` when the directory holds no snapshot — the very
    first boot), then replays the event tail through the same best-effort
    ``apply_all`` the live daemon uses.  Returns ``(None, rec)`` when
    there is neither a snapshot nor fallback sites to boot from.
    """
    rec = recover_journal(directory)
    if rec.cluster is not None:
        state = ClusterState(rec.cluster.sites, rec.cluster.jobs)
    else:
        sites = list(fallback_sites)
        if not sites:
            return None, rec
        state = ClusterState(sites)
    if rec.events:
        state.apply_all(rec.events)
    return state, rec


def open_journal(
    directory: str | os.PathLike,
    *,
    fallback_state: ClusterState | None = None,
    fallback_sites: Iterable = (),
    fsync_batch: int = 64,
    fsync_interval: float = 0.05,
    checkpoint_every: int = 4096,
    clock: Callable[[], float] = time.monotonic,
) -> tuple[ClusterState, WriteAheadJournal, RecoveredJournal]:
    """The boot path: recover, open for append, checkpoint immediately.

    The immediate checkpoint is load-bearing, not cosmetic: it compacts
    away any torn tail left by the crash, so old segment files can never
    shadow (or sequence-collide with) the events this incarnation is about
    to write.  When the directory holds no usable snapshot, the initial
    state comes from ``fallback_state`` (a freshly built store — the CLI's
    ``--load``/``--sites`` boot) or ``fallback_sites``; raises
    :class:`JournalError` when neither is given either.  A recovered
    snapshot always wins over the fallback: the journal is the durable
    truth of a previous incarnation.
    """
    state, rec = recover_state(directory, fallback_sites=fallback_sites)
    if state is None:
        state = fallback_state
        if state is not None and rec.events:
            # segments without a snapshot (crash before the first
            # checkpoint): the tail still replays into the fallback
            state.apply_all(rec.events)
    if state is None:
        raise JournalError(
            f"journal directory {directory} holds no snapshot and no fallback state was given"
        )
    journal = WriteAheadJournal(
        directory,
        start_seq=rec.seq,
        fsync_batch=fsync_batch,
        fsync_interval=fsync_interval,
        checkpoint_every=checkpoint_every,
        clock=clock,
    )
    journal.checkpoint(state)
    journal.stats.recovered_events = len(rec.events)
    journal.stats.dropped_lines = rec.dropped_lines
    return state, journal, rec
