"""Stdlib HTTP/JSON front-end for the allocation daemon.

No web framework — ``http.server.ThreadingHTTPServer`` plus ``json`` is
all the service needs, which keeps the dependency footprint identical to
the rest of the library.  Endpoints (all JSON):

``GET /health``
    Liveness: library version, state shape, pending events.
``GET /stats``
    Full counter dump (solver timings, cache, batching, resilience).
``GET /metrics``
    Prometheus text exposition of the :mod:`repro.obs` registry.
``GET /traces``
    Recent trace spans as Chrome-trace JSON (load in ``chrome://tracing``).
``GET /jobs``
    Jobs currently in the state with their aggregate allocations.
``POST /jobs``
    Body = one job object (``{"name", "workload", "demand"?, "weight"?}``)
    or ``{"jobs": [...]}``.  Queues arrivals; returns pending count.
``DELETE /jobs/<name>``
    Queues a departure (the name is URL-decoded; unknown jobs are 404).
``POST /capacity``
    Body ``{"site": str, "capacity": float}``.  Queues a capacity change.
``POST /allocate``
    Optional body with ``"jobs"`` to queue first; forces the pending batch
    to apply and returns the (possibly cached) allocation with solver
    provenance.

Error mapping (the full table lives in docs/service.md): invalid input —
bad JSON, missing fields, non-finite numbers — is 400; unknown paths and
unknown job names are 404; request bodies over ``MAX_BODY_BYTES`` are 413;
anything else is a 500 with the exception class in the payload.

A daemon thread flushes the coalescing queue every ``max_delay``, so
arrivals POSTed without a follow-up ``/allocate`` still land in the state.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import unquote

from repro.model.job import Job
from repro.obs import instruments
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.service.daemon import AllocationService
from repro.service.state import CapacityChanged, JobArrived, JobDeparted, StateError

__all__ = ["job_from_dict", "ServiceServer", "serve", "MAX_BODY_BYTES"]

#: Largest accepted request body; anything above is refused with 413
#: before a byte is read (a liveness guard, not a protocol limit).
MAX_BODY_BYTES = 4 << 20


class _PayloadTooLarge(Exception):
    """Content-Length above :data:`MAX_BODY_BYTES` (mapped to 413)."""


def job_from_dict(data: dict[str, Any]) -> Job:
    """Build a :class:`Job` from the wire format (same field names as
    :mod:`repro.model.serialize`).

    Malformed shapes (non-mapping workload/demand, non-numeric values) and
    non-finite numbers raise :class:`StateError` / :class:`ValueError`, both
    of which the HTTP layer maps to 400.
    """
    if not isinstance(data, dict) or "name" not in data or "workload" not in data:
        raise StateError("job object needs at least 'name' and 'workload'")
    try:
        workload = {str(k): float(v) for k, v in dict(data["workload"]).items()}
        demand = {str(k): float(v) for k, v in dict(data.get("demand", {})).items()}
        weight = float(data.get("weight", 1.0))
        arrival = float(data.get("arrival", 0.0))
    except (TypeError, ValueError) as exc:
        raise StateError(f"malformed job object: {exc}") from exc
    # Job.__post_init__ validates values (finite, non-negative, ...) and
    # raises ValueError, which the HTTP layer also answers with 400.
    return Job(str(data["name"]), workload, demand, weight=weight, arrival=arrival)


def _allocation_payload(served) -> dict[str, Any]:
    alloc = served.allocation
    cluster = alloc.cluster
    return {
        "policy": alloc.policy,
        "cached": served.cached,
        "solve_ms": 1e3 * served.seconds,
        "version": served.version,
        "fingerprint": served.fingerprint,
        "jobs": {
            job.name: {
                "aggregate": float(alloc.aggregates[i]),
                "shares": {
                    site.name: float(alloc.matrix[i, j])
                    for j, site in enumerate(cluster.sites)
                    if alloc.matrix[i, j] > 0.0
                },
            }
            for i, job in enumerate(cluster.jobs)
        },
        "site_usage": {s.name: float(u) for s, u in zip(cluster.sites, alloc.site_usage)},
        "utilization": alloc.utilization if cluster.n_jobs else 0.0,
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-amf"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AllocationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - noise control
        if not getattr(self.server, "quiet", False):
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------
    def _send_raw(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # e.g. after a 413 whose body was never read: tell the client
            # instead of silently dropping the keep-alive socket
            self.send_header("Connection", "close")
        self.end_headers()
        if REGISTRY.enabled:
            # before the body flush, so the counters are visible to any
            # request a client issues after reading this response
            instruments.SERVICE_REQUESTS.inc()
            if status >= 400:
                instruments.SERVICE_ERRORS.inc()
            t0 = getattr(self, "_t0", None)
            if t0 is not None:
                instruments.SERVICE_REQUEST_SECONDS.observe(time.perf_counter() - t0)
        self.wfile.write(body)

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        self._send_raw(status, json.dumps(payload).encode(), "application/json")

    def _body(self) -> dict[str, Any]:
        # A bad Content-Length raises ValueError here -> 400.
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode())
        if not isinstance(data, dict):
            raise StateError("request body must be a JSON object")
        return data

    def _fail(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._t0 = time.perf_counter()
        try:
            if self.path == "/metrics":
                if REGISTRY.enabled:
                    instruments.QUEUE_DEPTH.set(self.service.pending())
                self._send_raw(
                    200,
                    REGISTRY.render_prometheus().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/traces":
                self._send_raw(200, json.dumps(TRACER.to_chrome()).encode(), "application/json")
            elif self.path == "/health":
                import repro

                stats = self.service.stats()
                self._send(
                    200,
                    {
                        "status": "ok",
                        "version": repro.__version__,
                        "jobs": stats["state"]["jobs"],
                        "sites": stats["state"]["sites"],
                        "pending_events": stats["state"]["pending_events"],
                    },
                )
            elif self.path == "/stats":
                self._send(200, self.service.stats())
            elif self.path == "/jobs":
                served = self.service.allocation(fresh=False)
                self._send(200, _allocation_payload(served))
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        self._t0 = time.perf_counter()
        try:
            body = self._body()
            if self.path == "/allocate":
                queued = self._queue_jobs(body)
                served = self.service.allocation(fresh=True)
                payload = _allocation_payload(served)
                payload["queued_jobs"] = queued
                self._send(200, payload)
            elif self.path == "/jobs":
                queued = self._queue_jobs(body, require_jobs=True)
                self._send(202, {"queued_jobs": queued, "pending_events": self.service.pending()})
            elif self.path == "/capacity":
                if "site" not in body or "capacity" not in body:
                    raise StateError("body needs 'site' and 'capacity'")
                capacity = float(body["capacity"])
                # Validated here, not at flush time: the queue applies
                # batches asynchronously, so a bad value rejected there
                # would only surface as a silent rejection-log entry.
                # json.loads happily parses the Infinity/NaN literals.
                if not (math.isfinite(capacity) and capacity > 0.0):
                    raise StateError(f"capacity must be positive and finite, got {capacity}")
                pending = self.service.submit(CapacityChanged(str(body["site"]), capacity))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except _PayloadTooLarge as exc:
            # The oversized body was never read off the socket; close the
            # connection rather than let keep-alive parse it as a request.
            self.close_connection = True
            self._fail(413, str(exc))
        except (StateError, ValueError, json.JSONDecodeError) as exc:
            self._fail(400, str(exc))
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:  # noqa: N802
        self._t0 = time.perf_counter()
        try:
            prefix = "/jobs/"
            if self.path.startswith(prefix) and len(self.path) > len(prefix):
                # The path arrives percent-encoded ("map%20reduce"); decode
                # before touching state or names with spaces are undeletable.
                name = unquote(self.path[len(prefix):])
                if not self.service.has_job(name):
                    self._fail(404, f"unknown job {name!r}")
                    return
                pending = self.service.submit(JobDeparted(name))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except (StateError, ValueError) as exc:
            self._fail(400, str(exc))
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def _queue_jobs(self, body: dict[str, Any], *, require_jobs: bool = False) -> list[str]:
        entries = body.get("jobs")
        if entries is None:
            entries = [body] if "name" in body else []
        if require_jobs and not entries:
            raise StateError("body needs a job object or a 'jobs' list")
        jobs = [job_from_dict(entry) for entry in entries]
        for job in jobs:
            self.service.submit(JobArrived(job))
        return [job.name for job in jobs]


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AllocationService`.

    Runs a background *flusher* thread so batches apply within
    ``max_delay`` even when no request forces them.  Use as a context
    manager or call :meth:`shutdown` (both stop the flusher).
    """

    daemon_threads = True

    def __init__(self, service: AllocationService, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True):
        super().__init__((host, port), _Handler)
        self.service = service
        self.quiet = quiet
        self._stop = threading.Event()
        self._flusher = threading.Thread(target=self._flush_loop, name="amf-flusher", daemon=True)
        self._flusher.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def _flush_loop(self) -> None:
        idle = max(0.01, self.service.queue.max_delay / 2) if self.service.queue.max_delay else 0.01
        while not self._stop.is_set():
            wait = self.service.seconds_until_due()
            if wait is None:
                self._stop.wait(idle)
                continue
            if wait > 0.0:
                self._stop.wait(min(wait, idle))
            self.service.flush()

    def shutdown(self) -> None:  # pragma: no cover - exercised via context exit
        self._stop.set()
        super().shutdown()

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        super().__exit__(*exc_info)


def serve(service: AllocationService, host: str = "127.0.0.1", port: int = 8080, *, quiet: bool = False) -> None:
    """Blocking entry point used by ``python -m repro.cli serve``."""
    with ServiceServer(service, host, port, quiet=quiet) as server:
        print(f"repro-amf service listening on http://{host}:{server.port}")
        print(
            "endpoints: GET /health /stats /metrics /traces /jobs | "
            "POST /allocate /jobs /capacity | DELETE /jobs/<name>"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("\nshutting down")
