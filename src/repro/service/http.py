"""Stdlib HTTP/JSON front-end for the allocation daemon.

No web framework — ``http.server.ThreadingHTTPServer`` plus ``json`` is
all the service needs, which keeps the dependency footprint identical to
the rest of the library.  Endpoints (all JSON):

``GET /health``
    Liveness: library version, state shape, pending events.
``GET /stats``
    Full counter dump (solver timings, cache, batching, resilience).
``GET /jobs``
    Jobs currently in the state with their aggregate allocations.
``POST /jobs``
    Body = one job object (``{"name", "workload", "demand"?, "weight"?}``)
    or ``{"jobs": [...]}``.  Queues arrivals; returns pending count.
``DELETE /jobs/<name>``
    Queues a departure.
``POST /capacity``
    Body ``{"site": str, "capacity": float}``.  Queues a capacity change.
``POST /allocate``
    Optional body with ``"jobs"`` to queue first; forces the pending batch
    to apply and returns the (possibly cached) allocation with solver
    provenance.

A daemon thread flushes the coalescing queue every ``max_delay``, so
arrivals POSTed without a follow-up ``/allocate`` still land in the state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.model.job import Job
from repro.service.daemon import AllocationService
from repro.service.state import CapacityChanged, JobArrived, JobDeparted, StateError

__all__ = ["job_from_dict", "ServiceServer", "serve"]


def job_from_dict(data: dict[str, Any]) -> Job:
    """Build a :class:`Job` from the wire format (same field names as
    :mod:`repro.model.serialize`)."""
    if not isinstance(data, dict) or "name" not in data or "workload" not in data:
        raise StateError("job object needs at least 'name' and 'workload'")
    return Job(
        str(data["name"]),
        {str(k): float(v) for k, v in dict(data["workload"]).items()},
        {str(k): float(v) for k, v in dict(data.get("demand", {})).items()},
        weight=float(data.get("weight", 1.0)),
        arrival=float(data.get("arrival", 0.0)),
    )


def _allocation_payload(served) -> dict[str, Any]:
    alloc = served.allocation
    cluster = alloc.cluster
    return {
        "policy": alloc.policy,
        "cached": served.cached,
        "solve_ms": 1e3 * served.seconds,
        "version": served.version,
        "fingerprint": served.fingerprint,
        "jobs": {
            job.name: {
                "aggregate": float(alloc.aggregates[i]),
                "shares": {
                    site.name: float(alloc.matrix[i, j])
                    for j, site in enumerate(cluster.sites)
                    if alloc.matrix[i, j] > 0.0
                },
            }
            for i, job in enumerate(cluster.jobs)
        },
        "site_usage": {s.name: float(u) for s, u in zip(cluster.sites, alloc.site_usage)},
        "utilization": alloc.utilization if cluster.n_jobs else 0.0,
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-amf"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AllocationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - noise control
        if not getattr(self.server, "quiet", False):
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode())
        if not isinstance(data, dict):
            raise StateError("request body must be a JSON object")
        return data

    def _fail(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/health":
                import repro

                stats = self.service.stats()
                self._send(
                    200,
                    {
                        "status": "ok",
                        "version": repro.__version__,
                        "jobs": stats["state"]["jobs"],
                        "sites": stats["state"]["sites"],
                        "pending_events": stats["state"]["pending_events"],
                    },
                )
            elif self.path == "/stats":
                self._send(200, self.service.stats())
            elif self.path == "/jobs":
                served = self.service.allocation(fresh=False)
                self._send(200, _allocation_payload(served))
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            body = self._body()
            if self.path == "/allocate":
                queued = self._queue_jobs(body)
                served = self.service.allocation(fresh=True)
                payload = _allocation_payload(served)
                payload["queued_jobs"] = queued
                self._send(200, payload)
            elif self.path == "/jobs":
                queued = self._queue_jobs(body, require_jobs=True)
                self._send(202, {"queued_jobs": queued, "pending_events": self.service.pending()})
            elif self.path == "/capacity":
                if "site" not in body or "capacity" not in body:
                    raise StateError("body needs 'site' and 'capacity'")
                pending = self.service.submit(CapacityChanged(str(body["site"]), float(body["capacity"])))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except (StateError, ValueError, json.JSONDecodeError) as exc:
            self._fail(400, str(exc))
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            prefix = "/jobs/"
            if self.path.startswith(prefix) and len(self.path) > len(prefix):
                pending = self.service.submit(JobDeparted(self.path[len(prefix):]))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def _queue_jobs(self, body: dict[str, Any], *, require_jobs: bool = False) -> list[str]:
        entries = body.get("jobs")
        if entries is None:
            entries = [body] if "name" in body else []
        if require_jobs and not entries:
            raise StateError("body needs a job object or a 'jobs' list")
        jobs = [job_from_dict(entry) for entry in entries]
        for job in jobs:
            self.service.submit(JobArrived(job))
        return [job.name for job in jobs]


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AllocationService`.

    Runs a background *flusher* thread so batches apply within
    ``max_delay`` even when no request forces them.  Use as a context
    manager or call :meth:`shutdown` (both stop the flusher).
    """

    daemon_threads = True

    def __init__(self, service: AllocationService, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True):
        super().__init__((host, port), _Handler)
        self.service = service
        self.quiet = quiet
        self._stop = threading.Event()
        self._flusher = threading.Thread(target=self._flush_loop, name="amf-flusher", daemon=True)
        self._flusher.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def _flush_loop(self) -> None:
        idle = max(0.01, self.service.queue.max_delay / 2) if self.service.queue.max_delay else 0.01
        while not self._stop.is_set():
            wait = self.service.seconds_until_due()
            if wait is None:
                self._stop.wait(idle)
                continue
            if wait > 0.0:
                self._stop.wait(min(wait, idle))
            self.service.flush()

    def shutdown(self) -> None:  # pragma: no cover - exercised via context exit
        self._stop.set()
        super().shutdown()

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        super().__exit__(*exc_info)


def serve(service: AllocationService, host: str = "127.0.0.1", port: int = 8080, *, quiet: bool = False) -> None:
    """Blocking entry point used by ``python -m repro.cli serve``."""
    with ServiceServer(service, host, port, quiet=quiet) as server:
        print(f"repro-amf service listening on http://{host}:{server.port}")
        print("endpoints: GET /health /stats /jobs | POST /allocate /jobs /capacity | DELETE /jobs/<name>")
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("\nshutting down")
