"""Stdlib HTTP/JSON front-end for the allocation daemon — the v1 API.

No web framework — ``http.server.ThreadingHTTPServer`` plus ``json`` is
all the service needs, which keeps the dependency footprint identical to
the rest of the library.  All endpoints live under ``/v1/``; the
unversioned paths of the original API still answer identically but are
*deprecated aliases*: every response through one carries
``Deprecation: true`` and a ``Link: </v1/...>; rel="successor-version"``
header.  Endpoints (all JSON):

``GET /v1/health``
    Liveness: library version, state shape, pending events.
``GET /v1/stats``
    Full counter dump (solver timings, cache, batching, sharding,
    resilience).
``GET /v1/metrics``
    Prometheus text exposition of the :mod:`repro.obs` registry.
``GET /v1/traces``
    Recent trace spans as Chrome-trace JSON (load in ``chrome://tracing``).
``GET /v1/spec``
    Machine-readable API description (routes, schemas, error codes —
    :data:`repro.service.schema.API_SPEC`).  v1-only: no legacy alias.
``GET /v1/jobs``
    Jobs with their aggregate allocations.  Paginated: ``limit`` (default
    100, max 1000), ``offset`` (default 0) and a ``status`` filter
    (``active`` jobs in the state — the default, ``pending`` arrivals
    still in the queue, or ``all``).
``POST /v1/jobs``
    Body = one job object (``{"name", "workload", "demand"?, "weight"?}``)
    or ``{"jobs": [...]}``.  Queues arrivals; returns pending count.
``DELETE /v1/jobs/<name>``
    Queues a departure (the name is URL-decoded; unknown jobs are 404).
``POST /v1/capacity``
    Body ``{"site": str, "capacity": float}``.  Queues a capacity change.
``POST /v1/allocate``
    Optional body with ``"jobs"`` to queue first; forces the pending batch
    to apply and returns the (possibly cached) allocation with solver
    provenance.
``GET /v1/allocate``
    The read-side allocate: ``?fresh=false`` (default) answers from the
    batch-delayed state, ``?fresh=true`` forces the flush first — the same
    split :mod:`repro.service.aio` serves lock-free from published
    snapshots.

Request parsing is owned by the typed schema layer
(:mod:`repro.service.schema`); every error path answers the uniform
envelope ``{"error": {"code", "message", "detail"}}``: ``bad_request``
(400) for malformed JSON, schema violations or non-finite numbers,
``not_found`` (404) for unknown paths and job names,
``request_timeout`` (408) when a client stalls mid-body or the body is
shorter than its Content-Length (each connection carries a socket
timeout — ``request_timeout`` on :class:`ServiceServer` — so a dribbling
client cannot pin a handler thread forever), ``payload_too_large`` (413)
above :data:`MAX_BODY_BYTES`, ``internal`` (500) for anything else, and
``unavailable`` (503) once the daemon is draining for shutdown.  The full
table lives in docs/api.md.

A daemon thread flushes the coalescing queue every ``max_delay``, so
arrivals POSTed without a follow-up ``/v1/allocate`` still land in the
state.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.model.job import Job
from repro.obs import instruments
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.service.daemon import AllocationService, ServiceClosed
from repro.service.schema import (
    API_SPEC,
    MAX_BODY_BYTES as _MAX_BODY_BYTES,
    AllocateRequest,
    CapacitySpec,
    JobsQuery,
    JobSpec,
    SchemaError,
    allocation_payload,
    error_envelope,
    jobs_listing_payload,
    parse_fresh,
)
from repro.model.resources import ResourceMismatchError, UnknownResourceError
from repro.service.state import CapacityChanged, JobArrived, JobDeparted, StateError

__all__ = ["job_from_dict", "ServiceServer", "serve", "MAX_BODY_BYTES"]

#: Largest accepted request body; anything above is refused with 413
#: before a byte is read (a liveness guard, not a protocol limit).  The
#: value lives in :mod:`repro.service.schema` so the distributed wire
#: protocol shares the same ceiling; re-exported here for compatibility.
MAX_BODY_BYTES = _MAX_BODY_BYTES

#: Legacy (unversioned) paths that alias a ``/v1`` route and therefore
#: answer with the deprecation headers.  ``/v1/spec`` has no alias.
_ALIASED = frozenset({"/health", "/stats", "/metrics", "/traces", "/jobs", "/allocate", "/capacity"})


class _PayloadTooLarge(Exception):
    """Content-Length above :data:`MAX_BODY_BYTES` (mapped to 413)."""


class _RequestTimeout(Exception):
    """A body read that stalled or came up short (mapped to 408)."""


def job_from_dict(data: dict[str, Any]) -> Job:
    """Build a :class:`Job` from the wire format (same field names as
    :mod:`repro.model.serialize`).

    Thin wrapper over :meth:`repro.service.schema.JobSpec.from_json`, kept
    as the stable library entry point.  Malformed shapes raise
    :class:`~repro.service.schema.SchemaError` and invalid values
    :class:`ValueError` — the HTTP layer maps both to 400.
    """
    return JobSpec.from_json(data).to_job()


# The payload renderer moved to the schema layer so both HTTP edges share
# it (bit-identical bodies whichever edge answers); kept under its old
# private name for anything that imported it from here.
_allocation_payload = allocation_payload


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-amf"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AllocationService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        # Per-connection socket timeout (StreamRequestHandler honours
        # self.timeout in setup): a client that stalls mid-request gets a
        # 408 instead of pinning this handler thread indefinitely.
        self.timeout = getattr(self.server, "request_timeout", None)
        super().setup()

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - noise control
        if not getattr(self.server, "quiet", False):
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------
    def _route(self) -> tuple[str, dict[str, str]]:
        """Split the request into a version-free route plus query params.

        ``/v1/...`` is the canonical surface; a known unversioned path is
        the deprecated alias of the same route and marks the response for
        the ``Deprecation``/``Link`` header pair.
        """
        parts = urlsplit(self.path)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))
        path = parts.path
        if path == "/v1" or path.startswith("/v1/"):
            self._versioned = True
            return path[3:] or "/", query
        if path in _ALIASED or path.startswith("/jobs/"):
            self._deprecation = f"/v1{path}"
        return path, query

    def _send_raw(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        deprecation = getattr(self, "_deprecation", None)
        if deprecation:
            self.send_header("Deprecation", "true")
            self.send_header("Link", f'<{deprecation}>; rel="successor-version"')
        if self.close_connection:
            # e.g. after a 413 whose body was never read: tell the client
            # instead of silently dropping the keep-alive socket
            self.send_header("Connection", "close")
        self.end_headers()
        if REGISTRY.enabled:
            # before the body flush, so the counters are visible to any
            # request a client issues after reading this response
            instruments.SERVICE_REQUESTS.inc()
            if status >= 400:
                instruments.SERVICE_ERRORS.inc()
            t0 = getattr(self, "_t0", None)
            if t0 is not None:
                instruments.SERVICE_REQUEST_SECONDS.observe(time.perf_counter() - t0)
        self.wfile.write(body)

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        self._send_raw(status, json.dumps(payload).encode(), "application/json")

    def _body(self) -> dict[str, Any]:
        # A bad Content-Length raises ValueError here -> 400.
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
        if length <= 0:
            return {}
        try:
            raw = self.rfile.read(length)
        except TimeoutError as exc:
            raise _RequestTimeout(f"timed out reading request body: {exc}") from None
        if len(raw) < length:
            # The peer closed (or stalled past the socket timeout) before
            # delivering its declared Content-Length.
            raise _RequestTimeout(
                f"incomplete request body ({len(raw)} of {length} declared bytes)"
            )
        data = json.loads(raw.decode())
        if not isinstance(data, dict):
            raise SchemaError("request body must be a JSON object")
        return data

    def _fail(self, status: int, code: str, message: str, detail: Any = None) -> None:
        self._send(status, error_envelope(code, message, detail))

    def _begin(self) -> None:
        self._t0 = time.perf_counter()
        self._deprecation: str | None = None
        self._versioned = False

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin()
        try:
            route, query = self._route()
            if route == "/metrics":
                if REGISTRY.enabled:
                    instruments.QUEUE_DEPTH.set(self.service.pending())
                self._send_raw(
                    200,
                    REGISTRY.render_prometheus().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/traces":
                self._send_raw(200, json.dumps(TRACER.to_chrome()).encode(), "application/json")
            elif route == "/health":
                import repro

                stats = self.service.stats()
                self._send(
                    200,
                    {
                        "status": "ok",
                        "version": repro.__version__,
                        "jobs": stats["state"]["jobs"],
                        "sites": stats["state"]["sites"],
                        "pending_events": stats["state"]["pending_events"],
                    },
                )
            elif route == "/stats":
                self._send(200, self.service.stats())
            elif route == "/spec" and self._versioned:
                self._send(200, API_SPEC)
            elif route == "/allocate":
                # The read-side allocate: fresh=false (default) serves the
                # batch-delayed state, fresh=true forces the flush — the
                # same split the asyncio edge serves lock-free.
                served = self.service.allocation(fresh=parse_fresh(query, default=False))
                self._send(200, _allocation_payload(served))
            elif route == "/jobs":
                self._send(200, self._jobs_listing(JobsQuery.from_query(query)))
            else:
                self._fail(404, "not_found", f"unknown path {self.path!r}")
        except SchemaError as exc:
            self._fail(400, "bad_request", str(exc))
        except ServiceClosed as exc:
            self.close_connection = True
            self._fail(503, "unavailable", str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._fail(500, "internal", f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        self._begin()
        try:
            route, _ = self._route()
            body = self._body()
            if route == "/allocate":
                queued = self._queue_jobs(AllocateRequest.from_json(body))
                served = self.service.allocation(fresh=True)
                payload = _allocation_payload(served)
                payload["queued_jobs"] = queued
                self._send(200, payload)
            elif route == "/jobs":
                queued = self._queue_jobs(AllocateRequest.from_json(body, require_jobs=True))
                self._send(202, {"queued_jobs": queued, "pending_events": self.service.pending()})
            elif route == "/capacity":
                # Validated here, not at flush time: the queue applies
                # batches asynchronously, so a bad value rejected there
                # would only surface as a silent rejection-log entry.
                # json.loads happily parses the Infinity/NaN literals.
                spec = CapacitySpec.from_json(body)
                pending = self.service.submit(CapacityChanged(spec.site, spec.capacity))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, "not_found", f"unknown path {self.path!r}")
        except _PayloadTooLarge as exc:
            # The oversized body was never read off the socket; close the
            # connection rather than let keep-alive parse it as a request.
            self.close_connection = True
            self._fail(413, "payload_too_large", str(exc))
        except _RequestTimeout as exc:
            # The stream is mid-body and unsynchronizable; answer once on
            # a connection marked for close.
            self.close_connection = True
            self._fail(408, "request_timeout", str(exc))
        except ServiceClosed as exc:
            self.close_connection = True
            self._fail(503, "unavailable", str(exc))
        # Resource-shape violations carry their own codes (before the
        # generic ValueError arm, which would claim them as bad_request).
        except ResourceMismatchError as exc:
            self._fail(400, "resource_mismatch", str(exc))
        except UnknownResourceError as exc:
            self._fail(400, "unknown_resource", str(exc))
        except (SchemaError, StateError, ValueError, json.JSONDecodeError) as exc:
            self._fail(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001
            self._fail(500, "internal", f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:  # noqa: N802
        self._begin()
        try:
            route, _ = self._route()
            prefix = "/jobs/"
            if route.startswith(prefix) and len(route) > len(prefix):
                # The path arrives percent-encoded ("map%20reduce"); decode
                # before touching state or names with spaces are undeletable.
                name = unquote(route[len(prefix):])
                if not self.service.has_job(name):
                    self._fail(404, "not_found", f"unknown job {name!r}")
                    return
                pending = self.service.submit(JobDeparted(name))
                self._send(202, {"pending_events": pending})
            else:
                self._fail(404, "not_found", f"unknown path {self.path!r}")
        except ServiceClosed as exc:
            self.close_connection = True
            self._fail(503, "unavailable", str(exc))
        except ResourceMismatchError as exc:
            self._fail(400, "resource_mismatch", str(exc))
        except UnknownResourceError as exc:
            self._fail(400, "unknown_resource", str(exc))
        except (SchemaError, StateError, ValueError) as exc:
            self._fail(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001
            self._fail(500, "internal", f"{type(exc).__name__}: {exc}")

    # -- helpers -------------------------------------------------------
    def _jobs_listing(self, q: JobsQuery) -> dict[str, Any]:
        """``GET /v1/jobs``: the allocation payload with a paginated,
        status-filtered ``jobs`` mapping (see :class:`JobsQuery`)."""
        served = self.service.allocation(fresh=False)
        payload = _allocation_payload(served)
        return jobs_listing_payload(payload, self.service.pending_job_names(), q)

    def _queue_jobs(self, request: AllocateRequest) -> list[str]:
        jobs = [spec.to_job() for spec in request.jobs]
        for job in jobs:
            self.service.submit(JobArrived(job))
        return [job.name for job in jobs]


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AllocationService`.

    Runs a background *flusher* thread so batches apply within
    ``max_delay`` even when no request forces them.  Use as a context
    manager or call :meth:`shutdown` (both stop the flusher).
    ``request_timeout`` is the per-connection socket budget: a client
    stalled that long mid-request is answered 408 (mid-body) or dropped
    (idle between requests).
    """

    daemon_threads = True

    def __init__(
        self,
        service: AllocationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quiet: bool = True,
        request_timeout: float | None = 30.0,
    ):
        super().__init__((host, port), _Handler)
        self.service = service
        self.quiet = quiet
        self.request_timeout = request_timeout
        self._stop = threading.Event()
        self._flusher = threading.Thread(target=self._flush_loop, name="amf-flusher", daemon=True)
        self._flusher.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def _flush_loop(self) -> None:
        idle = max(0.01, self.service.queue.max_delay / 2) if self.service.queue.max_delay else 0.01
        while not self._stop.is_set():
            wait = self.service.seconds_until_due()
            if wait is None:
                self._stop.wait(idle)
                continue
            if wait > 0.0:
                self._stop.wait(min(wait, idle))
            try:
                self.service.flush()
            except ServiceClosed:
                # racing a shutdown: the close() path drained the queue
                return
            except Exception as exc:  # noqa: BLE001 - the flusher must survive
                # One poisoned batch (solver fault, state bug) must not
                # silently kill the flusher and strand every future batch:
                # count it, say so, keep flushing.  The failed drain's
                # events are lost to the state but remain in the journal
                # and the rejection accounting of the next stats() read.
                instruments.record_flush_error()
                if not self.quiet:
                    import traceback

                    traceback.print_exc()
                self._stop.wait(idle)

    def shutdown(self) -> None:  # pragma: no cover - exercised via context exit
        self._stop.set()
        super().shutdown()

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        super().__exit__(*exc_info)


def serve(
    service: AllocationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    quiet: bool = False,
    request_timeout: float | None = 30.0,
) -> None:
    """Blocking entry point used by ``python -m repro.cli serve``.

    ``SIGTERM``/``SIGINT`` trigger a graceful stop: the listener closes
    (no new requests), the pending batch drains into the state — flushing
    the touched-sites journal — and a distributed backend's worker pool is
    disconnected (see :meth:`AllocationService.close`).
    """
    with ServiceServer(service, host, port, quiet=quiet, request_timeout=request_timeout) as server:
        print(f"repro-amf service listening on http://{host}:{server.port}")
        print(
            "endpoints: GET /v1/health /v1/stats /v1/metrics /v1/traces /v1/jobs /v1/spec | "
            "POST /v1/allocate /v1/jobs /v1/capacity | DELETE /v1/jobs/<name> "
            "(unversioned aliases deprecated)"
        )

        def _graceful(signum, frame):  # noqa: ARG001 - signal API
            # shutdown() joins serve_forever's loop, so it must run off
            # the main thread (which is inside that loop right now).
            threading.Thread(target=server.shutdown, name="amf-shutdown", daemon=True).start()

        try:
            signal.signal(signal.SIGTERM, _graceful)
            signal.signal(signal.SIGINT, _graceful)
        except ValueError:  # pragma: no cover - not the main thread
            pass
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            service.close()
            print("\nshutting down: batch drained, state journal flushed")
