"""Asyncio HTTP edge: lock-free reads, admission-controlled writes.

The threaded front-end (:mod:`repro.service.http`) funnels *every*
request — including pure reads — through the daemon's RLock, so read
throughput is capped by lock handoffs long before the solver saturates.
This edge removes the lock from the read path entirely:

* **One event loop** (own thread) parses HTTP/1.1 and serves every read
  endpoint (``GET /v1/health``, ``/v1/stats``, ``/v1/metrics``,
  ``/v1/jobs``, ``/v1/allocate?fresh=false``) from a
  :class:`PublishedView` — an immutable snapshot with pre-rendered
  response bytes.  Swapping the view is a single attribute assignment
  (atomic under the GIL), so reads never take a lock, never block on the
  solver, and never touch the daemon.
* **One solver thread** is the *only* code that calls the
  :class:`~repro.service.daemon.AllocationService`.  Writes (``POST
  /v1/jobs``, ``/v1/capacity``, ``/v1/allocate``, ``DELETE
  /v1/jobs/<name>``, ``GET /v1/allocate?fresh=true``) travel to it
  through a bounded intake queue and come back as asyncio futures; the
  coalescing queue stays the only path into the state, exactly as in the
  threaded edge.
* **Admission control**: when the intake queue holds ``max_pending``
  items the edge sheds new writes with ``429 too_many_requests`` and a
  ``Retry-After`` hint derived from the published solve p50 and the
  total backlog — open-loop load above solver capacity degrades into
  explicit backpressure instead of unbounded queueing (the
  ``repro_admission_*`` instruments count both outcomes).  Reads are
  never shed.

The solver thread publishes a fresh view after every batch of work it
processes and every queue flush, *before* resolving the write futures —
so by the time a client sees its 202, the published view already reflects
at least that state.  Responses are bit-identical to the threaded edge
(both render through :mod:`repro.service.schema`), including the v1
error envelope, legacy-alias ``Deprecation``/``Link`` headers, and 413 /
408 / 503 semantics.  The flush path has the same crash-proofing as the
threaded flusher: a poisoned batch is counted in
``repro_flush_errors_total`` and the loop keeps running.
"""

from __future__ import annotations

import asyncio
import json
import math
import queue
import threading
import time
import traceback
from typing import Any, Sequence
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.obs import instruments
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.service.daemon import AllocationService, ServiceClosed
from repro.service.schema import (
    API_SPEC,
    MAX_BODY_BYTES,
    AllocateRequest,
    CapacitySpec,
    JobsQuery,
    SchemaError,
    allocation_payload,
    error_envelope,
    jobs_listing_payload,
    parse_fresh,
)
from repro.model.resources import ResourceMismatchError, UnknownResourceError
from repro.service.state import CapacityChanged, ClusterEvent, JobArrived, JobDeparted, StateError

__all__ = ["PublishedView", "AioServiceServer", "serve_aio"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Legacy (unversioned) alias paths, mirroring the threaded edge.
_ALIASED = frozenset({"/health", "/stats", "/metrics", "/traces", "/jobs", "/allocate", "/capacity"})

_JSON = "application/json"
_STOP = object()  # intake sentinel: solver loop exits after the final drain

#: Header-count bound, matching ``http.client``'s cap so the two edges
#: expose the same DoS surface (per-line size is bounded separately by the
#: StreamReader limit).
_MAX_HEADERS = 100


def _render(
    status: int,
    body: bytes,
    content_type: str = _JSON,
    *,
    extra: Sequence[tuple[str, str]] = (),
    close: bool = False,
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        "Server: repro-amf-aio",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for key, value in extra:
        head.append(f"{key}: {value}")
    if close:
        head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class PublishedView:
    """One immutable serving snapshot: payloads pre-rendered to bytes.

    The solver thread builds a view after each unit of work; the event
    loop reads whichever view is current at request time.  Nothing in a
    view is ever mutated — ``jobs`` listings re-decode ``allocate_json``
    per request so pagination cannot corrupt the shared copy.
    """

    __slots__ = (
        "version",
        "fingerprint",
        "pending",
        "solve_p50_s",
        "health_resp",
        "stats_resp",
        "allocate_resp",
        "health_json",
        "stats_json",
        "allocate_json",
        "pending_names",
    )

    def __init__(
        self,
        *,
        version: int,
        fingerprint: str,
        pending: int,
        solve_p50_s: float | None,
        health: dict[str, Any],
        stats: dict[str, Any],
        allocate: dict[str, Any],
        pending_names: tuple[str, ...],
    ):
        self.version = version
        self.fingerprint = fingerprint
        self.pending = pending
        self.solve_p50_s = solve_p50_s
        self.health_json = json.dumps(health).encode()
        self.stats_json = json.dumps(stats).encode()
        self.allocate_json = json.dumps(allocate).encode()
        # the fast path: complete keep-alive responses, written verbatim
        self.health_resp = _render(200, self.health_json)
        self.stats_resp = _render(200, self.stats_json)
        self.allocate_resp = _render(200, self.allocate_json)
        self.pending_names = pending_names


class _Work:
    """One admitted write, en route from the event loop to the solver."""

    __slots__ = ("kind", "payload", "future", "loop")

    def __init__(self, kind: str, payload: Any, future: asyncio.Future, loop: asyncio.AbstractEventLoop):
        self.kind = kind
        self.payload = payload
        self.future = future
        self.loop = loop


class AioServiceServer:
    """The asyncio edge bound to one :class:`AllocationService`.

    Use as a context manager (or call :meth:`start` / :meth:`shutdown`).
    The server owns two threads — the event loop and the solver — and, on
    shutdown, the service itself (:meth:`AllocationService.close` runs
    last, so the journal checkpoint sees the fully-drained state).

    Parameters
    ----------
    max_pending:
        Intake-queue bound: writes beyond this many undispatched work
        items are shed with 429 + ``Retry-After``.
    retry_floor:
        Smallest ``Retry-After`` hint handed to shed requests (seconds).
    request_timeout:
        Per-read socket budget: a client stalling this long mid-request
        (headers or body) is answered 408.
    idle_timeout:
        How long a keep-alive connection may sit idle between requests
        before being dropped silently.  ``None`` inherits
        ``request_timeout``.
    """

    def __init__(
        self,
        service: AllocationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 1024,
        retry_floor: float = 0.1,
        request_timeout: float | None = 30.0,
        idle_timeout: float | None = None,
        quiet: bool = True,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.max_pending = max_pending
        self.retry_floor = retry_floor
        self.request_timeout = request_timeout
        self.idle_timeout = request_timeout if idle_timeout is None else idle_timeout
        self.quiet = quiet
        self.view: PublishedView | None = None
        self._intake: queue.Queue = queue.Queue()
        self.admitted = 0
        self.shed = 0
        self._closing = False
        self._solver_done = False
        self._started = False
        self._shutdown_lock = threading.Lock()
        self._view_ready = threading.Event()
        self._loop_ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._solver_thread = threading.Thread(target=self._solver_loop, name="amf-aio-solver", daemon=True)
        self._loop_thread = threading.Thread(target=self._run_loop, name="amf-aio-loop", daemon=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server not started")
        return self._port

    def start(self) -> "AioServiceServer":
        if self._started:
            return self
        self._started = True
        self._solver_thread.start()
        self._view_ready.wait(timeout=30.0)
        if self.view is None:
            raise RuntimeError("solver thread failed to publish the initial view")
        self._loop_thread.start()
        self._loop_ready.wait(timeout=30.0)
        if self._port is None:
            raise RuntimeError("event loop failed to bind the listening socket")
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain writes, close the service, stop serving."""
        with self._shutdown_lock:
            if not self._started or self._closing:
                return
            self._closing = True
        self._intake.put(_STOP)
        self._solver_thread.join(timeout=30.0)
        # items that raced past the _closing check after the solver's
        # final drain: answer them 503 while the loop still runs
        self._drain_closed()
        self.service.close()
        if self._loop is not None and self._loop.is_running():
            asyncio.run_coroutine_threadsafe(self._shutdown_async(), self._loop)
        self._loop_thread.join(timeout=30.0)

    def __enter__(self) -> "AioServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_conn, self.host, self._requested_port)
            )
            self._port = self._server.sockets[0].getsockname()[1]
            self._loop_ready.set()
            loop.run_forever()
        finally:
            self._loop_ready.set()  # unblock start() on bind failure too
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        if tasks:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        asyncio.get_running_loop().stop()

    # ------------------------------------------------------------------
    # Solver thread: the only toucher of the AllocationService
    # ------------------------------------------------------------------
    def _solver_loop(self) -> None:
        try:
            self._publish()
        finally:
            self._view_ready.set()
        idle = max(0.002, (self.service.queue.max_delay or 0.01) / 2)
        while True:
            wait = self.service.seconds_until_due()
            timeout = idle if wait is None else max(0.0, min(wait, idle))
            batch: list[_Work] = []
            stop = False
            try:
                first = self._intake.get(timeout=timeout)
                batch.append(first)
                while True:
                    batch.append(self._intake.get_nowait())
            except queue.Empty:
                pass
            if any(item is _STOP for item in batch):
                stop = True
                batch = [item for item in batch if item is not _STOP]
            results = [(item, self._process(item)) for item in batch]
            flushed = 0
            try:
                flushed = self.service.flush(force=stop)
            except ServiceClosed:
                pass
            except Exception:  # noqa: BLE001 - the flusher must survive
                instruments.record_flush_error()
                if not self.quiet:
                    traceback.print_exc()
            view = self.view
            if (
                batch
                or flushed
                or view is None
                or view.version != self.service.state.version
                or view.pending != self.service.pending()
            ):
                try:
                    self._publish()
                except Exception:  # noqa: BLE001 - reads outlive a bad publish
                    if not self.quiet:
                        traceback.print_exc()
            # resolve only after publishing: a client that sees its 202
            # can immediately read a view that reflects the write
            for item, result in results:
                self._resolve(item, result)
            if stop:
                self._solver_done = True
                self._drain_closed()
                return

    def _process(self, item: _Work) -> tuple[int, dict[str, Any]]:
        service = self.service
        try:
            if item.kind == "submit":
                events, names, status_payload = item.payload
                pending = service.submit_all(events)
                payload = {"pending_events": pending}
                if names is not None:
                    payload["queued_jobs"] = names
                payload.update(status_payload)
                return 202, payload
            if item.kind == "delete":
                name = item.payload
                if not service.has_job(name):
                    return 404, error_envelope("not_found", f"unknown job {name!r}")
                pending = service.submit(JobDeparted(name))
                return 202, {"pending_events": pending}
            if item.kind == "allocate":
                events, names = item.payload
                if events:
                    service.submit_all(events)
                served = service.allocation(fresh=True)
                payload = allocation_payload(served)
                if names is not None:
                    payload["queued_jobs"] = names
                return 200, payload
            return 500, error_envelope("internal", f"unknown work kind {item.kind!r}")
        except ServiceClosed as exc:
            return 503, error_envelope("unavailable", str(exc))
        except ResourceMismatchError as exc:
            return 400, error_envelope("resource_mismatch", str(exc))
        except UnknownResourceError as exc:
            return 400, error_envelope("unknown_resource", str(exc))
        except (SchemaError, StateError, ValueError) as exc:
            return 400, error_envelope("bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            return 500, error_envelope("internal", f"{type(exc).__name__}: {exc}")

    def _resolve(self, item: _Work, result: tuple[int, dict[str, Any]]) -> None:
        def _set() -> None:
            if not item.future.done():
                item.future.set_result(result)

        try:
            item.loop.call_soon_threadsafe(_set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _drain_closed(self) -> None:
        """503 anything still sitting in the intake after shutdown."""
        while True:
            try:
                item = self._intake.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            self._resolve(item, (503, error_envelope("unavailable", "service is shutting down")))

    def _publish(self) -> None:
        service = self.service
        served = service.allocation(fresh=False)
        stats = service.stats()
        stats["edge"] = "aio"
        stats["admission"] = self.admission_stats()
        import repro

        health = {
            "status": "ok",
            "version": repro.__version__,
            "jobs": stats["state"]["jobs"],
            "sites": stats["state"]["sites"],
            "pending_events": stats["state"]["pending_events"],
        }
        p50_ms = stats["solver"]["p50_ms"]
        self.view = PublishedView(
            version=served.version,
            fingerprint=served.fingerprint,
            pending=stats["state"]["pending_events"],
            solve_p50_s=None if p50_ms is None else p50_ms / 1e3,
            health=health,
            stats=stats,
            allocate=allocation_payload(served),
            pending_names=tuple(service.pending_job_names()),
        )

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def admission_stats(self) -> dict[str, Any]:
        return {
            "max_pending": self.max_pending,
            "intake_depth": self._intake.qsize(),
            "admitted": self.admitted,
            "shed": self.shed,
            "retry_floor": self.retry_floor,
        }

    def _retry_after(self) -> float:
        """Seconds until a shed client plausibly gets through.

        The backlog must drain through the solver: ``ceil(backlog /
        max_batch)`` coalesced batches, each costing roughly the published
        solve p50 (the coalescing delay when no solve has happened yet).
        """
        view = self.view
        p50 = None if view is None else view.solve_p50_s
        if p50 is None or p50 <= 0.0:
            p50 = max(self.service.queue.max_delay, 1e-3)
        backlog = self._intake.qsize() + (view.pending if view is not None else 0) + 1
        batches = max(1, math.ceil(backlog / self.service.queue.max_batch))
        return max(self.retry_floor, batches * p50)

    def _admit(self, kind: str, payload: Any) -> asyncio.Future | float:
        """Try to enqueue work; returns a future, or the Retry-After on shed."""
        if self._intake.qsize() >= self.max_pending:
            retry = self._retry_after()
            self.shed += 1
            instruments.record_admission_shed(retry)
            return retry
        loop = asyncio.get_running_loop()
        work = _Work(kind, payload, loop.create_future(), loop)
        self._intake.put(work)
        self.admitted += 1
        instruments.record_admission(depth=self._intake.qsize())
        if self._solver_done:
            # raced past the closing check after the solver's final drain
            self._drain_closed()
        return work.future

    # ------------------------------------------------------------------
    # HTTP plumbing (event loop)
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await self._timed(reader.readline(), idle=True)
                except asyncio.TimeoutError:
                    break  # idle keep-alive expired: drop silently
                if not line or line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = line.decode("latin-1").split(None, 2)
                except ValueError:
                    writer.write(
                        _render(
                            400,
                            json.dumps(error_envelope("bad_request", "malformed request line")).encode(),
                            close=True,
                        )
                    )
                    break
                t0 = time.perf_counter()
                try:
                    headers = await self._read_headers(reader)
                    body = await self._read_body(reader, headers)
                except _PayloadTooLarge as exc:
                    self._respond(writer, 413, error_envelope("payload_too_large", str(exc)), close=True, t0=t0)
                    break
                except _HeadersTooLarge as exc:
                    self._respond(writer, 431, error_envelope("headers_too_large", str(exc)), close=True, t0=t0)
                    break
                except (_BadRequest, ValueError) as exc:
                    # a malformed Content-Length, or a header line over the
                    # StreamReader's line-length limit
                    self._respond(writer, 400, error_envelope("bad_request", str(exc)), close=True, t0=t0)
                    break
                except (asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
                    self._respond(
                        writer,
                        408,
                        error_envelope("request_timeout", f"timed out reading request: {exc}"),
                        close=True,
                        t0=t0,
                    )
                    break
                close = headers.get("connection", "").lower() == "close"
                raw = await self._dispatch(method.upper(), target, body, close=close, t0=t0)
                writer.write(raw)
                await writer.drain()
                if close or raw.startswith(b"HTTP/1.1 4") or raw.startswith(b"HTTP/1.1 5"):
                    # error responses mirror the threaded edge's
                    # close-on-error for unsynchronizable streams; cheap
                    # prefix check keeps the fast path allocation-free
                    if close or b"Connection: close" in raw[:512]:
                        break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _timed(self, coro, *, idle: bool = False):
        timeout = self.idle_timeout if idle else self.request_timeout
        if timeout is None:
            return await coro
        return await asyncio.wait_for(coro, timeout=timeout)

    async def _read_headers(self, reader: asyncio.StreamReader) -> dict[str, str]:
        headers: dict[str, str] = {}
        lines = 0
        while True:
            line = await self._timed(reader.readline())
            if line in (b"\r\n", b"\n", b""):
                return headers
            lines += 1
            if lines > _MAX_HEADERS:
                raise _HeadersTooLarge(f"more than {_MAX_HEADERS} header lines")
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()

    async def _read_body(self, reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest(
                f"malformed Content-Length {headers.get('content-length')!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
        if length <= 0:
            return b""
        return await self._timed(reader.readexactly(length))

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        close: bool = False,
        extra: Sequence[tuple[str, str]] = (),
        t0: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        raw = _render(status, body, extra=extra, close=close)
        self._count(status, t0)
        writer.write(raw)

    @staticmethod
    def _count(status: int, t0: float | None) -> None:
        if not REGISTRY.enabled:
            return
        instruments.SERVICE_REQUESTS.inc()
        if status >= 400:
            instruments.SERVICE_ERRORS.inc()
        if t0 is not None:
            instruments.SERVICE_REQUEST_SECONDS.observe(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, target: str) -> tuple[str, dict[str, str], str | None, bool]:
        parts = urlsplit(target)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))
        path = parts.path
        if path == "/v1" or path.startswith("/v1/"):
            return path[3:] or "/", query, None, True
        if path in _ALIASED or path.startswith("/jobs/"):
            return path, query, f"/v1{path}", False
        return path, query, None, False

    async def _dispatch(self, method: str, target: str, body: bytes, *, close: bool, t0: float) -> bytes:
        route, query, deprecation, versioned = self._route(target)
        extra: list[tuple[str, str]] = []
        if deprecation:
            extra.append(("Deprecation", "true"))
            extra.append(("Link", f'<{deprecation}>; rel="successor-version"'))
        try:
            if method == "GET":
                return await self._get(route, target, query, extra, close, t0, versioned=versioned)
            if method == "POST":
                return await self._post(route, target, body, extra, close, t0)
            if method == "DELETE":
                return await self._delete(route, target, extra, close, t0)
            return self._error(404, "not_found", f"unknown path {target!r}", extra, close, t0)
        except SchemaError as exc:
            return self._error(400, "bad_request", str(exc), extra, close, t0)
        except ServiceClosed as exc:
            return self._error(503, "unavailable", str(exc), extra, close or True, t0)
        except json.JSONDecodeError as exc:
            return self._error(400, "bad_request", str(exc), extra, close, t0)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            return self._error(500, "internal", f"{type(exc).__name__}: {exc}", extra, close, t0)

    def _error(
        self,
        status: int,
        code: str,
        message: str,
        extra: Sequence[tuple[str, str]],
        close: bool,
        t0: float,
        detail: Any = None,
    ) -> bytes:
        self._count(status, t0)
        body = json.dumps(error_envelope(code, message, detail)).encode()
        return _render(status, body, extra=extra, close=close)

    def _ok(
        self,
        payload: dict[str, Any],
        extra: Sequence[tuple[str, str]],
        close: bool,
        t0: float,
        *,
        status: int = 200,
    ) -> bytes:
        self._count(status, t0)
        return _render(status, json.dumps(payload).encode(), extra=extra, close=close)

    def _view_or_503(self) -> PublishedView:
        view = self.view
        if view is None or (self._closing and self._solver_done):
            raise ServiceClosed("service is shutting down")
        return view

    async def _get(
        self,
        route: str,
        target: str,
        query: dict[str, str],
        extra: list[tuple[str, str]],
        close: bool,
        t0: float,
        *,
        versioned: bool = False,
    ) -> bytes:
        if self._closing:
            raise ServiceClosed("service is shutting down")
        if route == "/health":
            view = self._view_or_503()
            if not extra and not close:
                self._count(200, t0)
                return view.health_resp
            self._count(200, t0)
            return _render(200, view.health_json, extra=extra, close=close)
        if route == "/stats":
            view = self._view_or_503()
            if not extra and not close:
                self._count(200, t0)
                return view.stats_resp
            self._count(200, t0)
            return _render(200, view.stats_json, extra=extra, close=close)
        if route == "/allocate":
            if parse_fresh(query, default=False):
                return await self._roundtrip("allocate", ((), None), extra, close, t0)
            view = self._view_or_503()
            if not extra and not close:
                self._count(200, t0)
                return view.allocate_resp
            self._count(200, t0)
            return _render(200, view.allocate_json, extra=extra, close=close)
        if route == "/metrics":
            if REGISTRY.enabled:
                instruments.ADMISSION_QUEUE_DEPTH.set(self._intake.qsize())
            self._count(200, t0)
            return _render(
                200,
                REGISTRY.render_prometheus().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
                extra=extra,
                close=close,
            )
        if route == "/traces":
            self._count(200, t0)
            return _render(200, json.dumps(TRACER.to_chrome()).encode(), extra=extra, close=close)
        if route == "/spec" and versioned:
            return self._ok(API_SPEC, extra, close, t0)
        if route == "/jobs":
            q = JobsQuery.from_query(query)
            view = self._view_or_503()
            # decode a private copy: jobs_listing_payload mutates it
            payload = json.loads(view.allocate_json)
            return self._ok(jobs_listing_payload(payload, list(view.pending_names), q), extra, close, t0)
        return self._error(404, "not_found", f"unknown path {target!r}", extra, close, t0)

    async def _post(
        self,
        route: str,
        target: str,
        body: bytes,
        extra: list[tuple[str, str]],
        close: bool,
        t0: float,
    ) -> bytes:
        if self._closing:
            raise ServiceClosed("service is shutting down")
        data: dict[str, Any] = {}
        if body:
            data = json.loads(body.decode())
            if not isinstance(data, dict):
                raise SchemaError("request body must be a JSON object")
        try:
            if route == "/allocate":
                events, names = self._events_from(AllocateRequest.from_json(data))
                return await self._roundtrip("allocate", (events, names), extra, close, t0)
            if route == "/jobs":
                events, names = self._events_from(AllocateRequest.from_json(data, require_jobs=True))
                return await self._roundtrip("submit", (events, names, {}), extra, close, t0)
            if route == "/capacity":
                spec = CapacitySpec.from_json(data)
                event = CapacityChanged(spec.site, spec.capacity)
                return await self._roundtrip("submit", ((event,), None, {}), extra, close, t0)
        except (StateError, ValueError) as exc:
            # schema/model validation happens on the loop, before admission
            if isinstance(exc, SchemaError):
                raise
            if isinstance(exc, ResourceMismatchError):
                return self._error(400, "resource_mismatch", str(exc), extra, close, t0)
            if isinstance(exc, UnknownResourceError):
                return self._error(400, "unknown_resource", str(exc), extra, close, t0)
            return self._error(400, "bad_request", str(exc), extra, close, t0)
        return self._error(404, "not_found", f"unknown path {target!r}", extra, close, t0)

    async def _delete(
        self,
        route: str,
        target: str,
        extra: list[tuple[str, str]],
        close: bool,
        t0: float,
    ) -> bytes:
        if self._closing:
            raise ServiceClosed("service is shutting down")
        prefix = "/jobs/"
        if route.startswith(prefix) and len(route) > len(prefix):
            name = unquote(route[len(prefix):])
            return await self._roundtrip("delete", name, extra, close, t0)
        return self._error(404, "not_found", f"unknown path {target!r}", extra, close, t0)

    @staticmethod
    def _events_from(request: AllocateRequest) -> tuple[tuple[ClusterEvent, ...], list[str]]:
        jobs = [spec.to_job() for spec in request.jobs]
        return tuple(JobArrived(job) for job in jobs), [job.name for job in jobs]

    async def _roundtrip(
        self,
        kind: str,
        payload: Any,
        extra: Sequence[tuple[str, str]],
        close: bool,
        t0: float,
    ) -> bytes:
        admitted = self._admit(kind, payload)
        if not isinstance(admitted, asyncio.Future):
            retry = admitted
            return self._error(
                429,
                "too_many_requests",
                "solver intake queue is full; retry later",
                [*extra, ("Retry-After", str(max(1, math.ceil(retry))))],
                close,
                t0,
                detail={"retry_after_seconds": retry},
            )
        status, result = await admitted
        if status >= 400 and "error" in result:
            err = result["error"]
            return self._error(status, err["code"], err["message"], extra, close, t0, detail=err.get("detail"))
        return self._ok(result, extra, close, t0, status=status)


class _PayloadTooLarge(Exception):
    """Content-Length above :data:`MAX_BODY_BYTES` (mapped to 413)."""


class _HeadersTooLarge(Exception):
    """More than :data:`_MAX_HEADERS` header lines (mapped to 431)."""


class _BadRequest(Exception):
    """A request the parser cannot interpret (mapped to 400)."""


def serve_aio(
    service: AllocationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    max_pending: int = 1024,
    request_timeout: float | None = 30.0,
    idle_timeout: float | None = None,
    quiet: bool = False,
) -> None:
    """Blocking entry point used by ``python -m repro.cli serve --edge aio``.

    ``SIGTERM``/``SIGINT`` trigger the graceful stop: in-flight writes
    drain through the solver, the service closes (journal checkpoint
    included) and the listener shuts down.
    """
    import signal

    stop = threading.Event()
    with AioServiceServer(
        service,
        host,
        port,
        max_pending=max_pending,
        request_timeout=request_timeout,
        idle_timeout=idle_timeout,
        quiet=quiet,
    ) as server:
        print(f"repro-amf asyncio service listening on http://{host}:{server.port}")
        print(
            "endpoints: GET /v1/health /v1/stats /v1/metrics /v1/traces /v1/jobs /v1/spec "
            "/v1/allocate | POST /v1/allocate /v1/jobs /v1/capacity | DELETE /v1/jobs/<name> "
            f"(writes shed with 429 beyond {max_pending} pending)"
        )

        def _graceful(signum, frame):  # noqa: ARG001 - signal API
            stop.set()

        try:
            signal.signal(signal.SIGTERM, _graceful)
            signal.signal(signal.SIGINT, _graceful)
        except ValueError:  # pragma: no cover - not the main thread
            pass
        try:
            stop.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    print("\nshutting down: writes drained, service closed")
