"""Warm-started incremental AMF: the service's primary solver.

A long-lived daemon re-solves AMF on clusters that differ from the previous
one by a handful of deltas, so the bottleneck structure — which job sets
hit which site sets — barely moves between solves.
:class:`IncrementalAmfSolver` exploits that by threading a persistent
:class:`~repro.core.amf.CutBasis` through every solve: cuts discovered once
are replayed (revalidated against the current capacities) instead of
rediscovered through extra max-flow feasibility probes.

The solver is a plain ``Cluster -> Allocation`` callable, so it drops into
:class:`~repro.core.policies.ResilientPolicy` as the primary of the chain

    incremental AMF -> cold AMF -> per-site max-min -> proportional

which is how the daemon wires it (:mod:`repro.service.daemon`): a failed
warm solve *clears its basis* and degrades to a cold solve, preserving the
degraded-mode guarantee of docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.amf import AmfDiagnostics, CutBasis, solve_amf
from repro.model.cluster import Cluster

__all__ = ["IncrementalStats", "IncrementalAmfSolver"]


@dataclass(slots=True)
class IncrementalStats:
    """Accumulated warm-start effectiveness counters."""

    solves: int = 0
    failures: int = 0  # warm solves that raised (basis was reset)
    feasibility_solves: int = 0
    cuts_generated: int = 0  # cuts still discovered despite warm start
    warm_cuts_seeded: int = 0  # cuts replayed from the basis
    rounds: int = 0
    # parametric-oracle reuse breakdown (all zero on the legacy backend)
    probes_early_accept: int = 0  # probes answered by feasible-dominance
    probes_cut_reject: int = 0  # probes answered by a stored site cut
    probes_warm: int = 0  # flow solves continuing from existing flow
    probes_cold: int = 0  # flow solves starting from zero flow
    probe_rollbacks: int = 0  # probes that cancelled flow before solving

    @property
    def probes_reused(self) -> int:
        """Probes that avoided a cold flow solve (the warm-reuse headline)."""
        return self.probes_early_accept + self.probes_cut_reject + self.probes_warm

    def merge(self, diag: AmfDiagnostics) -> None:
        self.feasibility_solves += diag.feasibility_solves
        self.cuts_generated += diag.cuts_generated
        self.warm_cuts_seeded += diag.warm_cuts_seeded
        self.rounds += diag.rounds
        self.probes_early_accept += diag.probes_early_accept
        self.probes_cut_reject += diag.probes_cut_reject
        self.probes_warm += diag.probes_warm
        self.probes_cold += diag.probes_cold
        self.probe_rollbacks += diag.probe_rollbacks


class IncrementalAmfSolver:
    """AMF with a cutting-plane pool persisted across solves.

    Parameters
    ----------
    max_cuts:
        LRU bound on the persistent basis (see :class:`CutBasis`).
    persistent:
        ``False`` clears the basis before every solve, turning this into a
        cold solver with the *identical* pipeline (validation, diagnostics,
        allocation plumbing) — the control arm for warm-vs-cold A/B
        measurements such as experiment X9.
    oracle:
        Feasibility backend handed to :func:`solve_amf`; the default
        ``"parametric"`` threads the persistent basis into the oracle's
        cut-screening pool so stored cuts answer probes without a flow solve.
    """

    def __init__(self, max_cuts: int = 64, *, persistent: bool = True, oracle: str = "parametric"):
        self.basis = CutBasis(max_cuts=max_cuts)
        self.persistent = persistent
        self.oracle = oracle
        self.stats = IncrementalStats()
        self.__name__ = "amf-incremental" if persistent else "amf-cold"

    def __call__(self, cluster: Cluster) -> Allocation:
        if not self.persistent:
            self.basis.clear()
        diag = AmfDiagnostics()
        self.stats.solves += 1
        try:
            alloc = solve_amf(cluster, diagnostics=diag, basis=self.basis, oracle=self.oracle)
        except Exception:
            # A numerically broken basis must not poison the next attempt;
            # drop it and let the fallback chain take this solve cold.
            self.basis.clear()
            self.stats.failures += 1
            self.stats.merge(diag)
            raise
        self.stats.merge(diag)
        return alloc.with_matrix(alloc.matrix, policy=self.__name__)
