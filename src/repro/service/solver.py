"""Warm-started incremental AMF: the service's primary solver.

A long-lived daemon re-solves AMF on clusters that differ from the previous
one by a handful of deltas, so the bottleneck structure — which job sets
hit which site sets — barely moves between solves.
:class:`IncrementalAmfSolver` exploits that by threading a persistent
:class:`~repro.core.amf.CutBasis` through every solve: cuts discovered once
are replayed (revalidated against the current capacities) instead of
rediscovered through extra max-flow feasibility probes.

``sharded=True`` layers the PR 5 decomposition on top: the cluster is split
into connected components (:mod:`repro.core.sharding`), each component gets
its *own* warm basis (:class:`~repro.core.sharding.ShardBasisPool`) and its
solved sub-matrix is cached by sub-cluster fingerprint — so a delta that
touches one component re-solves that component alone and replays every
other shard's matrix verbatim.  This is the "delta→shard routing" the
service relies on: a shard's fingerprint changes iff the delta touched it.

The solver is a plain ``Cluster -> Allocation`` callable, so it drops into
:class:`~repro.core.policies.ResilientPolicy` as the primary of the chain

    incremental AMF -> cold AMF -> per-site max-min -> proportional

which is how the daemon wires it (:mod:`repro.service.daemon`): a failed
warm solve *clears its basis* (and, sharded, the whole shard pool and
matrix cache) and degrades to a cold solve, preserving the degraded-mode
guarantee of docs/robustness.md.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.core.allocation import Allocation
from repro.core.amf import AmfDiagnostics, CutBasis, solve_amf
from repro.core.sharding import (
    ShardBasisPool,
    decompose,
    merge_diagnostics,
    solve_shards,
    stitch,
)
from repro.model.cluster import Cluster
from repro.obs.instruments import (
    record_amf,
    record_shard_cache,
    record_shard_decomposition,
    record_shard_solve,
)
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER, span

__all__ = ["IncrementalStats", "IncrementalAmfSolver"]


@dataclass(slots=True)
class IncrementalStats:
    """Accumulated warm-start effectiveness counters."""

    solves: int = 0
    failures: int = 0  # warm solves that raised (basis was reset)
    feasibility_solves: int = 0
    cuts_generated: int = 0  # cuts still discovered despite warm start
    warm_cuts_seeded: int = 0  # cuts replayed from the basis
    rounds: int = 0
    # parametric-oracle reuse breakdown (all zero on the legacy backend)
    probes_early_accept: int = 0  # probes answered by feasible-dominance
    probes_cut_reject: int = 0  # probes answered by a stored site cut
    probes_warm: int = 0  # flow solves continuing from existing flow
    probes_cold: int = 0  # flow solves starting from zero flow
    probe_rollbacks: int = 0  # probes that cancelled flow before solving
    # GGT one-shot sweep (all zero unless oracle="ggt")
    ggt_sweeps: int = 0  # parametric sweeps run
    ggt_sweep_flows: int = 0  # flow solves paid inside sweeps
    ggt_breakpoints: int = 0  # leximin breakpoints recovered by sweeps
    ggt_flows_avoided: int = 0  # post-sweep probes answered without a flow
    # shard decomposition (all zero when sharded=False)
    shard_solves: int = 0  # components actually solved (cache misses)
    shard_cache_hits: int = 0  # components replayed from the matrix cache
    shard_cache_misses: int = 0
    last_shards: int = 0  # components in the most recent decomposition
    # AMRF multi-resource engine (all zero on scalar / reduced solves)
    amrf_rounds: int = 0
    amrf_lps: int = 0
    amrf_probes: int = 0
    amrf_probes_skipped: int = 0
    amrf_basis_rows_reused: int = 0
    amrf_table_hits: int = 0

    @property
    def probes_reused(self) -> int:
        """Probes that avoided a cold flow solve (the warm-reuse headline)."""
        return self.probes_early_accept + self.probes_cut_reject + self.probes_warm

    def merge(self, diag: AmfDiagnostics) -> None:
        self.feasibility_solves += diag.feasibility_solves
        self.cuts_generated += diag.cuts_generated
        self.warm_cuts_seeded += diag.warm_cuts_seeded
        self.rounds += diag.rounds
        self.probes_early_accept += diag.probes_early_accept
        self.probes_cut_reject += diag.probes_cut_reject
        self.probes_warm += diag.probes_warm
        self.probes_cold += diag.probes_cold
        self.probe_rollbacks += diag.probe_rollbacks
        self.ggt_sweeps += diag.ggt_sweeps
        self.ggt_sweep_flows += diag.ggt_sweep_flows
        self.ggt_breakpoints += diag.ggt_breakpoints
        self.ggt_flows_avoided += diag.ggt_flows_avoided
        self.amrf_rounds += diag.amrf_rounds
        self.amrf_lps += diag.amrf_lps
        self.amrf_probes += diag.amrf_probes
        self.amrf_probes_skipped += diag.amrf_probes_skipped
        self.amrf_basis_rows_reused += diag.amrf_basis_rows_reused
        self.amrf_table_hits += diag.amrf_table_hits


class IncrementalAmfSolver:
    """AMF with a cutting-plane pool persisted across solves.

    Parameters
    ----------
    max_cuts:
        LRU bound on the persistent basis (see :class:`CutBasis`), and on
        each per-shard basis in sharded mode.
    persistent:
        ``False`` clears all warm state before every solve, turning this
        into a cold solver with the *identical* pipeline (validation,
        diagnostics, allocation plumbing) — the control arm for
        warm-vs-cold A/B measurements such as experiment X9.
    oracle:
        Feasibility backend handed to :func:`solve_amf`; the default
        ``"parametric"`` threads the persistent basis into the oracle's
        cut-screening pool so stored cuts answer probes without a flow solve.
        ``"ggt"`` layers a one-shot GGT breakpoint sweep on top of the
        parametric oracle (see docs/performance.md, layer 5): best when the
        workload has many distinct leximin levels per solve.
    sharded:
        Solve connected components independently with per-shard bases and a
        per-shard matrix cache (see module docstring).  Off by default — the
        monolithic path is the reference; the daemon opts in.
    workers:
        Fork-pool fan-out for shard solves (``None`` = serial; see
        :func:`repro.analysis.parallel.parallel_map`).  Results are
        bit-identical under any worker count.
    shard_cache_size:
        LRU bound on the per-shard matrix cache (entries are sub-cluster
        fingerprints, i.e. one per distinct component state seen).
    shard_backend:
        Where shard solves run: any object with a
        ``solve_shards(shards) -> list[ShardResult]`` method — in practice
        a started :class:`repro.dist.WorkerPool`, which proxies each solve
        to a remote worker process holding that shard's warm basis.
        ``None`` (the default) solves in-process via
        :func:`repro.core.sharding.solve_shards`.  The allocation is
        bit-identical either way (each shard solve is the same pure
        function of its sub-cluster and seed cuts); a backend that raises
        (e.g. :class:`repro.dist.DistError` when the whole pool is dead)
        degrades through the resilient chain like any other solver fault.
    """

    def __init__(
        self,
        max_cuts: int = 64,
        *,
        persistent: bool = True,
        oracle: str = "parametric",
        sharded: bool = False,
        workers: int | None = None,
        shard_cache_size: int = 256,
        shard_backend=None,
    ):
        require(shard_cache_size >= 1, "shard_cache_size must be at least 1")
        require(
            shard_backend is None or sharded,
            "shard_backend requires sharded=True (there is nothing to distribute otherwise)",
        )
        self.basis = CutBasis(max_cuts=max_cuts)
        self.persistent = persistent
        self.oracle = oracle
        self.sharded = sharded
        self.workers = workers
        self.shard_cache_size = shard_cache_size
        self.shard_backend = shard_backend
        self.bases = ShardBasisPool(max_cuts=max_cuts)
        self._shard_matrices: OrderedDict[str, np.ndarray] = OrderedDict()
        self.stats = IncrementalStats()
        if shard_backend is not None:
            self.__name__ = "amf-dist"
        else:
            self.__name__ = "amf-incremental" if persistent else "amf-cold"

    @property
    def shard_cache_entries(self) -> int:
        return len(self._shard_matrices)

    def _clear_warm_state(self) -> None:
        self.basis.clear()
        self.bases.clear()
        self._shard_matrices.clear()

    def __call__(self, cluster: Cluster) -> Allocation:
        if not self.persistent:
            self._clear_warm_state()
        diag = AmfDiagnostics()
        self.stats.solves += 1
        try:
            if self.sharded:
                alloc = self._solve_sharded(cluster, diag)
            else:
                alloc = solve_amf(cluster, diagnostics=diag, basis=self.basis, oracle=self.oracle)
        except Exception:
            # A numerically broken basis must not poison the next attempt;
            # drop it and let the fallback chain take this solve cold.
            self._clear_warm_state()
            self.stats.failures += 1
            self.stats.merge(diag)
            raise
        self.stats.merge(diag)
        return alloc.with_matrix(alloc.matrix, policy=self.__name__)

    def _solve_sharded(self, cluster: Cluster, diag: AmfDiagnostics) -> Allocation:
        shards = decompose(cluster)
        record_shard_decomposition(len(shards))
        self.stats.last_shards = len(shards)
        observing = REGISTRY.enabled or TRACER.enabled
        before = dataclasses.replace(diag) if observing else None
        # Multi-resource shards are only separable *given* the federation's
        # resource totals (the dominant-share denominators), so the totals
        # ride along to every shard solve — and into the cache key, because
        # the same sub-cluster under different global totals solves to a
        # different matrix.
        totals = cluster.resource_totals if cluster.is_multiresource else None
        totals_tag = (
            ""
            if totals is None
            else "|T:" + ",".join(f"{res}={amount.hex()}" for res, amount in sorted(totals.items()))
        )
        pieces: list[tuple] = []
        with span(
            "amf.solve", variant="sharded", jobs=cluster.n_jobs, sites=cluster.n_sites, shards=len(shards)
        ):
            misses = []
            hits = 0
            for sh in shards:
                if sh.n_jobs == 0:
                    continue
                key = sh.cluster.fingerprint() + totals_tag
                cached = self._shard_matrices.get(key)
                if cached is not None:
                    self._shard_matrices.move_to_end(key)
                    hits += 1
                    pieces.append((sh, cached))
                else:
                    misses.append(sh)
            self.stats.shard_cache_hits += hits
            self.stats.shard_cache_misses += len(misses)
            record_shard_cache(hits=hits, misses=len(misses))
            if self.shard_backend is not None:
                results = self.shard_backend.solve_shards(misses, resource_totals=totals)
            else:
                results = solve_shards(
                    misses,
                    bases=self.bases,
                    oracle=self.oracle,
                    workers=self.workers,
                    resource_totals=totals,
                )
            for res in results:
                merge_diagnostics(diag, res.diagnostics)
                record_shard_solve(res.shard.n_jobs, res.seconds)
                self.stats.shard_solves += 1
                self._shard_matrices[res.shard.cluster.fingerprint() + totals_tag] = res.matrix
                while len(self._shard_matrices) > self.shard_cache_size:
                    self._shard_matrices.popitem(last=False)
                pieces.append((res.shard, res.matrix))
        if observing:
            record_amf(diag, since=before)
        matrix = stitch(cluster, pieces)
        return Allocation(cluster, matrix, policy="amf")
