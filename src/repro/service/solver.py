"""Warm-started incremental AMF: the service's primary solver.

A long-lived daemon re-solves AMF on clusters that differ from the previous
one by a handful of deltas, so the bottleneck structure — which job sets
hit which site sets — barely moves between solves.
:class:`IncrementalAmfSolver` exploits that by threading a persistent
:class:`~repro.core.amf.CutBasis` through every solve: cuts discovered once
are replayed (revalidated against the current capacities) instead of
rediscovered through extra max-flow feasibility probes.

The solver is a plain ``Cluster -> Allocation`` callable, so it drops into
:class:`~repro.core.policies.ResilientPolicy` as the primary of the chain

    incremental AMF -> cold AMF -> per-site max-min -> proportional

which is how the daemon wires it (:mod:`repro.service.daemon`): a failed
warm solve *clears its basis* and degrades to a cold solve, preserving the
degraded-mode guarantee of docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.amf import AmfDiagnostics, CutBasis, solve_amf
from repro.model.cluster import Cluster

__all__ = ["IncrementalStats", "IncrementalAmfSolver"]


@dataclass(slots=True)
class IncrementalStats:
    """Accumulated warm-start effectiveness counters."""

    solves: int = 0
    failures: int = 0  # warm solves that raised (basis was reset)
    feasibility_solves: int = 0
    cuts_generated: int = 0  # cuts still discovered despite warm start
    warm_cuts_seeded: int = 0  # cuts replayed from the basis
    rounds: int = 0

    def merge(self, diag: AmfDiagnostics) -> None:
        self.feasibility_solves += diag.feasibility_solves
        self.cuts_generated += diag.cuts_generated
        self.warm_cuts_seeded += diag.warm_cuts_seeded
        self.rounds += diag.rounds


class IncrementalAmfSolver:
    """AMF with a cutting-plane pool persisted across solves.

    Parameters
    ----------
    max_cuts:
        LRU bound on the persistent basis (see :class:`CutBasis`).
    persistent:
        ``False`` clears the basis before every solve, turning this into a
        cold solver with the *identical* pipeline (validation, diagnostics,
        allocation plumbing) — the control arm for warm-vs-cold A/B
        measurements such as experiment X9.
    """

    def __init__(self, max_cuts: int = 64, *, persistent: bool = True):
        self.basis = CutBasis(max_cuts=max_cuts)
        self.persistent = persistent
        self.stats = IncrementalStats()
        self.__name__ = "amf-incremental" if persistent else "amf-cold"

    def __call__(self, cluster: Cluster) -> Allocation:
        if not self.persistent:
            self.basis.clear()
        diag = AmfDiagnostics()
        self.stats.solves += 1
        try:
            alloc = solve_amf(cluster, diagnostics=diag, basis=self.basis)
        except Exception:
            # A numerically broken basis must not poison the next attempt;
            # drop it and let the fallback chain take this solve cold.
            self.basis.clear()
            self.stats.failures += 1
            self.stats.merge(diag)
            raise
        self.stats.merge(diag)
        return alloc.with_matrix(alloc.matrix, policy=self.__name__)
