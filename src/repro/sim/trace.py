"""Event traces: what happened when, for debugging and for the examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

EventKind = Literal["arrival", "site-done", "completion", "stall"]


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One simulator event.

    ``kind``:

    * ``arrival`` — a job entered the system,
    * ``site-done`` — a job exhausted its work at one site (support shrinks),
    * ``completion`` — a job finished all its work,
    * ``stall`` — no allocated edge is making progress and no arrival is
      pending (the simulator stops and marks survivors unfinished).
    """

    time: float
    kind: EventKind
    job: str
    site: str | None = None

    def __str__(self) -> str:
        where = f" @ {self.site}" if self.site else ""
        return f"[t={self.time:10.4f}] {self.kind:10s} {self.job}{where}"


@dataclass(slots=True)
class Trace:
    """Append-only event log with a bounded memory footprint."""

    max_events: int | None = None
    events: list[SimEvent] = field(default_factory=list)
    dropped: int = 0

    def record(self, event: SimEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> list[SimEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self, limit: int = 50) -> str:
        lines = [str(e) for e in self.events[:limit]]
        extra = len(self.events) - limit + self.dropped
        if extra > 0:
            lines.append(f"... ({extra} more events)")
        return "\n".join(lines)
