"""Event traces: what happened when, for debugging and for the examples.

Two kinds of events live here:

* :class:`SimEvent` — events the simulator *emits* (arrivals, completions,
  and since the fault-tolerance subsystem also failures, re-queues, ...);
* :class:`FaultEvent` and its subclasses — infrastructure events fed
  *into* :class:`~repro.sim.engine.FluidSimulator` via its ``faults``
  argument: a site failing (fully or degraded), recovering, or changing
  nominal capacity.  :mod:`repro.workload.failures` generates seeded
  MTBF/MTTR traces of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro._util import require

EventKind = Literal[
    "arrival",
    "site-done",
    "completion",
    "stall",
    "site-failure",
    "site-recovery",
    "capacity-change",
    "requeue",
    "migrate",
    "work-lost",
]


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One simulator event.

    ``kind``:

    * ``arrival`` — a job entered the system,
    * ``site-done`` — a job exhausted its work at one site (support shrinks),
    * ``completion`` — a job finished all its work,
    * ``stall`` — no allocated edge is making progress and no arrival is
      pending (the simulator stops and marks survivors unfinished),
    * ``site-failure`` / ``site-recovery`` / ``capacity-change`` — a fault
      event was applied (``job`` is empty for these site-level events),
    * ``requeue`` — a job's work at a failed site was parked for retry,
    * ``migrate`` — a job's work at a failed site moved to surviving sites,
    * ``work-lost`` — a job's work was abandoned (retry limit exceeded).
    """

    time: float
    kind: EventKind
    job: str
    site: str | None = None

    def __str__(self) -> str:
        who = self.job if self.job else "-"
        where = f" @ {self.site}" if self.site else ""
        return f"[t={self.time:10.4f}] {self.kind:14s} {who}{where}"


# ----------------------------------------------------------------------
# Fault events (inputs to the simulator)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class of scheduled infrastructure events (inputs, not outputs).

    Subclasses are applied by :class:`~repro.sim.engine.FluidSimulator` at
    ``time``; the policy re-solves immediately afterwards.
    """

    time: float
    site: str

    def __post_init__(self) -> None:
        require(self.time >= 0.0, f"fault event time must be non-negative, got {self.time}")
        require(bool(self.site), "fault event must name a site")


@dataclass(frozen=True, slots=True)
class SiteFailure(FaultEvent):
    """Site drops to ``degraded_fraction`` of its nominal capacity.

    ``degraded_fraction = 0`` (default) is a full outage: the site leaves
    the cluster and the remaining work of affected job-site edges is either
    re-queued for retry or migrated to surviving sites (the simulator's
    ``failure_mode``).  A fraction in ``(0, 1)`` is a brownout: the site
    stays up at reduced capacity and no work is displaced.
    """

    degraded_fraction: float = 0.0

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        require(
            0.0 <= self.degraded_fraction < 1.0,
            f"degraded_fraction must be in [0, 1), got {self.degraded_fraction}",
        )


@dataclass(frozen=True, slots=True)
class SiteRecovery(FaultEvent):
    """Site returns to its full nominal capacity; parked work re-queues."""


@dataclass(frozen=True, slots=True)
class CapacityChange(FaultEvent):
    """Site's *nominal* capacity becomes ``capacity`` (must stay positive).

    Models planned resizes (autoscaling, maintenance drain).  Use
    :class:`SiteFailure` for outages — capacity here cannot reach zero.
    """

    capacity: float = 0.0

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        require(self.capacity > 0.0, f"capacity must be positive, got {self.capacity} (use SiteFailure for outages)")


@dataclass(slots=True)
class Trace:
    """Append-only event log with a bounded memory footprint."""

    max_events: int | None = None
    events: list[SimEvent] = field(default_factory=list)
    dropped: int = 0

    def record(self, event: SimEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> list[SimEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self, limit: int = 50) -> str:
        lines = [str(e) for e in self.events[:limit]]
        extra = len(self.events) - limit + self.dropped
        if extra > 0:
            lines.append(f"... ({extra} more events)")
        return "\n".join(lines)
