"""Simulation outputs: per-job records and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class JobRecord:
    """Lifecycle record of one simulated job."""

    name: str
    arrival: float
    completion: float  # inf when the job never finished (stall)
    total_work: float
    isolated_time: float  # completion time if it had every site to itself
    work_lost: float = 0.0  # work abandoned after exhausting failure retries

    @property
    def jct(self) -> float:
        """Job completion time (response time)."""
        return self.completion - self.arrival

    @property
    def slowdown(self) -> float:
        """JCT normalized by the isolated (contention-free) completion time."""
        if self.isolated_time <= 0.0:
            return np.inf
        return self.jct / self.isolated_time

    @property
    def finished(self) -> bool:
        return np.isfinite(self.completion)

    @property
    def degraded(self) -> bool:
        """True when the job finished only by abandoning part of its work."""
        return self.work_lost > 0.0


@dataclass(slots=True)
class SimulationResult:
    """All records from one run plus derived statistics.

    ``utilization_integral`` is the time integral of total allocated rate;
    dividing by (capacity * horizon) gives average utilization.

    The ``work_*`` fields implement the fault-tolerance work ledger: every
    unit of original work ends up exactly once in ``work_completed``
    (credited execution), ``work_lost`` (abandoned after exhausting
    retries) or ``work_remaining`` (unfinished at a stall), so
    ``work_completed + work_lost + work_remaining == total_work`` for every
    failure/recovery trace.  ``work_reexecuted`` counts execution that a
    failure invalidated (it is wasted machine time, not original work, so
    it lives outside the conservation identity:
    ``utilization_integral == work_completed + work_reexecuted``).
    """

    policy: str
    records: list[JobRecord] = field(default_factory=list)
    horizon: float = 0.0
    total_capacity: float = 0.0
    utilization_integral: float = 0.0
    n_events: int = 0
    n_policy_solves: int = 0
    stalled: bool = False
    total_work: float = 0.0
    work_completed: float = 0.0
    work_lost: float = 0.0
    work_reexecuted: float = 0.0
    work_remaining: float = 0.0
    n_failures: int = 0
    n_recoveries: int = 0
    n_capacity_changes: int = 0
    n_requeues: int = 0
    n_migrations: int = 0

    # ------------------------------------------------------------------
    def jcts(self, finished_only: bool = True) -> np.ndarray:
        vals = [r.jct for r in self.records if r.finished or not finished_only]
        return np.asarray(vals, dtype=float)

    def slowdowns(self, finished_only: bool = True) -> np.ndarray:
        vals = [r.slowdown for r in self.records if r.finished or not finished_only]
        return np.asarray(vals, dtype=float)

    @property
    def n_finished(self) -> int:
        return sum(1 for r in self.records if r.finished)

    @property
    def mean_jct(self) -> float:
        j = self.jcts()
        return float(j.mean()) if j.size else np.nan

    @property
    def median_jct(self) -> float:
        j = self.jcts()
        return float(np.median(j)) if j.size else np.nan

    def jct_percentile(self, q: float) -> float:
        j = self.jcts()
        return float(np.percentile(j, q)) if j.size else np.nan

    @property
    def makespan(self) -> float:
        done = [r.completion for r in self.records if r.finished]
        return float(max(done)) if done else np.nan

    @property
    def mean_slowdown(self) -> float:
        s = self.slowdowns()
        return float(s.mean()) if s.size else np.nan

    @property
    def avg_utilization(self) -> float:
        if self.horizon <= 0.0 or self.total_capacity <= 0.0:
            return 0.0
        return self.utilization_integral / (self.total_capacity * self.horizon)

    @property
    def n_degraded(self) -> int:
        """Jobs that finished only by abandoning part of their work."""
        return sum(1 for r in self.records if r.degraded)

    def summary(self) -> dict[str, float]:
        """Flat dict of headline statistics (what the benchmarks print)."""
        return {
            "n_jobs": float(len(self.records)),
            "n_finished": float(self.n_finished),
            "mean_jct": self.mean_jct,
            "median_jct": self.median_jct,
            "p95_jct": self.jct_percentile(95),
            "makespan": self.makespan,
            "mean_slowdown": self.mean_slowdown,
            "avg_utilization": self.avg_utilization,
            "events": float(self.n_events),
            "work_lost": self.work_lost,
            "work_reexecuted": self.work_reexecuted,
        }

    def __str__(self) -> str:
        s = self.summary()
        return (
            f"{self.policy}: {int(s['n_finished'])}/{int(s['n_jobs'])} jobs, "
            f"mean JCT {s['mean_jct']:.3f}, p95 {s['p95_jct']:.3f}, "
            f"makespan {s['makespan']:.3f}, slowdown {s['mean_slowdown']:.2f}, "
            f"util {s['avg_utilization']:.3f}"
        )
