"""Fluid discrete-event simulator for distributed job execution.

The paper evaluates policies by simulating jobs that arrive, consume
site-pinned work at the rates the active policy allocates, and depart when
all their work is done.  This package implements that model exactly (no
time-stepping): between events workloads deplete linearly, so the next
event time is closed-form, and the policy re-solves at every event
(arrival, per-site work exhaustion, job completion, site failure or
recovery).

* :class:`~repro.sim.engine.FluidSimulator` — the engine (with the
  fault-tolerance subsystem: ``faults`` / ``failure_mode`` arguments).
* :class:`~repro.sim.metrics.SimulationResult` — per-job records + summary
  statistics (mean/median/p95 JCT, slowdown, utilization, work ledger).
* :mod:`~repro.sim.trace` — event trace recording and the
  :class:`~repro.sim.trace.FaultEvent` inputs (failures, recoveries,
  capacity changes).
"""

from repro.sim.engine import FluidSimulator, simulate
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import (
    CapacityChange,
    FaultEvent,
    SimEvent,
    SiteFailure,
    SiteRecovery,
    Trace,
)
from repro.sim.observers import (
    AvailabilityObserver,
    BalanceObserver,
    ChurnObserver,
    CompositeObserver,
    Observer,
    UtilizationObserver,
)

__all__ = [
    "FluidSimulator",
    "simulate",
    "JobRecord",
    "SimulationResult",
    "SimEvent",
    "Trace",
    "FaultEvent",
    "SiteFailure",
    "SiteRecovery",
    "CapacityChange",
    "Observer",
    "BalanceObserver",
    "UtilizationObserver",
    "ChurnObserver",
    "CompositeObserver",
    "AvailabilityObserver",
]
