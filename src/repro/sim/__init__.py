"""Fluid discrete-event simulator for distributed job execution.

The paper evaluates policies by simulating jobs that arrive, consume
site-pinned work at the rates the active policy allocates, and depart when
all their work is done.  This package implements that model exactly (no
time-stepping): between events workloads deplete linearly, so the next
event time is closed-form, and the policy re-solves at every event
(arrival, per-site work exhaustion, job completion).

* :class:`~repro.sim.engine.FluidSimulator` — the engine.
* :class:`~repro.sim.metrics.SimulationResult` — per-job records + summary
  statistics (mean/median/p95 JCT, slowdown, utilization).
* :mod:`~repro.sim.trace` — event trace recording and rendering.
"""

from repro.sim.engine import FluidSimulator, simulate
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import SimEvent, Trace
from repro.sim.observers import (
    BalanceObserver,
    ChurnObserver,
    CompositeObserver,
    Observer,
    UtilizationObserver,
)

__all__ = [
    "FluidSimulator",
    "simulate",
    "JobRecord",
    "SimulationResult",
    "SimEvent",
    "Trace",
    "Observer",
    "BalanceObserver",
    "UtilizationObserver",
    "ChurnObserver",
    "CompositeObserver",
]
