"""Scheduler instrumentation: measure what a policy costs at runtime.

The paper's algorithms run inside a cluster scheduler, so their *overhead
per scheduling event* matters as much as their fairness.  The
:class:`TimedPolicy` wrapper turns any policy callable into one that
records per-solve wall time and instance size, feeding experiment X2
(scheduling overhead in dynamic runs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.core.policies import PolicyFn, get_policy
from repro.model.cluster import Cluster


@dataclass(slots=True)
class SolveStats:
    """Aggregated statistics over all solves of one wrapped policy."""

    solves: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    total_jobs_seen: int = 0
    samples: list[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.total_seconds / self.solves if self.solves else np.nan

    @property
    def max_ms(self) -> float:
        return 1e3 * self.max_seconds

    @property
    def mean_active_jobs(self) -> float:
        return self.total_jobs_seen / self.solves if self.solves else np.nan

    def percentile_ms(self, q: float) -> float:
        if not self.samples:
            return np.nan
        return 1e3 * float(np.percentile(self.samples, q))

    def record(self, seconds: float, n_jobs: int, *, keep_sample: bool = True) -> None:
        """Fold one solve of ``seconds`` wall time over ``n_jobs`` jobs in."""
        self.solves += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        self.total_jobs_seen += n_jobs
        if keep_sample:
            self.samples.append(seconds)


class TimedPolicy:
    """Wrap a policy so every solve is timed.

    Keeps the plain ``Cluster -> Allocation`` signature, so it drops into
    :class:`~repro.sim.engine.FluidSimulator` unchanged::

        timed = TimedPolicy("amf")
        simulate(sites, jobs, timed)
        print(timed.stats.mean_ms)
    """

    def __init__(self, policy: str | PolicyFn, *, keep_samples: bool = True):
        if isinstance(policy, str):
            self._fn = get_policy(policy)
            self.__name__ = policy
        else:
            self._fn = policy
            self.__name__ = getattr(policy, "__name__", "custom")
        self.stats = SolveStats()
        self._keep_samples = keep_samples

    def __call__(self, cluster: Cluster) -> Allocation:
        t0 = time.perf_counter()
        alloc = self._fn(cluster)
        dt = time.perf_counter() - t0
        self.stats.record(dt, cluster.n_jobs, keep_sample=self._keep_samples)
        return alloc
