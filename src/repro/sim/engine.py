"""The fluid event-driven simulation engine.

Between events, every job's remaining work at every site depletes linearly
at the allocated rate, so the engine never time-steps: it computes the next
event (an arrival, or some job exhausting its work at some site) in closed
form, re-solves the allocation policy there, and repeats.  This is the
standard fluid evaluation model for fair-sharing policies and is exact up
to float rounding.

Dynamics are what make AMF's completion-time story work: a static AMF
allocation can starve a particular job-site *edge* (the aggregate is fair,
the split is not), but as other jobs drain, the policy re-solves and the
starved edge gets capacity.  The simulator therefore reports the JCTs the
paper actually evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import require
from repro.core.policies import PolicyFn, get_policy
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import SimEvent, Trace


@dataclass(slots=True)
class _ActiveJob:
    """Mutable per-job simulation state."""

    job: Job
    remaining: dict[str, float]  # site -> remaining work (> 0 entries only)
    record: JobRecord

    def snapshot_job(self) -> Job:
        demand = {s: v for s, v in self.job.demand.items() if s in self.remaining}
        return Job(
            name=self.job.name,
            workload=dict(self.remaining),
            demand=demand,
            weight=self.job.weight,
            arrival=self.job.arrival,
        )


class FluidSimulator:
    """Simulate ``jobs`` on ``sites`` under an allocation ``policy``.

    Parameters
    ----------
    sites:
        The sites (fixed for the whole run).
    jobs:
        Jobs with their ``arrival`` times (0 for a static batch).
    policy:
        A registry name from :data:`repro.core.policies.POLICIES` or any
        callable ``Cluster -> Allocation``; re-invoked at every event on a
        snapshot cluster built from the jobs' *remaining* work.
    trace:
        Optional :class:`~repro.sim.trace.Trace` to record events into.
    observer:
        Optional :class:`~repro.sim.observers.Observer` (or any object with
        the same ``observe(t, dt, snapshot, alloc)`` method), called once
        per simulated interval with the allocation in force.
    work_eps:
        Relative threshold below which remaining work counts as done.
    max_events:
        Safety bound; the run raises if exceeded (default scales with the
        total number of job-site pairs).
    """

    def __init__(
        self,
        sites: Sequence[Site],
        jobs: Sequence[Job],
        policy: str | PolicyFn,
        *,
        trace: Trace | None = None,
        observer=None,
        work_eps: float = 1e-9,
        max_events: int | None = None,
    ):
        self.sites = tuple(sites)
        require(len(self.sites) > 0, "need at least one site")
        self.jobs = tuple(sorted(jobs, key=lambda j: (j.arrival, j.name)))
        if isinstance(policy, str):
            self.policy_name = policy
            self.policy: PolicyFn = get_policy(policy)
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self.policy = policy
        self.trace = trace
        self.observer = observer
        self.work_eps = work_eps
        edge_count = sum(len(j.workload) for j in self.jobs)
        self.max_events = max_events if max_events is not None else 20 * (edge_count + len(self.jobs)) + 1000

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        result = SimulationResult(
            policy=self.policy_name,
            total_capacity=float(sum(s.capacity for s in self.sites)),
        )
        site_caps = {s.name: s.capacity for s in self.sites}
        pending = list(self.jobs)
        next_arrival_idx = 0
        active: dict[str, _ActiveJob] = {}
        t = 0.0

        def isolated_time(job: Job) -> float:
            worst = 0.0
            for s, w in job.workload.items():
                rate = min(job.demand_at(s), site_caps[s])
                worst = max(worst, np.inf if rate <= 0.0 else w / rate)
            return worst

        def admit_until(now: float) -> None:
            nonlocal next_arrival_idx
            while next_arrival_idx < len(pending) and pending[next_arrival_idx].arrival <= now + 1e-15:
                job = pending[next_arrival_idx]
                next_arrival_idx += 1
                rec = JobRecord(
                    name=job.name,
                    arrival=job.arrival,
                    completion=np.inf,
                    total_work=job.total_work,
                    isolated_time=isolated_time(job),
                )
                result.records.append(rec)
                active[job.name] = _ActiveJob(job, dict(job.workload), rec)
                self._emit(SimEvent(now, "arrival", job.name))
                result.n_events += 1

        admit_until(t)
        while active or next_arrival_idx < len(pending):
            require(result.n_events <= self.max_events, f"event budget exceeded ({self.max_events})")
            if not active:
                t = pending[next_arrival_idx].arrival
                admit_until(t)
                continue

            snapshot, names = self._snapshot(active)
            alloc = self.policy(snapshot)
            result.n_policy_solves += 1
            rates = {name: alloc.matrix[k] for k, name in enumerate(names)}
            site_index = {s.name: j for j, s in enumerate(snapshot.sites)}

            # Next internal event: the earliest edge depletion.
            dt_work = np.inf
            for name, aj in active.items():
                row = rates[name]
                for s, rem in aj.remaining.items():
                    rate = row[site_index[s]]
                    if rate > 0.0:
                        dt_work = min(dt_work, rem / rate)
            dt_arrival = (
                pending[next_arrival_idx].arrival - t if next_arrival_idx < len(pending) else np.inf
            )
            dt = min(dt_work, dt_arrival)
            if not np.isfinite(dt):
                # Nothing progresses and nothing will arrive: stall.
                result.stalled = True
                for name in active:
                    self._emit(SimEvent(t, "stall", name))
                result.n_events += len(active)
                break

            # Advance the fluid state.
            if self.observer is not None:
                self.observer.observe(t, dt, snapshot, alloc)
            total_rate = float(sum(r.sum() for r in rates.values()))
            result.utilization_integral += total_rate * dt
            t += dt
            finished_jobs: list[str] = []
            for name, aj in active.items():
                row = rates[name]
                done_sites: list[str] = []
                for s in list(aj.remaining):
                    rate = row[site_index[s]]
                    if rate <= 0.0:
                        continue
                    rem = aj.remaining[s] - rate * dt
                    if rem <= self.work_eps * max(1.0, aj.record.total_work):
                        done_sites.append(s)
                    else:
                        aj.remaining[s] = rem
                for s in done_sites:
                    del aj.remaining[s]
                    self._emit(SimEvent(t, "site-done", name, s))
                    result.n_events += 1
                if not aj.remaining:
                    finished_jobs.append(name)
            for name in finished_jobs:
                aj = active.pop(name)
                aj.record.completion = t
                self._emit(SimEvent(t, "completion", name))
                result.n_events += 1
            admit_until(t)

        result.horizon = t
        return result

    # ------------------------------------------------------------------
    def _snapshot(self, active: dict[str, _ActiveJob]) -> tuple[Cluster, list[str]]:
        """Cluster snapshot of the remaining work (order = stable job order)."""
        names = sorted(active)
        return Cluster(self.sites, [active[n].snapshot_job() for n in names]), names

    def _emit(self, event: SimEvent) -> None:
        if self.trace is not None:
            self.trace.record(event)


def simulate(
    sites: Sequence[Site],
    jobs: Sequence[Job],
    policy: str | PolicyFn,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`FluidSimulator`."""
    return FluidSimulator(sites, jobs, policy, **kwargs).run()
