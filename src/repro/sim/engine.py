"""The fluid event-driven simulation engine.

Between events, every job's remaining work at every site depletes linearly
at the allocated rate, so the engine never time-steps: it computes the next
event (an arrival, some job exhausting its work at some site, or a
scheduled fault) in closed form, re-solves the allocation policy there, and
repeats.  This is the standard fluid evaluation model for fair-sharing
policies and is exact up to float rounding.

Dynamics are what make AMF's completion-time story work: a static AMF
allocation can starve a particular job-site *edge* (the aggregate is fair,
the split is not), but as other jobs drain, the policy re-solves and the
starved edge gets capacity.  The simulator therefore reports the JCTs the
paper actually evaluates.

Fault tolerance (``faults`` argument)
-------------------------------------
The simulator also consumes a schedule of
:class:`~repro.sim.trace.FaultEvent` objects — site failures, recoveries
and capacity changes, typically produced by
:func:`repro.workload.failures.generate_failure_trace`.  On a *full*
failure the affected job-site edges are handled per ``failure_mode``:

``retry``
    Remaining work is parked at the failed site until it recovers; the
    progress of the interrupted attempt is invalidated (scaled by
    ``restart_penalty``) and must be re-executed.  Each edge is parked at
    most ``max_retries`` times; after that its work is abandoned
    (``work_lost``) and the job finishes *degraded*.

``migrate``
    Remaining work moves to the job's surviving support sites,
    proportionally to its original workload distribution there (completed
    work stays completed).  When no surviving site exists the edge falls
    back to ``retry`` semantics.

A brownout (``degraded_fraction > 0``) only scales the site's capacity; no
work is displaced.  The work ledger on the result
(:class:`~repro.sim.metrics.SimulationResult`) conserves
``work_completed + work_lost + work_remaining == total_work`` across any
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util import require
from repro.core.policies import PolicyFn, get_policy
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.obs.tracing import TRACER, span
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import CapacityChange, FaultEvent, SimEvent, SiteFailure, SiteRecovery, Trace

#: Time tolerance for coalescing events that happen "at the same instant".
_TIME_EPS = 1e-15


@dataclass(slots=True)
class _ActiveJob:
    """Mutable per-job simulation state."""

    job: Job
    remaining: dict[str, float]  # site -> remaining work (> 0 entries only, sites currently up)
    record: JobRecord
    parked: dict[str, float] = field(default_factory=dict)  # site -> work awaiting recovery
    retries: dict[str, int] = field(default_factory=dict)  # site -> failures endured there
    attempt_progress: dict[str, float] = field(default_factory=dict)  # site -> work since (re)start

    def snapshot_job(self) -> Job:
        demand = {s: v for s, v in self.job.demand.items() if s in self.remaining}
        return Job(
            name=self.job.name,
            workload=dict(self.remaining),
            demand=demand,
            weight=self.job.weight,
            arrival=self.job.arrival,
        )


class FluidSimulator:
    """Simulate ``jobs`` on ``sites`` under an allocation ``policy``.

    Parameters
    ----------
    sites:
        The sites (nominal capacities; faults modulate them during the run).
    jobs:
        Jobs with their ``arrival`` times (0 for a static batch).
    policy:
        A registry name from :data:`repro.core.policies.POLICIES` or any
        callable ``Cluster -> Allocation``; re-invoked at every event on a
        snapshot cluster built from the jobs' *remaining* work.
    trace:
        Optional :class:`~repro.sim.trace.Trace` to record events into.
    observer:
        Optional :class:`~repro.sim.observers.Observer` (or any object with
        the same ``observe(t, dt, snapshot, alloc)`` method), called once
        per simulated interval with the allocation in force.  Observers may
        additionally implement ``observe_capacity`` / ``record_fault`` /
        ``record_work`` (see :class:`~repro.sim.observers.Observer`).
    faults:
        Optional schedule of :class:`~repro.sim.trace.FaultEvent` objects
        (any order; sorted internally).  Every referenced site must exist.
    failure_mode:
        ``"retry"`` (default) or ``"migrate"`` — what happens to the
        remaining work of edges at a fully failed site (see module docs).
    max_retries:
        Per job-site edge: failures endured before its work is abandoned.
    restart_penalty:
        Fraction of the interrupted attempt's progress that is invalidated
        on failure (1 = full restart, 0 = perfect checkpointing).
    work_eps:
        Relative threshold below which remaining work counts as done.
    max_events:
        Safety bound; the run raises if exceeded (default scales with the
        total number of job-site pairs and fault events).
    """

    def __init__(
        self,
        sites: Sequence[Site],
        jobs: Sequence[Job],
        policy: str | PolicyFn,
        *,
        trace: Trace | None = None,
        observer=None,
        faults: Sequence[FaultEvent] | None = None,
        failure_mode: str = "retry",
        max_retries: int = 3,
        restart_penalty: float = 1.0,
        work_eps: float = 1e-9,
        max_events: int | None = None,
    ):
        self.sites = tuple(sites)
        require(len(self.sites) > 0, "need at least one site")
        self.jobs = tuple(sorted(jobs, key=lambda j: (j.arrival, j.name)))
        if isinstance(policy, str):
            self.policy_name = policy
            self.policy: PolicyFn = get_policy(policy)
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self.policy = policy
        self.trace = trace
        self.observer = observer
        self.faults = tuple(sorted(faults or (), key=lambda e: e.time))
        known_sites = {s.name for s in self.sites}
        for ev in self.faults:
            require(ev.site in known_sites, f"fault event references unknown site {ev.site!r}")
        require(failure_mode in ("retry", "migrate"), f"failure_mode must be 'retry' or 'migrate', got {failure_mode!r}")
        self.failure_mode = failure_mode
        require(max_retries >= 0, "max_retries must be non-negative")
        self.max_retries = max_retries
        require(0.0 <= restart_penalty <= 1.0, f"restart_penalty must be in [0, 1], got {restart_penalty}")
        self.restart_penalty = restart_penalty
        self.work_eps = work_eps
        edge_count = sum(len(j.workload) for j in self.jobs)
        if max_events is not None:
            self.max_events = max_events
        else:
            # Each fault can displace (and later re-run) up to every job's
            # edge at that site, so the budget grows with the schedule.
            self.max_events = 20 * (edge_count + len(self.jobs)) + 1000 + 40 * len(self.faults) * max(1, len(self.jobs))

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        result = SimulationResult(
            policy=self.policy_name,
            total_capacity=float(sum(s.capacity for s in self.sites)),
            total_work=float(sum(j.total_work for j in self.jobs)),
        )
        nominal = {s.name: s.capacity for s in self.sites}  # mutated by CapacityChange
        fraction = {s.name: 1.0 for s in self.sites}  # 1 up, (0,1) brownout, 0 failed
        pending = list(self.jobs)
        next_arrival_idx = 0
        fault_idx = 0
        active: dict[str, _ActiveJob] = {}
        t = 0.0
        # Current site tuple for snapshots; rebuilt only when a fault fires.
        current_sites: tuple[Site, ...] = self.sites

        def rebuild_sites() -> None:
            nonlocal current_sites
            current_sites = tuple(
                Site(s.name, fraction[s.name] * nominal[s.name], s.tags)
                for s in self.sites
                if fraction[s.name] > 0.0
            )

        def up(site: str) -> bool:
            return fraction[site] > 0.0

        def isolated_time(job: Job) -> float:
            worst = 0.0
            for s, w in job.workload.items():
                rate = min(job.demand_at(s), nominal[s])
                worst = max(worst, np.inf if rate <= 0.0 else w / rate)
            return worst

        def notify(hook: str, *args) -> None:
            fn = getattr(self.observer, hook, None)
            if fn is not None:
                fn(*args)

        def displace(aj: _ActiveJob, site: str, now: float, *, count_retry: bool = True) -> None:
            """Handle ``aj``'s active edge at fully failed ``site``."""
            amount = aj.remaining.pop(site)
            progress = aj.attempt_progress.pop(site, 0.0)
            if self.failure_mode == "migrate":
                targets = [x for x in aj.remaining if up(x)]
                if targets:
                    # Redistribute per the job's original workload distribution.
                    weights = np.array([aj.job.workload.get(x, 0.0) for x in targets])
                    if weights.sum() <= 0.0:
                        weights = np.ones(len(targets))
                    for x, frac in zip(targets, weights / weights.sum()):
                        aj.remaining[x] += amount * float(frac)
                    result.n_migrations += 1
                    self._emit(SimEvent(now, "migrate", aj.job.name, site))
                    result.n_events += 1
                    notify("record_work", now, "migrated", aj.job.name, site, amount)
                    return
            # Retry semantics (also the migrate fallback when no site survives):
            # the interrupted attempt's progress is (partially) invalidated.
            invalid = self.restart_penalty * progress
            if invalid > 0.0:
                result.work_reexecuted += invalid
                result.work_completed -= invalid
                amount += invalid
            retries = aj.retries.get(site, 0) + (1 if count_retry else 0)
            aj.retries[site] = retries
            if retries > self.max_retries:
                result.work_lost += amount
                aj.record.work_lost += amount
                self._emit(SimEvent(now, "work-lost", aj.job.name, site))
                result.n_events += 1
                notify("record_work", now, "lost", aj.job.name, site, amount)
            else:
                aj.parked[site] = aj.parked.get(site, 0.0) + amount
                result.n_requeues += 1
                self._emit(SimEvent(now, "requeue", aj.job.name, site))
                result.n_events += 1
                notify("record_work", now, "requeued", aj.job.name, site, amount)

        def finish(name: str, now: float) -> None:
            aj = active.pop(name)
            aj.record.completion = now
            self._emit(SimEvent(now, "completion", name))
            result.n_events += 1

        def apply_faults(now: float) -> None:
            nonlocal fault_idx
            touched = False
            while fault_idx < len(self.faults) and self.faults[fault_idx].time <= now + _TIME_EPS:
                ev = self.faults[fault_idx]
                fault_idx += 1
                touched = True
                if isinstance(ev, SiteRecovery):
                    fraction[ev.site] = 1.0
                    result.n_recoveries += 1
                    self._emit(SimEvent(now, "site-recovery", "", ev.site))
                    result.n_events += 1
                    for aj in active.values():
                        parked = aj.parked.pop(ev.site, 0.0)
                        if parked > 0.0:
                            aj.remaining[ev.site] = aj.remaining.get(ev.site, 0.0) + parked
                elif isinstance(ev, CapacityChange):
                    nominal[ev.site] = ev.capacity
                    result.n_capacity_changes += 1
                    self._emit(SimEvent(now, "capacity-change", "", ev.site))
                    result.n_events += 1
                elif isinstance(ev, SiteFailure):
                    fraction[ev.site] = ev.degraded_fraction
                    result.n_failures += 1
                    self._emit(SimEvent(now, "site-failure", "", ev.site))
                    result.n_events += 1
                    if ev.degraded_fraction <= 0.0:
                        for name in list(active):
                            aj = active[name]
                            if ev.site in aj.remaining:
                                displace(aj, ev.site, now)
                                if not aj.remaining and not aj.parked:
                                    finish(name, now)  # everything abandoned: degraded completion
                else:  # pragma: no cover - future-proofing
                    raise TypeError(f"unknown fault event {ev!r}")
                notify("record_fault", now, ev)
            if touched:
                rebuild_sites()

        def admit_until(now: float) -> None:
            nonlocal next_arrival_idx
            while next_arrival_idx < len(pending) and pending[next_arrival_idx].arrival <= now + _TIME_EPS:
                job = pending[next_arrival_idx]
                next_arrival_idx += 1
                rec = JobRecord(
                    name=job.name,
                    arrival=job.arrival,
                    completion=np.inf,
                    total_work=job.total_work,
                    isolated_time=isolated_time(job),
                )
                result.records.append(rec)
                aj = _ActiveJob(job, dict(job.workload), rec)
                active[job.name] = aj
                self._emit(SimEvent(now, "arrival", job.name))
                result.n_events += 1
                # Work pinned at a currently-failed site is displaced on
                # arrival (no progress yet, so no retry is charged).
                for s in [s for s in aj.remaining if not up(s)]:
                    displace(aj, s, now, count_retry=False)

        apply_faults(t)
        admit_until(t)
        while active or next_arrival_idx < len(pending):
            require(result.n_events <= self.max_events, f"event budget exceeded ({self.max_events})")
            if not active:
                # Fast-forward to whichever comes first: the next arrival or
                # the next fault (faults still mutate capacities meanwhile).
                t = pending[next_arrival_idx].arrival
                if fault_idx < len(self.faults):
                    t = min(t, self.faults[fault_idx].time)
                apply_faults(t)
                admit_until(t)
                continue

            snapshot, names = self._snapshot(active, current_sites)
            if snapshot is not None:
                if TRACER.enabled:
                    with span("sim.policy_solve", t=t, jobs=snapshot.n_jobs):
                        alloc = self.policy(snapshot)
                else:
                    alloc = self.policy(snapshot)
                result.n_policy_solves += 1
                rates = {name: alloc.matrix[k] for k, name in enumerate(names)}
                site_index = {s.name: j for j, s in enumerate(snapshot.sites)}
            else:
                alloc = None
                rates = {}
                site_index = {}

            # Next internal event: the earliest edge depletion.
            dt_work = np.inf
            for name, row in rates.items():
                aj = active[name]
                for s, rem in aj.remaining.items():
                    rate = row[site_index[s]]
                    if rate > 0.0:
                        dt_work = min(dt_work, rem / rate)
            dt_arrival = (
                pending[next_arrival_idx].arrival - t if next_arrival_idx < len(pending) else np.inf
            )
            dt_fault = self.faults[fault_idx].time - t if fault_idx < len(self.faults) else np.inf
            dt = min(dt_work, dt_arrival, dt_fault)
            if not np.isfinite(dt):
                # Nothing progresses, nothing will arrive, no fault pending
                # (e.g. all remaining work parked at sites that never
                # recover): stall.
                result.stalled = True
                for name in active:
                    self._emit(SimEvent(t, "stall", name))
                result.n_events += len(active)
                break
            dt = max(dt, 0.0)

            # Advance the fluid state.
            if self.observer is not None:
                if snapshot is not None:
                    self.observer.observe(t, dt, snapshot, alloc)
                notify(
                    "observe_capacity",
                    t,
                    dt,
                    float(sum(fraction[s.name] * nominal[s.name] for s in self.sites)),
                    float(sum(nominal[s.name] for s in self.sites)),
                )
            total_rate = float(sum(r.sum() for r in rates.values()))
            result.utilization_integral += total_rate * dt
            t += dt
            finished_jobs: list[str] = []
            for name, row in rates.items():
                aj = active[name]
                done_sites: list[str] = []
                for s in list(aj.remaining):
                    rate = row[site_index[s]]
                    if rate <= 0.0:
                        continue
                    rem = aj.remaining[s]
                    step = rate * dt
                    if rem - step <= self.work_eps * max(1.0, aj.record.total_work):
                        done_sites.append(s)
                        result.work_completed += rem
                        aj.attempt_progress.pop(s, None)
                    else:
                        aj.remaining[s] = rem - step
                        result.work_completed += step
                        aj.attempt_progress[s] = aj.attempt_progress.get(s, 0.0) + step
                for s in done_sites:
                    del aj.remaining[s]
                    self._emit(SimEvent(t, "site-done", name, s))
                    result.n_events += 1
                if not aj.remaining and not aj.parked:
                    finished_jobs.append(name)
            for name in finished_jobs:
                finish(name, t)
            apply_faults(t)
            admit_until(t)

        result.horizon = t
        result.work_remaining = float(
            sum(sum(aj.remaining.values()) + sum(aj.parked.values()) for aj in active.values())
        )
        return result

    # ------------------------------------------------------------------
    def _snapshot(
        self, active: dict[str, _ActiveJob], sites: tuple[Site, ...]
    ) -> tuple[Cluster | None, list[str]]:
        """Cluster snapshot of the remaining work (order = stable job order).

        Jobs whose work is entirely parked at failed sites are excluded;
        ``None`` when nothing is solvable (no up site or no runnable job).
        """
        names = sorted(n for n, aj in active.items() if aj.remaining)
        if not names or not sites:
            return None, []
        return Cluster(sites, [active[n].snapshot_job() for n in names]), names

    def _emit(self, event: SimEvent) -> None:
        if self.trace is not None:
            self.trace.record(event)


def simulate(
    sites: Sequence[Site],
    jobs: Sequence[Job],
    policy: str | PolicyFn,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`FluidSimulator`."""
    return FluidSimulator(sites, jobs, policy, **kwargs).run()
