"""Simulation observers: time-weighted metrics over the run.

Static balance metrics (F1/F2) score one allocation snapshot; a dynamic
system is fair only if it stays balanced *while jobs come and go*.  An
observer receives every (interval, allocation) pair the simulator realizes
and integrates metrics over time:

* :class:`BalanceObserver` — time-averaged Jain index / CoV over the
  comparable levels of each interval's allocation (extension experiment
  X1, DESIGN.md §6).
* :class:`UtilizationObserver` — per-site utilization timelines.
* :class:`AvailabilityObserver` — effective-capacity availability, work
  lost / re-executed, and solver-fallback activations under site churn
  (extension experiment X8, docs/robustness.md).

Observers plug into :class:`~repro.sim.engine.FluidSimulator` via the
``observer`` argument; any callable with the same ``observe`` signature
works.  The fault-tolerance hooks (``observe_capacity``, ``record_fault``,
``record_work``) are optional: the engine only calls the ones an observer
actually defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.metrics.fairness import coefficient_of_variation, jain_index
from repro.model.cluster import Cluster
from repro.sim.trace import CapacityChange, FaultEvent, SiteFailure, SiteRecovery


class Observer:
    """Interface: called once per simulated interval, before time advances.

    Subclasses override :meth:`observe`; the fault-tolerance hooks below
    default to no-ops so fault-oblivious observers stay one-method classes.
    """

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        raise NotImplementedError

    def observe_capacity(self, t: float, dt: float, effective: float, nominal: float) -> None:
        """Called every interval with total effective vs nominal capacity."""

    def record_fault(self, t: float, event: FaultEvent) -> None:
        """Called when the engine applies a fault event."""

    def record_work(self, t: float, kind: str, job: str, site: str, amount: float) -> None:
        """Called when a failure displaces work; ``kind`` is ``requeued`` /
        ``migrated`` / ``lost``."""


@dataclass(slots=True)
class BalanceObserver(Observer):
    """Integrates allocation-balance metrics over simulated time.

    The instantaneous metric is computed over the *weighted levels* of the
    jobs active in the interval; intervals with fewer than 2 active jobs
    are skipped (fairness is vacuous there).
    """

    time_observed: float = 0.0
    jain_integral: float = 0.0
    cov_integral: float = 0.0
    min_samples: int = 2

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        if dt <= 0.0 or snapshot.n_jobs < self.min_samples:
            return
        levels = alloc.normalized_aggregates()
        self.time_observed += dt
        self.jain_integral += jain_index(levels) * dt
        self.cov_integral += coefficient_of_variation(levels) * dt

    @property
    def time_avg_jain(self) -> float:
        return self.jain_integral / self.time_observed if self.time_observed > 0 else np.nan

    @property
    def time_avg_cov(self) -> float:
        return self.cov_integral / self.time_observed if self.time_observed > 0 else np.nan


@dataclass(slots=True)
class UtilizationObserver(Observer):
    """Per-site utilization integrals (time-averaged by :meth:`averages`)."""

    site_names: list[str] = field(default_factory=list)
    usage_integrals: dict[str, float] = field(default_factory=dict)
    capacity: dict[str, float] = field(default_factory=dict)
    time_observed: float = 0.0

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        if dt <= 0.0:
            return
        self.time_observed += dt
        usage = alloc.site_usage
        for j, site in enumerate(snapshot.sites):
            if site.name not in self.usage_integrals:
                self.site_names.append(site.name)
                self.usage_integrals[site.name] = 0.0
                self.capacity[site.name] = site.capacity
            self.usage_integrals[site.name] += float(usage[j]) * dt

    def averages(self) -> dict[str, float]:
        """Time-averaged utilization per site (fraction of capacity)."""
        if self.time_observed <= 0.0:
            return {}
        return {
            name: self.usage_integrals[name] / (self.capacity[name] * self.time_observed)
            for name in self.site_names
        }


@dataclass(slots=True)
class ChurnObserver(Observer):
    """Measures allocation *churn*: how much the assignment moves per event.

    Real schedulers pay for reallocation (preemptions, container resizes),
    so a policy that reshuffles `a_ij` wildly at every event is costlier to
    operate than its fluid metrics suggest.  Churn at an event is the L1
    distance between a job's new and previous site vector, summed over the
    jobs present at both events, normalized by total capacity
    ("fraction of the cluster reassigned").

    Extension experiment X5 compares policies on mean churn per event.
    """

    total_churn: float = 0.0
    events: int = 0
    _previous: dict[str, dict[str, float]] = field(default_factory=dict)

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        current: dict[str, dict[str, float]] = {}
        for i, job in enumerate(snapshot.jobs):
            current[job.name] = {
                snapshot.sites[j].name: float(alloc.matrix[i, j])
                for j in np.flatnonzero(alloc.matrix[i] > 0.0)
            }
        carried = set(self._previous) & set(current)
        if carried:
            moved = 0.0
            for name in carried:
                old, new = self._previous[name], current[name]
                for site in set(old) | set(new):
                    moved += abs(new.get(site, 0.0) - old.get(site, 0.0))
            self.total_churn += moved / snapshot.total_capacity
            self.events += 1
        self._previous = current

    @property
    def mean_churn(self) -> float:
        """Mean fraction of cluster capacity reassigned per event."""
        return self.total_churn / self.events if self.events else np.nan


@dataclass(slots=True)
class AvailabilityObserver(Observer):
    """Fault-tolerance bookkeeping under site churn (experiment X8).

    Integrates the *effective* (post-failure) capacity against the nominal
    one, and accumulates the work displaced by failures as reported by the
    engine.  When constructed with a
    :class:`~repro.core.policies.ResilientPolicy`, it also surfaces that
    policy's fallback-activation count, so one object summarizes the whole
    degraded-mode story of a run.
    """

    policy: object | None = None  # optional ResilientPolicy (for fallback counts)
    time_observed: float = 0.0
    effective_capacity_integral: float = 0.0
    nominal_capacity_integral: float = 0.0
    work_lost: float = 0.0
    work_requeued: float = 0.0
    work_migrated: float = 0.0
    n_failures: int = 0
    n_recoveries: int = 0
    n_capacity_changes: int = 0

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        """Capacity is tracked via :meth:`observe_capacity`; nothing to do here."""

    def observe_capacity(self, t: float, dt: float, effective: float, nominal: float) -> None:
        if dt <= 0.0:
            return
        self.time_observed += dt
        self.effective_capacity_integral += effective * dt
        self.nominal_capacity_integral += nominal * dt

    def record_fault(self, t: float, event: FaultEvent) -> None:
        if isinstance(event, SiteFailure):
            self.n_failures += 1
        elif isinstance(event, SiteRecovery):
            self.n_recoveries += 1
        elif isinstance(event, CapacityChange):
            self.n_capacity_changes += 1

    def record_work(self, t: float, kind: str, job: str, site: str, amount: float) -> None:
        if kind == "lost":
            self.work_lost += amount
        elif kind == "requeued":
            self.work_requeued += amount
        elif kind == "migrated":
            self.work_migrated += amount

    @property
    def availability(self) -> float:
        """Time-averaged effective / nominal capacity (1.0 = no downtime)."""
        if self.nominal_capacity_integral <= 0.0:
            return np.nan
        return self.effective_capacity_integral / self.nominal_capacity_integral

    @property
    def fallback_activations(self) -> int:
        """Solver-fallback activations of the linked :class:`ResilientPolicy`."""
        stats = getattr(self.policy, "stats", None)
        return int(getattr(stats, "fallback_activations", 0))

    def summary(self) -> dict[str, float]:
        return {
            "availability": self.availability,
            "work_lost": self.work_lost,
            "work_requeued": self.work_requeued,
            "work_migrated": self.work_migrated,
            "n_failures": float(self.n_failures),
            "n_recoveries": float(self.n_recoveries),
            "fallback_activations": float(self.fallback_activations),
        }


@dataclass(slots=True)
class CompositeObserver(Observer):
    """Fan one observation (and every fault hook) out to several observers."""

    observers: list[Observer] = field(default_factory=list)

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        for obs in self.observers:
            obs.observe(t, dt, snapshot, alloc)

    def observe_capacity(self, t: float, dt: float, effective: float, nominal: float) -> None:
        for obs in self.observers:
            fn = getattr(obs, "observe_capacity", None)
            if fn is not None:
                fn(t, dt, effective, nominal)

    def record_fault(self, t: float, event: FaultEvent) -> None:
        for obs in self.observers:
            fn = getattr(obs, "record_fault", None)
            if fn is not None:
                fn(t, event)

    def record_work(self, t: float, kind: str, job: str, site: str, amount: float) -> None:
        for obs in self.observers:
            fn = getattr(obs, "record_work", None)
            if fn is not None:
                fn(t, kind, job, site, amount)
