"""Simulation observers: time-weighted metrics over the run.

Static balance metrics (F1/F2) score one allocation snapshot; a dynamic
system is fair only if it stays balanced *while jobs come and go*.  An
observer receives every (interval, allocation) pair the simulator realizes
and integrates metrics over time:

* :class:`BalanceObserver` — time-averaged Jain index / CoV over the
  comparable levels of each interval's allocation (extension experiment
  X1, DESIGN.md §6).
* :class:`UtilizationObserver` — per-site utilization timelines.

Observers plug into :class:`~repro.sim.engine.FluidSimulator` via the
``observer`` argument; any callable with the same signature works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.metrics.fairness import coefficient_of_variation, jain_index
from repro.model.cluster import Cluster


class Observer:
    """Interface: called once per simulated interval, before time advances."""

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        raise NotImplementedError


@dataclass(slots=True)
class BalanceObserver(Observer):
    """Integrates allocation-balance metrics over simulated time.

    The instantaneous metric is computed over the *weighted levels* of the
    jobs active in the interval; intervals with fewer than 2 active jobs
    are skipped (fairness is vacuous there).
    """

    time_observed: float = 0.0
    jain_integral: float = 0.0
    cov_integral: float = 0.0
    min_samples: int = 2

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        if dt <= 0.0 or snapshot.n_jobs < self.min_samples:
            return
        levels = alloc.normalized_aggregates()
        self.time_observed += dt
        self.jain_integral += jain_index(levels) * dt
        self.cov_integral += coefficient_of_variation(levels) * dt

    @property
    def time_avg_jain(self) -> float:
        return self.jain_integral / self.time_observed if self.time_observed > 0 else np.nan

    @property
    def time_avg_cov(self) -> float:
        return self.cov_integral / self.time_observed if self.time_observed > 0 else np.nan


@dataclass(slots=True)
class UtilizationObserver(Observer):
    """Per-site utilization integrals (time-averaged by :meth:`averages`)."""

    site_names: list[str] = field(default_factory=list)
    usage_integrals: dict[str, float] = field(default_factory=dict)
    capacity: dict[str, float] = field(default_factory=dict)
    time_observed: float = 0.0

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        if dt <= 0.0:
            return
        self.time_observed += dt
        usage = alloc.site_usage
        for j, site in enumerate(snapshot.sites):
            if site.name not in self.usage_integrals:
                self.site_names.append(site.name)
                self.usage_integrals[site.name] = 0.0
                self.capacity[site.name] = site.capacity
            self.usage_integrals[site.name] += float(usage[j]) * dt

    def averages(self) -> dict[str, float]:
        """Time-averaged utilization per site (fraction of capacity)."""
        if self.time_observed <= 0.0:
            return {}
        return {
            name: self.usage_integrals[name] / (self.capacity[name] * self.time_observed)
            for name in self.site_names
        }


@dataclass(slots=True)
class ChurnObserver(Observer):
    """Measures allocation *churn*: how much the assignment moves per event.

    Real schedulers pay for reallocation (preemptions, container resizes),
    so a policy that reshuffles `a_ij` wildly at every event is costlier to
    operate than its fluid metrics suggest.  Churn at an event is the L1
    distance between a job's new and previous site vector, summed over the
    jobs present at both events, normalized by total capacity
    ("fraction of the cluster reassigned").

    Extension experiment X5 compares policies on mean churn per event.
    """

    total_churn: float = 0.0
    events: int = 0
    _previous: dict[str, dict[str, float]] = field(default_factory=dict)

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        current: dict[str, dict[str, float]] = {}
        for i, job in enumerate(snapshot.jobs):
            current[job.name] = {
                snapshot.sites[j].name: float(alloc.matrix[i, j])
                for j in np.flatnonzero(alloc.matrix[i] > 0.0)
            }
        carried = set(self._previous) & set(current)
        if carried:
            moved = 0.0
            for name in carried:
                old, new = self._previous[name], current[name]
                for site in set(old) | set(new):
                    moved += abs(new.get(site, 0.0) - old.get(site, 0.0))
            self.total_churn += moved / snapshot.total_capacity
            self.events += 1
        self._previous = current

    @property
    def mean_churn(self) -> float:
        """Mean fraction of cluster capacity reassigned per event."""
        return self.total_churn / self.events if self.events else np.nan


@dataclass(slots=True)
class CompositeObserver(Observer):
    """Fan one observation out to several observers."""

    observers: list[Observer] = field(default_factory=list)

    def observe(self, t: float, dt: float, snapshot: Cluster, alloc: Allocation) -> None:
        for obs in self.observers:
            obs.observe(t, dt, snapshot, alloc)
