"""repro — Aggregate Max-min Fairness for distributed job execution.

A full reproduction of Guan, Li & Tang, *On Max-min Fair Resource Allocation
for Distributed Job Execution* (ICPP 2019): the AMF / enhanced-AMF / PSMF
policies, the completion-time add-on, exact fairness-property checkers, a
fluid event-driven simulator and the experiment harness.

Quickstart::

    import repro

    cluster = repro.Cluster.from_matrices(
        capacities=[10.0, 10.0],
        workloads=[[8.0, 2.0], [2.0, 8.0], [5.0, 5.0]],
    )
    alloc = repro.solve_amf(cluster)
    print(alloc.pretty())

See README.md and the examples/ directory.
"""

from repro.model import Cluster, Job, Site, validate_instance
from repro.core import (
    Allocation,
    POLICIES,
    get_policy,
    optimize_completion_times,
    proportional_split,
    solve_amf,
    solve_amf_enhanced,
    solve_psmf,
    water_fill,
)
from repro.core.amf import amf_levels, AmfDiagnostics
from repro.core.enhanced import sharing_incentive_floors
from repro.core import properties
from repro.sim import simulate, FluidSimulator, Trace
from repro.workload import WorkloadSpec, generate_cluster

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Job",
    "Site",
    "validate_instance",
    "Allocation",
    "POLICIES",
    "get_policy",
    "solve_amf",
    "solve_amf_enhanced",
    "solve_psmf",
    "amf_levels",
    "AmfDiagnostics",
    "sharing_incentive_floors",
    "optimize_completion_times",
    "proportional_split",
    "water_fill",
    "properties",
    "simulate",
    "FluidSimulator",
    "Trace",
    "WorkloadSpec",
    "generate_cluster",
    "__version__",
]
