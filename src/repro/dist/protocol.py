"""Length-prefixed JSON wire protocol of the distributed control plane.

Everything the coordinator and the solver workers say to each other is a
*frame*: a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  The JSON is a versioned envelope

.. code-block:: json

    {"v": 1, "type": "solve_shard", "id": 7, "body": {...}}

``v`` is :data:`PROTOCOL_VERSION` (a peer speaking another version is
refused before its body is interpreted), ``type`` selects one of the
registered message classes below, and ``id`` is a request id the reply
echoes — the coordinator pipelines independent RPCs over one connection
and matches answers by id.

Framing is defensive at every step, because a TCP peer can die (or lie)
mid-byte:

* a length prefix above :data:`MAX_FRAME_BYTES` — the same 4 MiB ceiling
  the HTTP edge enforces with 413 (:data:`repro.service.schema
  .MAX_BODY_BYTES`) — raises :class:`FrameTooLarge` *before* any payload
  is read, so garbage bytes cannot make a peer buffer gigabytes;
* a socket that closes cleanly *between* frames raises
  :class:`ConnectionClosed` (normal end of conversation);
* a socket that closes *inside* a frame (header or payload) raises
  :class:`ProtocolError` — the peer must treat the stream as poisoned and
  drop the connection, never resynchronize;
* bytes that are not valid UTF-8 JSON, envelopes missing fields, unknown
  types and malformed bodies all raise :class:`ProtocolError` with a
  message naming the violation.

The adversarial cases (truncated frame, oversized prefix, garbage,
mid-frame disconnect) are pinned by ``tests/dist/test_protocol.py``
alongside a hypothesis round-trip of every message type.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping

from repro.service.schema import MAX_BODY_BYTES

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "VersionMismatch",
    "FrameTooLarge",
    "ConnectionClosed",
    "Message",
    "MESSAGE_TYPES",
    "Hello",
    "HelloAck",
    "Ping",
    "Pong",
    "SolveShard",
    "ShardSolved",
    "ErrorReply",
    "Shutdown",
    "ShutdownAck",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
]

#: Version stamped into (and required of) every envelope.  Bumped to 2
#: when :class:`SolveShard` grew ``resource_totals`` (the federation-wide
#: dominant-share denominators a multi-resource shard solve depends on) —
#: a v1 peer would silently solve vector shards against the wrong
#: denominators, so version disagreement must fail closed, never degrade.
PROTOCOL_VERSION = 2

#: Frame ceiling — the HTTP edge's 413 limit, reused byte-for-byte.
MAX_FRAME_BYTES = MAX_BODY_BYTES

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A byte stream or envelope that violates the wire protocol."""


class VersionMismatch(ProtocolError):
    """The peer speaks a different :data:`PROTOCOL_VERSION`.

    Fail-closed by design: the coordinator treats this as a dead backend
    (typed :class:`repro.dist.DistError` → local fallback) rather than
    attempting cross-version best effort — a v1 worker would solve a
    multi-resource shard against the wrong global denominators.
    """


class FrameTooLarge(ProtocolError):
    """A length prefix above :data:`MAX_FRAME_BYTES` (refused unread)."""


class ConnectionClosed(ProtocolError):
    """The peer closed cleanly at a frame boundary (normal hang-up)."""


# ----------------------------------------------------------------------
# Message types
# ----------------------------------------------------------------------

MESSAGE_TYPES: dict[str, type["Message"]] = {}


def _register(cls: type["Message"]) -> type["Message"]:
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


@dataclass(frozen=True, slots=True)
class Message:
    """Base envelope: every concrete message carries a request ``id``.

    Subclasses are frozen dataclasses whose remaining fields *are* the
    wire body — ``to_wire``/``from_wire`` are generic over the dataclass
    fields, so adding a message type is one class with a ``TYPE`` tag.
    """

    TYPE: ClassVar[str] = ""

    id: int

    def to_wire(self) -> dict[str, Any]:
        body = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "id"}
        return {"v": PROTOCOL_VERSION, "type": self.TYPE, "id": self.id, "body": body}

    @classmethod
    def from_body(cls, id: int, body: Mapping[str, Any]) -> "Message":
        names = {f.name for f in fields(cls)} - {"id"}
        unknown = set(body) - names
        if unknown:
            raise ProtocolError(f"{cls.TYPE!r} body has unknown fields {sorted(unknown)}")
        try:
            return cls(id=id, **dict(body))
        except TypeError as exc:
            raise ProtocolError(f"malformed {cls.TYPE!r} body: {exc}") from None


@_register
@dataclass(frozen=True, slots=True)
class Hello(Message):
    """Connection opener: who is calling (``peer`` is free-form)."""

    TYPE: ClassVar[str] = "hello"
    peer: str = "coordinator"


@_register
@dataclass(frozen=True, slots=True)
class HelloAck(Message):
    """Worker's answer to :class:`Hello`: identity plus a load sketch."""

    TYPE: ClassVar[str] = "hello_ack"
    worker_id: str = ""
    shards: int = 0
    solves: int = 0


@_register
@dataclass(frozen=True, slots=True)
class Ping(Message):
    """Heartbeat probe (sent on the control connection)."""

    TYPE: ClassVar[str] = "ping"


@_register
@dataclass(frozen=True, slots=True)
class Pong(Message):
    """Heartbeat answer, echoing the probe's id with a load sketch."""

    TYPE: ClassVar[str] = "pong"
    worker_id: str = ""
    shards: int = 0
    solves: int = 0


@_register
@dataclass(frozen=True, slots=True)
class SolveShard(Message):
    """Solve one shard: the sub-cluster plus warm-start seed cuts.

    ``key`` is the shard's site-name set (sorted for a canonical wire
    form); ``cluster`` is :func:`repro.model.serialize.cluster_to_dict`
    output; ``seed_cuts`` are site-name sets the worker folds into its
    local basis before solving (the coordinator sends its mirrored cuts
    here after a failover, re-warming the new owner); ``floors`` is an
    optional per-job lower-bound vector; ``resource_totals`` carries the
    *federation-wide* per-resource capacity totals a multi-resource shard
    must use as dominant-share denominators (``None`` for scalar shards).
    """

    TYPE: ClassVar[str] = "solve_shard"
    key: tuple[str, ...] = ()
    cluster: dict[str, Any] | None = None
    oracle: str = "parametric"
    seed_cuts: tuple[tuple[str, ...], ...] = ()
    floors: tuple[float, ...] | None = None
    resource_totals: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self):
        object.__setattr__(self, "key", tuple(str(s) for s in self.key))
        object.__setattr__(
            self, "seed_cuts", tuple(tuple(str(s) for s in cut) for cut in self.seed_cuts)
        )
        if self.floors is not None:
            object.__setattr__(self, "floors", tuple(float(x) for x in self.floors))
        if self.resource_totals is not None:
            object.__setattr__(
                self,
                "resource_totals",
                tuple(sorted((str(res), float(amount)) for res, amount in self.resource_totals)),
            )


@_register
@dataclass(frozen=True, slots=True)
class ShardSolved(Message):
    """A solved shard: exact sub-matrix, diagnostics and discovered cuts.

    The matrix travels as nested JSON numbers — Python serializes floats
    via ``repr`` which round-trips IEEE-754 exactly, so a distributed
    solve is *bit-identical* to the in-process one (pinned by
    ``tests/dist/test_distributed.py``).
    """

    TYPE: ClassVar[str] = "shard_solved"
    key: tuple[str, ...] = ()
    matrix: tuple[tuple[float, ...], ...] = ()
    diagnostics: dict[str, int] | None = None
    seconds: float = 0.0
    discovered_cuts: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "key", tuple(str(s) for s in self.key))
        object.__setattr__(
            self, "matrix", tuple(tuple(float(x) for x in row) for row in self.matrix)
        )
        object.__setattr__(
            self,
            "discovered_cuts",
            tuple(tuple(str(s) for s in cut) for cut in self.discovered_cuts),
        )


@_register
@dataclass(frozen=True, slots=True)
class ErrorReply(Message):
    """The peer could not serve a request (echoes its id).

    ``code`` mirrors the HTTP envelope vocabulary: ``bad_request`` for a
    malformed message, ``internal`` for a solver fault, ``frame_too_large``
    for an oversized frame the peer refused.
    """

    TYPE: ClassVar[str] = "error"
    code: str = "internal"
    message: str = ""


@_register
@dataclass(frozen=True, slots=True)
class Shutdown(Message):
    """Ask the worker to finish its in-flight solve and exit."""

    TYPE: ClassVar[str] = "shutdown"


@_register
@dataclass(frozen=True, slots=True)
class ShutdownAck(Message):
    """Worker's last frame before closing its listener."""

    TYPE: ClassVar[str] = "shutdown_ack"


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------


def encode_message(msg: Message) -> bytes:
    """One wire frame: length prefix + compact JSON envelope."""
    payload = json.dumps(msg.to_wire(), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"message of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def decode_message(payload: bytes) -> Message:
    """Parse one frame payload back into a typed message."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"envelope must be a JSON object, got {type(obj).__name__}")
    # Version is judged before the field inventory: a foreign version may
    # legitimately use a different envelope shape, and the answer must be
    # "speak v2", not "malformed frame".
    if obj.get("v") != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"unsupported protocol version {obj.get('v')!r} (speak {PROTOCOL_VERSION})"
        )
    missing = {"type", "id", "body"} - set(obj)
    if missing:
        raise ProtocolError(f"envelope missing fields {sorted(missing)}")
    cls = MESSAGE_TYPES.get(obj["type"])
    if cls is None:
        raise ProtocolError(f"unknown message type {obj['type']!r}")
    if not isinstance(obj["id"], int) or isinstance(obj["id"], bool):
        raise ProtocolError(f"message id must be an integer, got {obj['id']!r}")
    if not isinstance(obj["body"], dict):
        raise ProtocolError("message body must be a JSON object")
    return cls.from_body(obj["id"], obj["body"])


def _read_exact(sock: socket.socket, n: int, *, boundary: bool) -> bytes:
    """Read exactly ``n`` bytes or raise.

    ``boundary=True`` means a clean close before the first byte is a
    normal hang-up (:class:`ConnectionClosed`); any close after a byte of
    the frame has been seen is a protocol violation.
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if boundary and not buf:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(f"peer closed mid-frame ({len(buf)} of {n} bytes)")
        buf += chunk
    return bytes(buf)


def send_message(sock: socket.socket, msg: Message) -> None:
    """Write one message as a single frame."""
    sock.sendall(encode_message(msg))


def recv_message(sock: socket.socket) -> Message:
    """Read one frame and parse it (see module docstring for error cases)."""
    header = _read_exact(sock, _HEADER.size, boundary=True)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    if length == 0:
        raise ProtocolError("empty frame")
    return decode_message(_read_exact(sock, length, boundary=False))
