"""Distributed control plane: coordinator + solver-worker pool.

The subsystem splits the sharded AMF solve of PR 5 across processes: a
*coordinator* (the process running :class:`~repro.service.daemon
.AllocationService`) owns the cluster state and the shard→worker
assignment, and N *solver workers* each hold their shards' warm cut bases
and answer solve RPCs over a length-prefixed JSON protocol.  The public
HTTP API is unchanged — distribution is a service backend
(``AllocationService(backend="dist", ...)``), not a new API.

Layering:

* :mod:`repro.dist.protocol` — framing, envelopes, message types;
* :mod:`repro.dist.membership` — heartbeat probing and death declaration;
* :mod:`repro.dist.worker` — the worker process (:class:`SolverWorker`);
* :mod:`repro.dist.coordinator` — the pool client (:class:`WorkerPool`),
  shard assignment and failover.

See ``docs/distributed.md`` for the topology, protocol spec, failover
semantics and tuning knobs.
"""

from repro.dist.coordinator import DistError, DistStats, ShardAssignment, WorkerPool
from repro.dist.membership import HeartbeatMonitor, WorkerInfo
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameTooLarge,
    Message,
    ProtocolError,
    VersionMismatch,
)
from repro.dist.worker import SolverWorker, run_worker, spawn_local_workers

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "VersionMismatch",
    "FrameTooLarge",
    "ConnectionClosed",
    "Message",
    "HeartbeatMonitor",
    "WorkerInfo",
    "SolverWorker",
    "run_worker",
    "spawn_local_workers",
    "DistError",
    "DistStats",
    "ShardAssignment",
    "WorkerPool",
]
