"""Heartbeat-based membership for the solver-worker pool.

The coordinator cannot tell a slow worker from a dead one by RPC failures
alone — a quiet service may not issue a solve for minutes.  The
:class:`HeartbeatMonitor` therefore probes every live worker on a control
connection each ``interval`` seconds; :data:`miss_threshold` *consecutive*
misses declare the worker dead and invoke the pool's failure path (shard
reassignment with subset-seeded basis re-warm — the same spirit as the
PR 1 site-failure machinery, applied to the service's own processes).

The monitor is deliberately dumb: it knows nothing about shards or
sockets.  It is given a ``targets`` callable yielding ``(worker_id,
probe)`` pairs and a ``on_dead(worker_id, reason)`` callback, so it is
testable with plain fakes (``tests/dist/test_membership.py``) and
reusable by anything that can phrase liveness as "a callable that raises".
A probe that *returns* resets the miss counter; a probe that raises counts
one miss and bumps the ``repro_dist_heartbeat_misses_total`` counter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro._util import require
from repro.obs.instruments import record_dist_heartbeat_miss

__all__ = ["WorkerInfo", "HeartbeatMonitor"]


@dataclass(slots=True)
class WorkerInfo:
    """Coordinator-side view of one worker's membership state."""

    worker_id: str
    address: tuple[str, int]
    alive: bool = True
    consecutive_misses: int = 0
    heartbeats: int = 0  # successful probes
    misses: int = 0  # lifetime missed probes
    solves: int = 0  # worker-reported solve count (from the last pong)
    shards: int = 0  # shard keys currently assigned to this worker
    last_error: str | None = None

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "address": f"{self.address[0]}:{self.address[1]}",
            "alive": self.alive,
            "consecutive_misses": self.consecutive_misses,
            "heartbeats": self.heartbeats,
            "misses": self.misses,
            "solves": self.solves,
            "shards": self.shards,
            "last_error": self.last_error,
        }


@dataclass(slots=True)
class _Track:
    misses: int = 0


class HeartbeatMonitor:
    """Background prober declaring workers dead after consecutive misses.

    Parameters
    ----------
    targets:
        Callable returning the current ``(worker_id, probe)`` pairs to
        check; probes of workers already declared dead must simply not be
        yielded any more.
    on_dead:
        Invoked once per worker, from the monitor thread, when its miss
        count reaches ``miss_threshold``.
    on_alive:
        Optional per-success callback ``(worker_id, result)`` — the pool
        uses it to fold the pong's load sketch into its registry.
    on_miss:
        Optional per-miss callback ``(worker_id,)`` — fired for *every*
        missed probe, before any death declaration.
    interval:
        Seconds between probe rounds.
    miss_threshold:
        Consecutive misses before ``on_dead`` fires.
    """

    def __init__(
        self,
        targets: Callable[[], Iterable[tuple[str, Callable[[], object]]]],
        on_dead: Callable[[str, str], None],
        *,
        on_alive: Callable[[str, object], None] | None = None,
        on_miss: Callable[[str], None] | None = None,
        interval: float = 0.5,
        miss_threshold: int = 3,
    ):
        require(interval > 0.0, "heartbeat interval must be positive")
        require(miss_threshold >= 1, "miss_threshold must be at least 1")
        self.interval = interval
        self.miss_threshold = miss_threshold
        self._targets = targets
        self._on_dead = on_dead
        self._on_alive = on_alive
        self._on_miss = on_miss
        self._tracks: dict[str, _Track] = {}
        self._declared: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, name="dist-heartbeat", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.probe_once()

    # -- one probe round (public so tests can drive it synchronously) --
    def probe_once(self) -> None:
        for worker_id, probe in list(self._targets()):
            if worker_id in self._declared:
                continue
            track = self._tracks.setdefault(worker_id, _Track())
            try:
                result = probe()
            except Exception as exc:  # noqa: BLE001 - any probe fault is a miss
                track.misses += 1
                record_dist_heartbeat_miss()
                if self._on_miss is not None:
                    self._on_miss(worker_id)
                if track.misses >= self.miss_threshold:
                    self._declared.add(worker_id)
                    self._on_dead(worker_id, f"{track.misses} consecutive heartbeat misses: {exc}")
                continue
            track.misses = 0
            if self._on_alive is not None:
                self._on_alive(worker_id, result)

    def misses_for(self, worker_id: str) -> int:
        track = self._tracks.get(worker_id)
        return 0 if track is None else track.misses
